"""Experiment configurations: one JSON-serializable object per setup.

The paper's §5 is a grid of configurations (workload shape, cluster,
keys per request, miss ratio...). :class:`ExperimentConfig` captures one
point of that grid, round-trips through JSON (so experiment definitions
can live in files and version control), and builds the analytic model
or the closed-loop simulator from the same source of truth.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .core import ClusterModel, LatencyModel, WorkloadPattern
from .core.stages import DatabaseStage, NetworkStage, ServerStage
from .core.tail import TailLatencyModel
from .errors import ConfigError
from .faults import FaultSchedule
from .policies import RequestPolicy
from .simulation import MemcachedSystemSimulator


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """One fully-specified Memcached latency experiment.

    Rates are in keys/second, times in seconds — the library's internal
    units — so a config is unambiguous independent of display units.
    """

    # Workload shape (per-server when shares are balanced/omitted).
    key_rate: float
    burst_xi: float = 0.0
    concurrency_q: float = 0.0
    # Cluster.
    n_servers: int = 1
    service_rate: float = 80_000.0
    shares: Optional[List[float]] = None
    # Request structure.
    n_keys: int = 150
    # Network & database.
    network_delay: float = 0.0
    miss_ratio: float = 0.0
    database_rate: Optional[float] = None
    # Simulation knobs.
    seed: int = 0
    n_requests: int = 2000
    warmup_requests: int = 200
    # Fault schedule / request policy, stored as their JSON payloads so
    # config files stay plain data. ``None`` (the default for every
    # pre-fault config) is the fault-free, policy-free system.
    faults: Optional[Dict[str, object]] = None
    policy: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        # Validate eagerly so a bad JSON file fails at load, not at use.
        if self.faults is not None:
            FaultSchedule.from_dict(self.faults)
        if self.policy is not None:
            RequestPolicy.from_dict(self.policy)

    # ------------------------------------------------------------------
    # Derived builders.
    # ------------------------------------------------------------------

    def fault_schedule(self) -> Optional[FaultSchedule]:
        """The parsed fault schedule (None when fault-free)."""
        return FaultSchedule.from_dict(self.faults) if self.faults else None

    def request_policy(self) -> Optional[RequestPolicy]:
        """The parsed request policy (None when policy-free)."""
        return RequestPolicy.from_dict(self.policy) if self.policy else None

    def workload(self) -> WorkloadPattern:
        """The per-server workload pattern."""
        return WorkloadPattern(
            rate=self.key_rate, xi=self.burst_xi, q=self.concurrency_q
        )

    def cluster(self) -> ClusterModel:
        """The cluster model (balanced unless shares are given)."""
        if self.shares is not None:
            if len(self.shares) != self.n_servers:
                raise ConfigError(
                    f"shares has {len(self.shares)} entries for "
                    f"{self.n_servers} servers"
                )
            return ClusterModel(self.shares, self.service_rate)
        return ClusterModel.balanced(self.n_servers, self.service_rate)

    def total_key_rate(self) -> float:
        """Aggregate key rate across the cluster."""
        return self.key_rate * self.n_servers

    def latency_model(self) -> LatencyModel:
        """Theorem 1 model for this configuration."""
        cluster = self.cluster()
        if cluster.is_balanced and self.shares is None:
            return LatencyModel.build(
                workload=self.workload(),
                service_rate=self.service_rate,
                network_delay=self.network_delay,
                database_rate=self.database_rate,
                miss_ratio=self.miss_ratio,
            )
        return LatencyModel.build(
            workload=self.workload(),
            service_rate=self.service_rate,
            network_delay=self.network_delay,
            database_rate=self.database_rate,
            miss_ratio=self.miss_ratio,
            cluster=cluster,
            total_key_rate=self.total_key_rate(),
        )

    def tail_model(self) -> TailLatencyModel:
        """Percentile-level model for this configuration."""
        cluster = self.cluster()
        stage = ServerStage.from_cluster(
            cluster, self.total_key_rate(), self.workload()
        )
        database = None
        if self.miss_ratio > 0.0:
            if self.database_rate is None:
                raise ConfigError("database_rate required when miss_ratio > 0")
            database = DatabaseStage(self.database_rate, self.miss_ratio)
        return TailLatencyModel(
            stage,
            network_stage=NetworkStage(self.network_delay),
            database_stage=database,
        )

    def simulator(
        self,
        observability=None,
        *,
        keep_request_log: bool = False,
        scheduler=None,
        rng_window=None,
    ) -> MemcachedSystemSimulator:
        """Closed-loop simulator for this configuration.

        The request rate is chosen so the induced per-server key rate
        equals ``key_rate``. Pass an
        :class:`~repro.observability.Observability` bundle to collect
        traces/metrics/profiles for the run; ``keep_request_log=True``
        records per-request completions for transient analysis.
        ``scheduler`` and ``rng_window`` are engine perf knobs (see
        :class:`~repro.simulation.MemcachedSystemSimulator`); both leave
        seeded results bit-identical.
        """
        request_rate = self.total_key_rate() / self.n_keys
        return MemcachedSystemSimulator(
            self.cluster(),
            n_keys_per_request=self.n_keys,
            request_rate=request_rate,
            network_delay=self.network_delay,
            miss_ratio=self.miss_ratio,
            database_rate=self.database_rate,
            seed=self.seed,
            observability=observability,
            faults=self.fault_schedule(),
            policy=self.request_policy(),
            keep_request_log=keep_request_log,
            scheduler=scheduler,
            rng_window=rng_window,
        )

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentConfig":
        """Parse a JSON string produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigError("config JSON must be an object")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown config keys: {sorted(unknown)}")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ConfigError(f"incomplete config: {exc}") from exc

    def save(self, path: Union[str, Path]) -> None:
        """Write the config to a JSON file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentConfig":
        """Read a config from a JSON file."""
        return cls.from_json(Path(path).read_text())

    @classmethod
    def paper_section_5_1(cls) -> "ExperimentConfig":
        """The paper's §5.1 testbed configuration."""
        return cls(
            key_rate=62_500.0,
            burst_xi=0.15,
            concurrency_q=0.1,
            n_servers=4,
            service_rate=80_000.0,
            n_keys=150,
            network_delay=20e-6,
            miss_ratio=0.01,
            database_rate=1000.0,
        )
