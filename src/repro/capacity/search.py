"""Staged bisection for "max RPS at SLO" (the inverse latency question).

The paper models latency as a function of load; operators ask the
inverse: the largest request rate whose latency still meets an SLO.
:func:`find_capacity` answers it in three stages:

1. **Analytic bracket** — Proposition 2's cliff utilization
   ``rhoS(xi)`` depends only on the burst degree, so the hottest
   server's cliff arrival rate ``rhoS(xi) * muS / p1`` converts to an
   RPS anchor without running anything; the Theorem 1 / tail-model
   upper bounds from the ``estimate`` backend refine it into a bracket
   ``[lo, hi]`` with ``hi`` just under the hard stability limit
   (whichever binds first: the servers or the database,
   ``muD / miss_ratio``).
2. **CI-aware bisection** — each probe runs the ``fastpath-system``
   backend (or any simulation backend) at a trial RPS via
   :meth:`Scenario.replace`, measures the objective with a confidence
   interval, and only accepts a verdict the CI supports; an
   indeterminate probe doubles its request count (up to
   ``max_requests``) — sampling effort concentrates exactly at the
   knee, where it is needed.
3. **Engine spot-check** (optional) — ``spot_replicates`` independent
   event-engine runs at the found knee, pooled into an
   across-replicate t-interval (near the knee, run-to-run seed
   variance dominates any within-run interval, so a single replicate
   would test the seed, not the backend); the result agrees when that
   interval overlaps the knee probe's confidence interval.

The artifact (:class:`CapacityResult`) is versioned and
provenance-stamped like every other JSON/CSV output, carries the full
per-probe trace, and rides through experiment checkpoints (see
:mod:`repro.capacity.curve`).
"""

from __future__ import annotations

import dataclasses
import json
import math
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np
from scipy import stats

from ..errors import ConfigError, StabilityError, ValidationError
from ..experiments.scenario import Scenario
from ..observability.report import json_dumps, provenance, provenance_comment
from ..observability.slo import SLOMonitor
from ..queueing.cliff import cliff_key_rate, cliff_utilization
from .objective import CapacityObjective

__all__ = [
    "AnalyticBracket",
    "CapacityProbe",
    "CapacityResult",
    "analytic_bracket",
    "find_capacity",
]

RESULT_KIND = "repro-capacity"
RESULT_VERSION = 1

#: Backends the bisection can probe (they produce latency timelines).
PROBE_BACKENDS = ("simulate", "fastpath", "fastpath-system")


@dataclasses.dataclass(frozen=True)
class AnalyticBracket:
    """Stage-1 output: the analytic anchors and the search bracket.

    All rates are end-user requests per second. ``binding`` names the
    resource whose stability limit binds first ("server" or
    "database") — at the paper's baseline miss ratio the database
    saturates *before* the servers reach their Proposition 2 cliff.
    """

    cliff_rho: float
    cliff_rps: float
    stability_rps: float
    binding: str
    analytic_knee_rps: Optional[float]
    lo: float
    hi: float

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AnalyticBracket":
        try:
            return cls(
                cliff_rho=float(payload["cliff_rho"]),
                cliff_rps=float(payload["cliff_rps"]),
                stability_rps=float(payload["stability_rps"]),
                binding=str(payload["binding"]),
                analytic_knee_rps=(
                    float(payload["analytic_knee_rps"])
                    if payload.get("analytic_knee_rps") is not None
                    else None
                ),
                lo=float(payload["lo"]),
                hi=float(payload["hi"]),
            )
        except KeyError as exc:
            raise ConfigError(f"analytic bracket missing key: {exc}") from exc


@dataclasses.dataclass(frozen=True)
class CapacityProbe:
    """One load point the search evaluated, with its CI and verdict.

    ``decisive`` records whether the confidence interval cleared the
    threshold; a non-decisive probe exhausted ``max_requests`` still
    straddling it and fell back to the point estimate.
    """

    index: int
    rps: float
    backend: str
    n_requests: int
    seed: int
    value: float
    ci_low: float
    ci_high: float
    status: str
    decisive: bool
    escalations: int
    attainment: Optional[float]
    n_alerts: int

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CapacityProbe":
        try:
            return cls(
                index=int(payload["index"]),
                rps=float(payload["rps"]),
                backend=str(payload["backend"]),
                n_requests=int(payload["n_requests"]),
                seed=int(payload["seed"]),
                value=float(payload["value"]),
                ci_low=float(payload["ci_low"]),
                ci_high=float(payload["ci_high"]),
                status=str(payload["status"]),
                decisive=bool(payload["decisive"]),
                escalations=int(payload["escalations"]),
                attainment=(
                    float(payload["attainment"])
                    if payload.get("attainment") is not None
                    else None
                ),
                n_alerts=int(payload["n_alerts"]),
            )
        except KeyError as exc:
            raise ConfigError(f"capacity probe missing key: {exc}") from exc


# ----------------------------------------------------------------------
# Stage 1: the analytic bracket.
# ----------------------------------------------------------------------


def _rps_to_key_rate(scenario: Scenario, rps: float) -> float:
    """Per-server key rate that drives the scenario at ``rps`` requests/s."""
    return rps * scenario.n_keys / scenario.n_servers


def _analytic_upper(scenario: Scenario, objective: CapacityObjective) -> float:
    """The estimate backend's upper bound on the objective's metric."""
    if objective.metric == "mean":
        return float(scenario.estimate().total_upper)
    level = float(objective.metric[1:]) / 100.0
    return float(
        scenario.tail_model().request_quantile_bounds(
            level, scenario.n_keys
        ).upper
    )


def _analytic_knee(
    base: Scenario, objective: CapacityObjective, hi_rps: float
) -> Optional[float]:
    """Largest RPS whose *analytic upper bound* still meets the SLO.

    Conservative by construction (it bounds the metric from above), so
    it makes a trustworthy lower bracket for the bisection. ``None``
    for burn-rate and utilization objectives — Theorem 1 has no model
    for those.
    """
    if not objective.is_latency and objective.metric != "mean":
        return None

    def passes(rps: float) -> bool:
        derived = base.replace(key_rate=_rps_to_key_rate(base, rps))
        try:
            return _analytic_upper(derived, objective) <= objective.threshold
        except StabilityError:
            return False

    lo = hi_rps * 1e-3
    if not passes(lo):
        return lo
    if passes(hi_rps):
        return hi_rps
    hi = hi_rps
    for _ in range(40):
        if (hi - lo) <= 1e-3 * hi:
            break
        mid = 0.5 * (lo + hi)
        if passes(mid):
            lo = mid
        else:
            hi = mid
    return lo


def analytic_bracket(
    scenario: Scenario,
    objective: CapacityObjective,
    *,
    method: str = "relative-slope",
) -> AnalyticBracket:
    """Bracket the knee from Proposition 2 + the estimate backend.

    Faults and policies are stripped first: the bracket is the
    fault-free analytic prediction; the simulation probes run the
    scenario as given.
    """
    base = scenario.replace(faults=None, policy=None)
    max_share = max(base.cluster().shares)
    rho = cliff_utilization(base.burst_xi, method=method)
    cliff_total_keys = (
        cliff_key_rate(base.burst_xi, base.service_rate, method=method)
        / max_share
    )
    cliff_rps = cliff_total_keys / base.n_keys
    server_stability = base.service_rate / max_share
    if base.miss_ratio > 0.0 and base.database_rate:
        db_stability = base.database_rate / base.miss_ratio
    else:
        db_stability = math.inf
    binding = "database" if db_stability < server_stability else "server"
    stability_rps = min(server_stability, db_stability) / base.n_keys
    hi = 0.98 * stability_rps
    knee = _analytic_knee(base, objective, hi)
    if knee is not None:
        lo = min(knee, cliff_rps)
    else:
        lo = 0.25 * min(cliff_rps, hi)
    lo = min(lo, 0.9 * hi)
    return AnalyticBracket(
        cliff_rho=rho,
        cliff_rps=cliff_rps,
        stability_rps=stability_rps,
        binding=binding,
        analytic_knee_rps=knee,
        lo=lo,
        hi=hi,
    )


# ----------------------------------------------------------------------
# Stages 2-3: CI-aware bisection + spot-check.
# ----------------------------------------------------------------------


@dataclasses.dataclass
class CapacityResult:
    """The capacity search's versioned, provenance-stamped artifact."""

    scenario: Scenario
    objective: CapacityObjective
    backend: str
    method: str
    rel_tol: float
    max_rps: float
    fail_rps: Optional[float]
    capped: bool
    below_cliff: bool
    bracket: AnalyticBracket
    probes: List[CapacityProbe]
    spot_check: Optional[Dict[str, object]] = None
    elapsed: float = dataclasses.field(default=0.0, compare=False)

    @property
    def n_probes(self) -> int:
        return len(self.probes)

    @property
    def agrees(self) -> Optional[bool]:
        """Spot-check agreement (``None`` when no spot-check ran)."""
        if self.spot_check is None:
            return None
        return bool(self.spot_check["agrees"])

    def to_dict(self) -> Dict[str, object]:
        spot = None
        if self.spot_check is not None:
            spot = {
                "probes": [
                    probe.to_dict() for probe in self.spot_check["probes"]
                ],
                "value": float(self.spot_check["value"]),
                "ci_low": float(self.spot_check["ci_low"]),
                "ci_high": float(self.spot_check["ci_high"]),
                "agrees": bool(self.spot_check["agrees"]),
            }
        return {
            "kind": RESULT_KIND,
            "version": RESULT_VERSION,
            "scenario": self.scenario.to_dict(),
            "objective": self.objective.to_dict(),
            "backend": self.backend,
            "method": self.method,
            "rel_tol": self.rel_tol,
            "max_rps": self.max_rps,
            "fail_rps": self.fail_rps,
            "capped": self.capped,
            "below_cliff": self.below_cliff,
            "analytic": self.bracket.to_dict(),
            "probes": [probe.to_dict() for probe in self.probes],
            "n_probes": self.n_probes,
            "spot_check": spot,
            "elapsed": self.elapsed,
            "provenance": provenance(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CapacityResult":
        if not isinstance(payload, dict) or payload.get("kind") != RESULT_KIND:
            raise ConfigError("not a capacity result")
        spot = None
        if payload.get("spot_check") is not None:
            raw = payload["spot_check"]
            spot = {
                "probes": [
                    CapacityProbe.from_dict(p) for p in raw["probes"]
                ],
                "value": float(raw["value"]),
                "ci_low": float(raw["ci_low"]),
                "ci_high": float(raw["ci_high"]),
                "agrees": bool(raw["agrees"]),
            }
        try:
            return cls(
                scenario=Scenario.from_dict(payload["scenario"]),
                objective=CapacityObjective.from_dict(payload["objective"]),
                backend=str(payload["backend"]),
                method=str(payload["method"]),
                rel_tol=float(payload["rel_tol"]),
                max_rps=float(payload["max_rps"]),
                fail_rps=(
                    float(payload["fail_rps"])
                    if payload.get("fail_rps") is not None
                    else None
                ),
                capped=bool(payload["capped"]),
                below_cliff=bool(payload["below_cliff"]),
                bracket=AnalyticBracket.from_dict(payload["analytic"]),
                probes=[
                    CapacityProbe.from_dict(p) for p in payload["probes"]
                ],
                spot_check=spot,
                elapsed=float(payload.get("elapsed", 0.0)),
            )
        except KeyError as exc:
            raise ConfigError(f"capacity result missing key: {exc}") from exc

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json_dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CapacityResult":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(
                f"cannot read capacity result {path}: {exc}"
            ) from exc
        return cls.from_dict(payload)

    def to_csv(self) -> str:
        """The per-probe trace as provenance-stamped CSV."""
        lines = [
            provenance_comment(),
            f"# max_rps={self.max_rps:.6g} objective={self.objective.describe()}"
            f" backend={self.backend}",
            "index,rps,backend,n_requests,value,ci_low,ci_high,status,"
            "decisive,escalations,n_alerts",
        ]
        trace = list(self.probes)
        if self.spot_check is not None:
            trace.extend(self.spot_check["probes"])
        for p in trace:
            lines.append(
                f"{p.index},{p.rps:.6g},{p.backend},{p.n_requests},"
                f"{p.value:.6g},{p.ci_low:.6g},{p.ci_high:.6g},{p.status},"
                f"{int(p.decisive)},{p.escalations},{p.n_alerts}"
            )
        return "\n".join(lines) + "\n"


def _probe_seed(scenario: Scenario, probe_index: int) -> int:
    """Deterministic per-probe seed: a pure function of (suite seed,
    probe index), so re-running a search replays bit-identically."""
    seq = np.random.SeedSequence([int(scenario.seed), int(probe_index)])
    return int(seq.generate_state(1, np.uint64)[0])


class _Prober:
    """Runs probes with CI-driven request-count escalation."""

    def __init__(
        self,
        scenario: Scenario,
        objective: CapacityObjective,
        *,
        base_requests: int,
        max_requests: int,
        windows: int,
    ) -> None:
        self.scenario = scenario
        self.objective = objective
        self.base_requests = base_requests
        self.max_requests = max_requests
        self.windows = windows
        self.probes: List[CapacityProbe] = []
        self.monitor = SLOMonitor([objective.rule()])

    def __call__(self, rps: float, backend: str) -> CapacityProbe:
        n = self.base_requests
        escalations = 0
        seed = _probe_seed(self.scenario, len(self.probes))
        while True:
            derived = self.scenario.replace(
                key_rate=_rps_to_key_rate(self.scenario, rps),
                seed=seed,
                n_requests=n,
                warmup_requests=max(n // 10, 1),
            )
            timeline = derived.timeline(backend, n_windows=self.windows)
            measurement = self.objective.measure(timeline)
            verdict = self.objective.decide(measurement)
            if verdict != "indeterminate" or n * 2 > self.max_requests:
                break
            n *= 2
            escalations += 1
        decisive = verdict != "indeterminate"
        passed = (
            verdict == "pass"
            if decisive
            else measurement.value <= self.objective.threshold
        )
        report = self.monitor.evaluate(timeline)
        attainment = report.attainment.get("capacity", math.nan)
        probe = CapacityProbe(
            index=len(self.probes),
            rps=float(rps),
            backend=backend,
            n_requests=n,
            seed=seed,
            value=measurement.value,
            ci_low=measurement.ci_low,
            ci_high=measurement.ci_high,
            status="pass" if passed else "fail",
            decisive=decisive,
            escalations=escalations,
            attainment=(
                float(attainment) if math.isfinite(attainment) else None
            ),
            n_alerts=len(report.alerts),
        )
        self.probes.append(probe)
        return probe


def find_capacity(
    scenario: Scenario,
    objective: CapacityObjective,
    *,
    backend: str = "fastpath-system",
    method: str = "relative-slope",
    rel_tol: float = 0.02,
    max_probes: int = 32,
    n_requests: Optional[int] = None,
    max_requests: Optional[int] = None,
    windows: int = 24,
    spot_check: bool = False,
    spot_backend: str = "simulate",
    spot_replicates: int = 3,
) -> CapacityResult:
    """Max sustainable RPS at the objective, by staged bisection.

    ``n_requests`` is the per-probe starting budget (defaults to the
    scenario's); an indeterminate probe doubles it up to
    ``max_requests`` (default ``8 x`` the base). The search stops when
    the pass/fail bracket is within ``rel_tol`` (relative) or after
    ``max_probes`` probes, and reports the last *passing* rate as
    ``max_rps``. ``capped`` means even the near-stability high anchor
    passed (the SLO never binds below saturation) and ``fail_rps`` is
    then ``None``.
    """
    if backend not in PROBE_BACKENDS:
        raise ConfigError(
            f"capacity probes need a simulation backend "
            f"(have {PROBE_BACKENDS}), got {backend!r}"
        )
    if spot_backend not in PROBE_BACKENDS:
        raise ConfigError(
            f"spot-check backend must be one of {PROBE_BACKENDS}, "
            f"got {spot_backend!r}"
        )
    if spot_replicates < 1:
        raise ValidationError(
            f"spot_replicates must be >= 1, got {spot_replicates}"
        )
    if not 0.0 < rel_tol < 1.0:
        raise ValidationError(f"rel_tol must be in (0, 1), got {rel_tol}")
    if max_probes < 3:
        raise ValidationError(f"max_probes must be >= 3, got {max_probes}")
    started = time.perf_counter()
    base_requests = int(n_requests or scenario.n_requests)
    if base_requests < 10:
        raise ValidationError(
            f"n_requests must be >= 10, got {base_requests}"
        )
    max_req = int(max_requests or 8 * base_requests)
    if max_req < base_requests:
        raise ValidationError(
            f"max_requests ({max_req}) must be >= n_requests "
            f"({base_requests})"
        )
    bracket = analytic_bracket(scenario, objective, method=method)
    probe = _Prober(
        scenario,
        objective,
        base_requests=base_requests,
        max_requests=max_req,
        windows=windows,
    )

    lo, hi = bracket.lo, bracket.hi
    floor = bracket.hi * 1e-4
    capped = False
    knee_probe: Optional[CapacityProbe] = None

    # Walk the low anchor down until it actually passes.
    result = probe(lo, backend)
    while not result.passed and lo > floor and len(probe.probes) < max_probes:
        hi = lo
        lo *= 0.5
        result = probe(lo, backend)
    if not result.passed:
        max_rps: float = 0.0
        fail_rps: Optional[float] = lo
    else:
        knee_probe = result
        if hi == bracket.hi:
            # The high anchor has not been probed yet — confirm it fails.
            result = probe(hi, backend)
            if result.passed:
                capped = True
                lo, knee_probe = hi, result
        while (
            not capped
            and (hi - lo) > rel_tol * hi
            and len(probe.probes) < max_probes
        ):
            mid = 0.5 * (lo + hi)
            result = probe(mid, backend)
            if result.passed:
                lo, knee_probe = mid, result
            else:
                hi = mid
        max_rps = lo
        fail_rps = None if capped else hi

    spot: Optional[Dict[str, object]] = None
    if spot_check and knee_probe is not None:
        reps = [probe(max_rps, spot_backend) for _ in range(spot_replicates)]
        del probe.probes[-len(reps):]  # reported under spot_check, not probes
        values = [rep.value for rep in reps]
        spot_value = sum(values) / len(values)
        if len(values) >= 2:
            sd = float(np.std(values, ddof=1))
            t = float(
                stats.t.ppf(
                    0.5 * (1.0 + objective.confidence), len(values) - 1
                )
            )
            half = t * sd / math.sqrt(len(values))
            spot_lo, spot_hi = spot_value - half, spot_value + half
        else:
            spot_lo, spot_hi = reps[0].ci_low, reps[0].ci_high
        agrees = (
            spot_lo <= knee_probe.ci_high and knee_probe.ci_low <= spot_hi
        )
        spot = {
            "probes": reps,
            "value": spot_value,
            "ci_low": spot_lo,
            "ci_high": spot_hi,
            "agrees": agrees,
        }

    return CapacityResult(
        scenario=scenario,
        objective=objective,
        backend=backend,
        method=method,
        rel_tol=rel_tol,
        max_rps=max_rps,
        fail_rps=fail_rps,
        capped=capped,
        below_cliff=max_rps < bracket.cliff_rps,
        bracket=bracket,
        probes=probe.probes,
        spot_check=spot,
        elapsed=time.perf_counter() - started,
    )
