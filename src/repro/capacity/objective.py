"""The capacity search's SLO predicate: one metric, one threshold, a CI.

A :class:`CapacityObjective` names the derived series the search bounds
(a latency quantile, the mean, an error-budget burn rate, or a stage
utilization — the same vocabulary as :class:`~repro.observability.slo`)
and knows how to *measure* it from a :class:`Timeline` with an
uncertainty interval, so the bisection can distinguish "this load
passes", "this load fails" and "this run is too noisy to tell" (the
trigger for adaptive request-count escalation near the knee).

Point estimates come from the merged run-level histogram; the interval
is the *wider* of two constructions:

* the iid interval — order-statistic rank interval
  ``q ± z·sqrt(q(1-q)/n)`` mapped through the histogram's quantile
  function for quantiles, ``± z·s/sqrt(n)`` for the mean, an
  Agresti-Coull binomial interval on the bad fraction for the burn
  rate;
* the batch-means interval — the same statistic computed per window,
  with a t-interval on the window series. Queue latencies are
  autocorrelated (congestion arrives in cycles), so near the knee the
  iid interval is too narrow; batch means over the timeline's windows
  capture that run-to-run variance, which is exactly what the
  bisection's escalation logic must react to.

Utilization is a deterministic ratio of accumulated busy time — no
sampling interval, always decisive.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

import numpy as np
from scipy import stats

from ..errors import ConfigError, ValidationError
from ..observability.slo import BurnRateRule, SLORule
from ..observability.timeline import Timeline

__all__ = ["CapacityObjective", "Measurement"]

#: Merged-histogram latency metrics the objective can bound.
_LATENCY_METRICS = ("p50", "p95", "p99", "mean")


@dataclasses.dataclass(frozen=True)
class Measurement:
    """One CI-aware reading of an objective's metric."""

    value: float
    ci_low: float
    ci_high: float
    n: int

    def to_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class CapacityObjective:
    """An SLO the capacity search holds the system to.

    ``threshold`` is in the metric's own units: seconds for the latency
    metrics, a busy fraction for ``utilization:<stage>``, and a burn
    *factor* for ``burn_rate`` (where ``latency_threshold`` defines a
    bad request and ``objective`` the attainment target, exactly like
    :class:`~repro.observability.slo.BurnRateRule`).
    """

    threshold: float
    metric: str = "p99"
    latency_threshold: Optional[float] = None
    objective: float = 0.99
    confidence: float = 0.95
    min_count: int = 5

    def __post_init__(self) -> None:
        if self.threshold <= 0.0:
            raise ValidationError(
                f"threshold must be > 0, got {self.threshold}"
            )
        base, _, stage = self.metric.partition(":")
        if stage:
            if base != "utilization":
                raise ValidationError(
                    f"unknown stage metric {base!r} (only "
                    "'utilization:<stage>' is supported)"
                )
        elif base not in _LATENCY_METRICS + ("burn_rate",):
            raise ValidationError(
                f"unknown capacity metric {base!r} "
                f"(have {list(_LATENCY_METRICS)}, 'burn_rate', "
                "or 'utilization:<stage>')"
            )
        if base == "burn_rate":
            if self.latency_threshold is None or self.latency_threshold <= 0:
                raise ValidationError(
                    "burn_rate objectives need a latency_threshold > 0"
                )
            if not 0.0 < self.objective < 1.0:
                raise ValidationError(
                    f"objective must be in (0, 1), got {self.objective}"
                )
        if not 0.0 < self.confidence < 1.0:
            raise ValidationError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.min_count < 1:
            raise ValidationError(
                f"min_count must be >= 1, got {self.min_count}"
            )

    # ------------------------------------------------------------------

    @property
    def is_latency(self) -> bool:
        return self.metric in _LATENCY_METRICS

    def describe(self) -> str:
        return f"{self.metric} <= {self.threshold:g}"

    def rule(self):
        """The windowed SLO rule this objective corresponds to.

        Used for the per-probe alert/attainment telemetry — the
        bisection's pass/fail decision itself runs on :meth:`measure`'s
        run-level CI, not on per-window alerts.
        """
        if self.metric == "burn_rate":
            return BurnRateRule(
                name="capacity",
                latency_threshold=float(self.latency_threshold),
                objective=self.objective,
                factor=self.threshold,
                min_count=self.min_count,
            )
        return SLORule(
            name="capacity",
            metric=self.metric,
            threshold=self.threshold,
            min_count=self.min_count,
        )

    # ------------------------------------------------------------------

    def _window_series(self, timeline: Timeline) -> np.ndarray:
        """The statistic per window (batch means; filtered to windows
        with at least ``min_count`` completions)."""
        if self.metric == "mean":
            series = timeline.mean_latency()
        elif self.metric == "burn_rate":
            series = timeline.bad_fraction(self.latency_threshold) / (
                1.0 - self.objective
            )
        else:
            series = timeline.quantile_series(
                float(self.metric[1:]) / 100.0
            )
        series = np.where(
            timeline.completions >= self.min_count, series, math.nan
        )
        return series[np.isfinite(series)]

    def _batch_half_width(self, timeline: Timeline) -> float:
        """t-interval half-width of the per-window statistic's mean."""
        batches = self._window_series(timeline)
        if batches.size < 8:
            return 0.0  # too few windows: fall back to the iid interval
        t = float(
            stats.t.ppf(0.5 * (1.0 + self.confidence), batches.size - 1)
        )
        return t * float(batches.std(ddof=1)) / math.sqrt(batches.size)

    def measure(self, timeline: Timeline) -> Measurement:
        """Read the metric and its confidence interval from a timeline."""
        z = float(stats.norm.ppf(0.5 * (1.0 + self.confidence)))
        base, _, stage = self.metric.partition(":")
        if stage:
            series = timeline.utilization(stage)
            finite = series[np.isfinite(series)]
            if finite.size == 0:
                raise ValidationError(
                    f"timeline has no finite {self.metric} windows"
                )
            value = float(finite.mean())
            return Measurement(value, value, value, int(finite.size))
        hist = timeline.overall_latency()
        n = int(hist.count)
        if n == 0:
            raise ValidationError("timeline recorded no completed requests")
        if base == "mean":
            value = float(hist.mean)
            half = z * float(hist.std) / math.sqrt(n)
            lo, hi = value - half, value + half
        elif base == "burn_rate":
            budget = 1.0 - self.objective
            bad = min(float(hist.count_above(self.latency_threshold)), n)
            # Agresti-Coull: the interval stays informative at 0 bad
            # requests instead of collapsing to a zero-width CI.
            center = (bad + 0.5 * z * z) / (n + z * z)
            half = z * math.sqrt(
                max(center * (1.0 - center), 0.0) / (n + z * z)
            )
            value = (bad / n) / budget
            lo = max(center - half, 0.0) / budget
            hi = min(center + half, 1.0) / budget
        else:
            level = float(base[1:]) / 100.0
            se = math.sqrt(level * (1.0 - level) / n)
            value = float(hist.quantile(level))
            lo = float(hist.quantile(max(level - z * se, 0.0)))
            hi = float(hist.quantile(min(level + z * se, 1.0)))
        batch_half = self._batch_half_width(timeline)
        lo = min(lo, value - batch_half)
        hi = max(hi, value + batch_half)
        return Measurement(value, lo, hi, n)

    def decide(self, measurement: Measurement) -> str:
        """``"pass"`` / ``"fail"`` when the CI clears the threshold,
        ``"indeterminate"`` when the threshold lies inside it."""
        if measurement.ci_high <= self.threshold:
            return "pass"
        if measurement.ci_low > self.threshold:
            return "fail"
        return "indeterminate"

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "metric": self.metric,
            "latency_threshold": self.latency_threshold,
            "objective": self.objective,
            "confidence": self.confidence,
            "min_count": self.min_count,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CapacityObjective":
        if not isinstance(payload, dict):
            raise ConfigError("capacity objective must be a JSON object")
        try:
            return cls(
                threshold=float(payload["threshold"]),
                metric=str(payload.get("metric", "p99")),
                latency_threshold=(
                    float(payload["latency_threshold"])
                    if payload.get("latency_threshold") is not None
                    else None
                ),
                objective=float(payload.get("objective", 0.99)),
                confidence=float(payload.get("confidence", 0.95)),
                min_count=int(payload.get("min_count", 5)),
            )
        except KeyError as exc:
            raise ConfigError(
                f"capacity objective missing key: {exc}"
            ) from exc
