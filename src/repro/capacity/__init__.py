"""SLO-driven capacity planning: "max RPS at SLO" by staged bisection.

The forward question the rest of the library answers — latency as a
function of load — inverts here into the operator's question: the
largest sustainable request rate under an SLO. Three stages: an
analytic bracket from the Proposition 2 cliff and the Theorem 1 upper
bounds, a CI-aware ``fastpath-system`` bisection with adaptive
request-count escalation, and an optional event-engine spot-check of
the found knee. See :mod:`repro.capacity.search` for the contract and
:mod:`repro.capacity.curve` for factor sweeps of the knee.
"""

from .curve import CapacityCurve, capacity_curve
from .objective import CapacityObjective, Measurement
from .search import (
    AnalyticBracket,
    CapacityProbe,
    CapacityResult,
    analytic_bracket,
    find_capacity,
)

__all__ = [
    "AnalyticBracket",
    "CapacityCurve",
    "CapacityObjective",
    "CapacityProbe",
    "CapacityResult",
    "Measurement",
    "analytic_bracket",
    "capacity_curve",
    "find_capacity",
]
