"""Knee curves: the capacity search swept along an experiment factor.

"Max RPS at SLO as a function of cluster size" (or burst degree, or
miss ratio, ...) is a grid of capacity searches. Rather than invent a
second runner, this module rides the existing experiment
infrastructure: each factor value becomes a :class:`Cell` whose
*options* carry the canonical JSON of the search spec — so the cell id
digest covers the objective and the runner's checkpoint/resume
machinery (process parallelism, atomic JSON, stale-grid detection)
works unchanged — and a custom cell *executor* runs
:func:`find_capacity` instead of a plain backend call. The full
:class:`CapacityResult` is carried on the cell (and through its
checkpoint), so a resumed curve still has every probe trace.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ConfigError, ReproError
from ..experiments.grid import Grid, Suite
from ..experiments.runner import CellResult, ExperimentRunner, SuiteResult
from ..experiments.scenario import Scenario
from ..observability.report import json_dumps, provenance, provenance_comment
from .objective import CapacityObjective
from .search import find_capacity

__all__ = ["CapacityCurve", "capacity_curve"]

CURVE_KIND = "repro-capacity-curve"
CURVE_VERSION = 1


def _capacity_spec(
    objective: CapacityObjective,
    *,
    method: str,
    rel_tol: float,
    max_probes: int,
    n_requests: Optional[int],
    max_requests: Optional[int],
    windows: int,
    spot_check: bool,
    spot_replicates: int,
) -> str:
    """Canonical JSON search spec — digested into every cell id, so a
    resumed curve with a different objective re-runs instead of
    silently reusing stale knees."""
    return json.dumps(
        {
            "objective": objective.to_dict(),
            "method": method,
            "rel_tol": rel_tol,
            "max_probes": max_probes,
            "n_requests": n_requests,
            "max_requests": max_requests,
            "windows": windows,
            "spot_check": spot_check,
            "spot_replicates": spot_replicates,
        },
        sort_keys=True,
    )


def _execute_capacity_cell(cell) -> CellResult:
    """Cell executor: one capacity search per grid point.

    Module-level (picklable) so the process-pool path works; mirrors
    :func:`repro.experiments.runner._execute_cell`'s error contract —
    failures come back as data, naming the cell.
    """
    started = time.perf_counter()
    spec = json.loads(cell.option_dict["capacity"])
    objective = CapacityObjective.from_dict(spec["objective"])
    error: Optional[str] = None
    metrics: Dict[str, float] = {}
    capacity = None
    try:
        capacity = find_capacity(
            cell.scenario,
            objective,
            backend=cell.backend,
            method=spec["method"],
            rel_tol=spec["rel_tol"],
            max_probes=spec["max_probes"],
            n_requests=spec["n_requests"],
            max_requests=spec["max_requests"],
            windows=spec["windows"],
            spot_check=spec["spot_check"],
            spot_replicates=spec.get("spot_replicates", 3),
        )
        metrics = {
            "max_rps": capacity.max_rps,
            "cliff_rps": capacity.bracket.cliff_rps,
            "stability_rps": capacity.bracket.stability_rps,
            "below_cliff": float(capacity.below_cliff),
            "capped": float(capacity.capped),
            "n_probes": float(capacity.n_probes),
        }
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    return CellResult(
        index=cell.index,
        cell_id=cell.cell_id,
        backend=cell.backend,
        coords=cell.coord_dict,
        scenario=cell.scenario,
        metrics=metrics,
        error=error,
        elapsed=time.perf_counter() - started,
        capacity=capacity,
    )


@dataclasses.dataclass
class CapacityCurve:
    """Max RPS at SLO across a swept factor (the knee curve artifact)."""

    factor: str
    objective: CapacityObjective
    backend: str
    suite: SuiteResult

    def points(self) -> List[Dict[str, object]]:
        """One row per grid point: factor coordinate + knee metrics."""
        rows: List[Dict[str, object]] = []
        for cell in self.suite.cells:
            coords = {
                k: v for k, v in cell.coords.items() if k != "replicate"
            }
            rows.append({**coords, **cell.metrics})
        return rows

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": CURVE_KIND,
            "version": CURVE_VERSION,
            "factor": self.factor,
            "objective": self.objective.to_dict(),
            "backend": self.backend,
            "points": self.points(),
            "cells": [
                {
                    "cell_id": cell.cell_id,
                    "coords": dict(cell.coords),
                    "capacity": (
                        cell.capacity.to_dict()
                        if cell.capacity is not None
                        else None
                    ),
                }
                for cell in self.suite.cells
            ],
            "provenance": provenance(),
        }

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json_dumps(self.to_dict()))

    def to_csv(self) -> str:
        rows = self.points()
        if not rows:
            raise ConfigError("capacity curve has no points")
        header = list(rows[0])
        lines = [
            provenance_comment(),
            f"# objective={self.objective.describe()} backend={self.backend}",
            ",".join(header),
        ]
        for row in rows:
            lines.append(",".join(f"{row[key]:.6g}" for key in header))
        return "\n".join(lines) + "\n"


def capacity_curve(
    scenario: Scenario,
    objective: CapacityObjective,
    factor_name: str,
    values: Sequence[float],
    *,
    backend: str = "fastpath-system",
    method: str = "relative-slope",
    rel_tol: float = 0.02,
    max_probes: int = 32,
    n_requests: Optional[int] = None,
    max_requests: Optional[int] = None,
    windows: int = 24,
    spot_check: bool = False,
    spot_replicates: int = 3,
    workers: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    on_progress=None,
) -> CapacityCurve:
    """Run one capacity search per factor value, experiment-runner style.

    ``workers``/``checkpoint_dir``/``resume`` behave exactly like
    :func:`repro.experiments.run_suite` — knee curves are just suites
    with a capacity executor.
    """
    spec = _capacity_spec(
        objective,
        method=method,
        rel_tol=rel_tol,
        max_probes=max_probes,
        n_requests=n_requests,
        max_requests=max_requests,
        windows=windows,
        spot_check=spot_check,
        spot_replicates=spot_replicates,
    )
    suite = Suite(
        name=f"capacity-{factor_name}",
        grid=Grid(scenario, {factor_name: values}),
        backend=backend,
        options={"capacity": spec},
    )
    result = ExperimentRunner(
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        executor=_execute_capacity_cell,
        on_progress=on_progress,
    ).run(suite)
    return CapacityCurve(
        factor=factor_name,
        objective=objective,
        backend=backend,
        suite=result,
    )
