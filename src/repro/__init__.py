"""repro — reproduction of *Modeling and Analyzing Latency in the
Memcached system* (Cheng, Ren, Jiang, Zhang; ICDCS 2017).

The library has five layers:

* :mod:`repro.distributions` — stochastic substrate (Generalized Pareto
  arrivals, Laplace transforms, fitting);
* :mod:`repro.queueing` — analytic queues: GI/M/1, the paper's
  GI^X/M/1, M/M/1, fork-join baselines, cliff analysis (Table 4);
* :mod:`repro.core` — the paper's latency model: Theorem 1 bounds,
  Propositions 1-2, the §5.3 configuration advisor;
* :mod:`repro.simulation` — discrete-event and vectorized simulators
  standing in for the paper's physical testbed;
* :mod:`repro.memcached` / :mod:`repro.workloads` — an executable
  memcached (slabs, LRU, consistent hashing, text protocol) and the
  Facebook/ETC statistical workload model.

Quickstart::

    from repro import LatencyModel, WorkloadPattern
    from repro.units import kps, msec, usec

    model = LatencyModel.build(
        workload=WorkloadPattern.facebook(),
        service_rate=kps(80),
        network_delay=usec(20),
        database_rate=1 / msec(1),
        miss_ratio=0.01,
    )
    print(model.estimate(150))   # Theorem 1 bounds for N = 150 keys
"""

from ._version import __version__
from .capacity import (
    CapacityCurve,
    CapacityObjective,
    CapacityProbe,
    CapacityResult,
    capacity_curve,
    find_capacity,
)
from .config import ExperimentConfig
from .core import (
    AdvisorReport,
    ClusterModel,
    DatabaseStage,
    LatencyEstimate,
    LatencyModel,
    NetworkStage,
    Recommendation,
    ServerStage,
    ServerStageEstimate,
    Severity,
    WorkloadPattern,
    advise,
)
from .errors import (
    CacheCapacityError,
    CacheError,
    ConfigError,
    ConvergenceError,
    ProtocolError,
    ReproError,
    SimulationError,
    StabilityError,
    ValidationError,
)
from .distributions import (
    Deterministic,
    Distribution,
    Exponential,
    GeneralizedPareto,
    Zipf,
)
from .faults import (
    DatabaseOverload,
    FaultSchedule,
    FaultWindow,
    RequestRecord,
    ServerPause,
    ServerSlowdown,
    ShareShift,
    TrajectoryPoint,
    trajectory,
    window_effect,
)
from .observability import (
    AlertWindow,
    BurnRateRule,
    Histogram,
    MetricsRegistry,
    Observability,
    RunReport,
    SLOMonitor,
    SLORule,
    Timeline,
    Tracer,
    detection_scores,
)
from .policies import RequestPolicy, hedge_delay_from_quantile
from .experiments import (
    ExperimentRunner,
    Grid,
    Scenario,
    Suite,
    SuiteResult,
    backend_options,
    run_suite,
    sweep_suite,
)
from .queueing import (
    GIM1Queue,
    GIXM1Queue,
    MG1Queue,
    MM1Queue,
    cliff_utilization,
    delta_for_utilization,
)
from .simulation import (
    MemcachedSystemSimulator,
    SimulationResult,
    Simulator,
    StageStats,
)

__all__ = [
    "AdvisorReport",
    "AlertWindow",
    "BurnRateRule",
    "CacheCapacityError",
    "CacheError",
    "CapacityCurve",
    "CapacityObjective",
    "CapacityProbe",
    "CapacityResult",
    "ClusterModel",
    "ConfigError",
    "ConvergenceError",
    "DatabaseOverload",
    "DatabaseStage",
    "Deterministic",
    "Distribution",
    "ExperimentConfig",
    "ExperimentRunner",
    "Exponential",
    "FaultSchedule",
    "FaultWindow",
    "GIM1Queue",
    "GIXM1Queue",
    "GeneralizedPareto",
    "Grid",
    "Histogram",
    "LatencyEstimate",
    "LatencyModel",
    "MG1Queue",
    "MM1Queue",
    "MemcachedSystemSimulator",
    "MetricsRegistry",
    "NetworkStage",
    "Observability",
    "ProtocolError",
    "Recommendation",
    "ReproError",
    "RequestPolicy",
    "RequestRecord",
    "RunReport",
    "SLOMonitor",
    "SLORule",
    "Scenario",
    "ServerPause",
    "ServerSlowdown",
    "ServerStage",
    "ServerStageEstimate",
    "Severity",
    "ShareShift",
    "SimulationError",
    "SimulationResult",
    "Simulator",
    "StabilityError",
    "StageStats",
    "Suite",
    "SuiteResult",
    "Timeline",
    "Tracer",
    "TrajectoryPoint",
    "ValidationError",
    "WorkloadPattern",
    "Zipf",
    "__version__",
    "advise",
    "backend_options",
    "capacity_curve",
    "cliff_utilization",
    "delta_for_utilization",
    "detection_scores",
    "find_capacity",
    "hedge_delay_from_quantile",
    "run_suite",
    "sweep_suite",
    "trajectory",
    "window_effect",
]
