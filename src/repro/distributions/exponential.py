"""Exponential and related memoryless distributions.

The exponential law is the workhorse of the paper's model: Memcached
service times are ``Exp(muS)``, database service times are ``Exp(muD)``,
and the geometric-sum batch-collapse argument produces ``Exp((1-q) muS)``
batch service times.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ValidationError
from .base import Distribution, require_positive


class Exponential(Distribution):
    """Exponential distribution with rate ``rate`` (mean ``1 / rate``)."""

    def __init__(self, rate: float) -> None:
        self._rate = require_positive("rate", rate)

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        """Construct from the mean instead of the rate."""
        return cls(1.0 / require_positive("mean", mean))

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def mean(self) -> float:
        return 1.0 / self._rate

    @property
    def variance(self) -> float:
        return 1.0 / (self._rate * self._rate)

    def cdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        return -math.expm1(-self._rate * t)

    def survival(self, t: float) -> float:
        if t <= 0:
            return 1.0
        return math.exp(-self._rate * t)

    def pdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        return self._rate * math.exp(-self._rate * t)

    def quantile(self, k: float) -> float:
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        return -math.log1p(-k) / self._rate

    def laplace(self, s: float) -> float:
        if s < 0:
            raise ValidationError(f"LST argument must be >= 0, got {s}")
        return self._rate / (self._rate + s)

    def cache_token(self):
        return ("exponential", self._rate)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.exponential(1.0 / self._rate, size=size)

    def sample_window(self, rng: np.random.Generator, size: int) -> np.ndarray:
        # rng.exponential fills vectorized output sequentially from the
        # same bit stream as scalar draws: the vectorized path is exact.
        return rng.exponential(1.0 / self._rate, size=int(size))


class Deterministic(Distribution):
    """A degenerate distribution: always exactly ``value``.

    Used for constant network delays (paper §4.2) and as the zero-variance
    extreme in burstiness sweeps (``D/M/1`` has the lowest GI/M/1 delay).
    """

    def __init__(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise ValidationError(f"value must be >= 0, got {value}")
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    @property
    def mean(self) -> float:
        return self._value

    @property
    def variance(self) -> float:
        return 0.0

    def cdf(self, t: float) -> float:
        return 1.0 if t >= self._value else 0.0

    def quantile(self, k: float) -> float:
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        return self._value

    def laplace(self, s: float) -> float:
        if s < 0:
            raise ValidationError(f"LST argument must be >= 0, got {s}")
        return math.exp(-s * self._value)

    def cache_token(self):
        return ("deterministic", self._value)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            return self._value
        return np.full(size, self._value)

    def sample_window(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(int(size), self._value)
