"""Additional heavy- and moderate-tailed laws for workload modeling.

Key/value sizes in the Facebook trace are well described by Pareto and
(generalized-extreme-value-like) skewed laws; we provide Pareto, Weibull
and Lognormal so workload generators can model realistic size mixes, and
so burstiness ablations can compare tail families.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import stats

from ..errors import ValidationError
from .base import Distribution, require_positive


class Pareto(Distribution):
    """Classic Pareto (Lomax-shifted) with ``P(T > t) = (xm / (xm + t))^alpha``.

    Location-zero (Lomax) form so support starts at 0, matching the other
    time distributions.
    """

    def __init__(self, alpha: float, xm: float) -> None:
        self._alpha = require_positive("alpha", alpha)
        self._xm = require_positive("xm", xm)

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def mean(self) -> float:
        if self._alpha <= 1.0:
            return math.inf
        return self._xm / (self._alpha - 1.0)

    @property
    def variance(self) -> float:
        if self._alpha <= 2.0:
            return math.inf
        a = self._alpha
        return self._xm**2 * a / ((a - 1.0) ** 2 * (a - 2.0))

    def cdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        return 1.0 - (self._xm / (self._xm + t)) ** self._alpha

    def survival(self, t: float) -> float:
        if t <= 0:
            return 1.0
        return (self._xm / (self._xm + t)) ** self._alpha

    def pdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        return self._alpha / self._xm * (self._xm / (self._xm + t)) ** (self._alpha + 1.0)

    def quantile(self, k: float) -> float:
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        return self._xm * ((1.0 - k) ** (-1.0 / self._alpha) - 1.0)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        u = rng.random(size)
        return self._xm * ((1.0 - u) ** (-1.0 / self._alpha) - 1.0)


class Weibull(Distribution):
    """Weibull with shape ``k`` and scale ``lam``.

    ``k < 1`` gives a heavy(ish) stretched-exponential tail, ``k > 1`` a
    light tail; a convenient one-knob burstiness family.
    """

    def __init__(self, shape: float, scale: float) -> None:
        self._shape = require_positive("shape", shape)
        self._scale = require_positive("scale", scale)

    @classmethod
    def from_mean(cls, mean: float, shape: float) -> "Weibull":
        """Construct with the given mean and shape."""
        mean = require_positive("mean", mean)
        shape = require_positive("shape", shape)
        scale = mean / math.gamma(1.0 + 1.0 / shape)
        return cls(shape, scale)

    @property
    def mean(self) -> float:
        return self._scale * math.gamma(1.0 + 1.0 / self._shape)

    @property
    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self._shape)
        g2 = math.gamma(1.0 + 2.0 / self._shape)
        return self._scale**2 * (g2 - g1 * g1)

    def cdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        return -math.expm1(-((t / self._scale) ** self._shape))

    def survival(self, t: float) -> float:
        if t <= 0:
            return 1.0
        return math.exp(-((t / self._scale) ** self._shape))

    def pdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        z = t / self._scale
        return (
            self._shape
            / self._scale
            * z ** (self._shape - 1.0)
            * math.exp(-(z**self._shape))
        )

    def quantile(self, k: float) -> float:
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        return self._scale * (-math.log1p(-k)) ** (1.0 / self._shape)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return self._scale * rng.weibull(self._shape, size=size)


class Lognormal(Distribution):
    """Lognormal with log-mean ``mu`` and log-std ``sigma``."""

    def __init__(self, mu: float, sigma: float) -> None:
        self._mu = float(mu)
        self._sigma = require_positive("sigma", sigma)

    @classmethod
    def from_mean_cv2(cls, mean: float, cv2: float) -> "Lognormal":
        """Construct from the mean and squared coefficient of variation."""
        mean = require_positive("mean", mean)
        cv2 = require_positive("cv2", cv2)
        sigma2 = math.log1p(cv2)
        mu = math.log(mean) - 0.5 * sigma2
        return cls(mu, math.sqrt(sigma2))

    @property
    def mean(self) -> float:
        return math.exp(self._mu + 0.5 * self._sigma**2)

    @property
    def variance(self) -> float:
        s2 = self._sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self._mu + s2)

    def cdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        return float(stats.norm.cdf((math.log(t) - self._mu) / self._sigma))

    def pdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        z = (math.log(t) - self._mu) / self._sigma
        return math.exp(-0.5 * z * z) / (t * self._sigma * math.sqrt(2.0 * math.pi))

    def quantile(self, k: float) -> float:
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        if k == 0.0:
            return 0.0
        return math.exp(self._mu + self._sigma * float(stats.norm.ppf(k)))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.lognormal(self._mu, self._sigma, size=size)
