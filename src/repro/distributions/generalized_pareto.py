"""Generalized Pareto inter-arrival gaps (paper eq. (24)).

The Facebook workload measurement (Atikoglu et al., SIGMETRICS'12) found
that key inter-arrival gaps at a Memcached server follow a Generalized
Pareto distribution. The paper parameterizes it by the average arrival
rate ``lam`` and the burst degree ``xi``::

    TX(t) = 1 - (1 + xi * lam * t / (1 - xi)) ** (-1 / xi)

which is a standard GPD with location 0, shape ``xi`` and scale
``(1 - xi) / lam``, so the mean gap is exactly ``1 / lam`` for every
``xi`` in ``[0, 1)``. ``xi = 0`` is the exponential (Poisson) limit;
larger ``xi`` means heavier tails, i.e. burstier arrivals.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ValidationError
from .base import Distribution, require_positive


class GeneralizedPareto(Distribution):
    """GPD in the paper's ``(rate, burst)`` parameterization.

    Parameters
    ----------
    rate:
        Average arrival rate ``lam`` (events/second); the mean gap is
        ``1 / lam`` regardless of ``xi``.
    xi:
        Burst degree (GPD shape) in ``[0, 1)``. ``xi = 0`` degenerates to
        an exponential; the paper's Facebook workload uses ``xi = 0.15``.
    """

    def __init__(self, rate: float, xi: float) -> None:
        self._rate = require_positive("rate", rate)
        xi = float(xi)
        if not 0.0 <= xi < 1.0:
            raise ValidationError(f"xi must be in [0, 1), got {xi}")
        # Tiny shapes make -1/xi overflow; below ~1e-10 the GPD is
        # numerically indistinguishable from its exponential limit.
        if xi < 1e-10:
            xi = 0.0
        self._xi = xi
        # Standard GPD scale; mean = scale / (1 - xi) = 1 / rate.
        self._scale = (1.0 - xi) / self._rate

    @property
    def arrival_rate(self) -> float:
        """The rate parameter ``lam``."""
        return self._rate

    @property
    def xi(self) -> float:
        """The burst degree (GPD shape)."""
        return self._xi

    @property
    def scale(self) -> float:
        """The standard GPD scale ``(1 - xi) / lam``."""
        return self._scale

    @property
    def mean(self) -> float:
        return 1.0 / self._rate

    @property
    def variance(self) -> float:
        xi = self._xi
        if xi >= 0.5:
            return math.inf
        s = self._scale
        return s * s / ((1.0 - xi) ** 2 * (1.0 - 2.0 * xi))

    def cdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        xi = self._xi
        if xi == 0.0:
            return -math.expm1(-t / self._scale)
        # expm1/log1p form of 1 - (1 + xi t/s)^(-1/xi): stable for tiny
        # xi, where the direct power loses ~xi*t/s of precision to the
        # enormous -1/xi exponent.
        return -math.expm1(-math.log1p(xi * t / self._scale) / xi)

    def survival(self, t: float) -> float:
        if t <= 0:
            return 1.0
        xi = self._xi
        if xi == 0.0:
            return math.exp(-t / self._scale)
        return math.exp(-math.log1p(xi * t / self._scale) / xi)

    def pdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        xi = self._xi
        if xi == 0.0:
            return math.exp(-t / self._scale) / self._scale
        return (
            math.exp(-(1.0 / xi + 1.0) * math.log1p(xi * t / self._scale))
            / self._scale
        )

    def quantile(self, k: float) -> float:
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        xi = self._xi
        if xi == 0.0:
            return -self._scale * math.log1p(-k)
        # expm1 form of s/xi * ((1-k)^(-xi) - 1); exact inverse of cdf.
        return self._scale / xi * math.expm1(-xi * math.log1p(-k))

    def cache_token(self):
        return ("gpd", self._rate, self._xi)

    def laplace(self, s: float) -> float:
        """LST via the confluent hypergeometric function of the second kind.

        With survival ``S(t) = (1 + t/beta)^(-a)`` (``beta = scale/xi``,
        ``a = 1/xi``), integrating by parts gives::

            E[exp(-s T)] = 1 - s * beta * U(1, 2 - a, s * beta)

        which is far more robust than adaptive quadrature for the slowly
        decaying heavy tail. Falls back to quadrature if ``hyperu``
        returns a non-finite value (extreme parameter corners).
        """
        if s < 0:
            raise ValidationError(f"LST argument must be >= 0, got {s}")
        if s == 0:
            return 1.0
        if self._xi == 0.0:
            return 1.0 / (1.0 + s * self._scale)
        from scipy import special

        beta = self._scale / self._xi
        a = 1.0 / self._xi
        value = special.hyperu(1.0, 2.0 - a, s * beta)
        if math.isfinite(value):
            result = 1.0 - s * beta * float(value)
            if -1e-9 <= result < 0.0:
                result = 0.0
            elif 1.0 < result <= 1.0 + 1e-9:
                result = 1.0
            if 0.0 <= result <= 1.0:
                return result
        return super().laplace(s)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        u = rng.random(size)
        xi = self._xi
        if xi == 0.0:
            if size is None:
                return -self._scale * math.log1p(-float(u))
            return -self._scale * np.log1p(-u)
        if size is None:
            return self._scale / xi * math.expm1(-xi * math.log1p(-float(u)))
        return self._scale / xi * np.expm1(-xi * np.log1p(-u))

    def sample_window(self, rng: np.random.Generator, size: int) -> np.ndarray:
        # The uniforms come from one vectorized draw (same bit stream as
        # scalar calls), but the inverse-CDF transform must stay on the
        # libm scalar path: np.expm1/np.log1p differ from math.expm1/
        # math.log1p in the last ulp for ~9% of inputs, which would break
        # the bit-identical windowing contract. The loop only runs once
        # per window refill.
        u = rng.random(int(size))
        xi = self._xi
        if xi == 0.0:
            scale = self._scale
            return np.asarray([-scale * math.log1p(-x) for x in u.tolist()])
        scale_over_xi = self._scale / xi
        return np.asarray(
            [scale_over_xi * math.expm1(-xi * math.log1p(-x)) for x in u.tolist()]
        )

    def with_rate(self, rate: float) -> "GeneralizedPareto":
        """Return a copy with the same burst degree and a new rate."""
        return GeneralizedPareto(rate, self._xi)
