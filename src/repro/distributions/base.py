"""Abstract base classes for the stochastic substrate.

Every arrival, service, and size process in the library is described by a
:class:`Distribution` object. The queueing solvers only need a small,
uniform surface: moments, CDF evaluation, quantiles, sampling, and the
Laplace–Stieltjes transform (LST) used by the GI/M/1 fixed point.

Analytic subclasses override :meth:`Distribution.laplace` with a closed
form; heavy-tailed ones (e.g. the Generalized Pareto the paper uses) fall
back to the adaptive-quadrature default in :mod:`repro.distributions.laplace`.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence

import numpy as np

from ..errors import ValidationError
from .laplace import laplace_from_survival


class Distribution(abc.ABC):
    """A non-negative continuous random variable.

    The library models times (inter-arrival gaps, service times, network
    delays), all of which are non-negative; implementations may assume
    ``t >= 0`` and must return ``cdf(t) = 0`` for ``t < 0``.
    """

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value ``E[T]``. ``math.inf`` if it does not exist."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Variance ``Var[T]``. ``math.inf`` if it does not exist."""

    @abc.abstractmethod
    def cdf(self, t: float) -> float:
        """``P(T <= t)``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one sample (``size=None``) or an ndarray of samples."""

    def sample_window(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` samples, bit-identical to ``size`` scalar :meth:`sample` calls.

        This is the contract the simulator's pre-drawn RNG windows rely
        on: a windowed stream must vend exactly the values the scalar
        hot path drew before, so seeded runs stay reproducible for any
        window size. The default draws scalars in a loop — always
        correct, never faster. Subclasses whose vectorized ``sample``
        matches the scalar path bit-for-bit (numpy fills vectorized
        output sequentially from the same bit stream for ``random``,
        ``exponential``, ``geometric``, ...) override this with the
        vectorized draw; subclasses that post-process with libm calls
        (``math.expm1`` vs ``np.expm1`` differ in the last ulp) must
        keep the scalar transform — see ``GeneralizedPareto``.
        """
        return np.asarray([self.sample(rng) for _ in range(int(size))], dtype=float)

    # ------------------------------------------------------------------
    # Derived quantities with sensible defaults.
    # ------------------------------------------------------------------

    @property
    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.variance)

    @property
    def cv2(self) -> float:
        """Squared coefficient of variation ``Var[T] / E[T]^2``.

        The key burstiness summary used by queueing approximations.
        """
        mean = self.mean
        if mean == 0:
            raise ValidationError("cv2 undefined for zero-mean distribution")
        if not math.isfinite(mean):
            return math.inf
        return self.variance / (mean * mean)

    @property
    def rate(self) -> float:
        """Event rate ``1 / E[T]``; convenient for arrival processes."""
        mean = self.mean
        if mean <= 0:
            raise ValidationError("rate undefined for non-positive mean")
        return 1.0 / mean

    def survival(self, t: float) -> float:
        """``P(T > t)``; override when a direct form is more accurate."""
        return 1.0 - self.cdf(t)

    def pdf(self, t: float) -> float:
        """Density at ``t``; default is a central finite difference."""
        if t < 0:
            return 0.0
        h = max(1e-9, abs(t) * 1e-6)
        lo = max(0.0, t - h)
        return (self.cdf(t + h) - self.cdf(lo)) / (t + h - lo)

    def quantile(self, k: float) -> float:
        """The k-th quantile ``inf{t : cdf(t) >= k}`` via bisection.

        Subclasses with closed-form inverses should override this.
        """
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        if k == 0.0:
            return 0.0
        lo, hi = 0.0, max(self.mean, 1e-12)
        # Expand the bracket geometrically until cdf(hi) >= k.
        for _ in range(200):
            if self.cdf(hi) >= k:
                break
            hi *= 2.0
        else:
            raise ValidationError(f"quantile bracket expansion failed for k={k}")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.cdf(mid) >= k:
                hi = mid
            else:
                lo = mid
            if hi - lo <= 1e-14 + 1e-10 * hi:
                break
        return hi

    def laplace(self, s: float) -> float:
        """Laplace–Stieltjes transform ``E[exp(-s T)]``.

        The default integrates the survival function numerically,
        ``LST(s) = 1 - s * integral_0^inf exp(-s t) S(t) dt``,
        which is stable even for heavy-tailed laws because the exponential
        factor tames the tail. Analytic subclasses override this.
        """
        return laplace_from_survival(self.survival, s, mean=self.mean)

    def cache_token(self):
        """Hashable value identifying this law, or ``None``.

        Two distributions with equal tokens must be identical in law
        (same CDF/LST); solvers use the token to memoize derived
        quantities such as the GI/M/1 fixed point across parameter
        sweeps. The default ``None`` opts out of caching — safe for
        data-backed laws (empirical samples, mixtures) whose identity
        is not captured by scalar parameters.
        """
        return None

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in sorted(vars(self).items())
            if not key.startswith("_")
        )
        return f"{type(self).__name__}({params})"


class DiscreteDistribution(abc.ABC):
    """A random variable on the positive integers (batch sizes, key counts)."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Variance."""

    @abc.abstractmethod
    def pmf(self, n: int) -> float:
        """``P(X = n)``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one sample or an ndarray of samples."""

    def sample_window(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` samples, bit-identical to scalar calls (see Distribution)."""
        return np.asarray([self.sample(rng) for _ in range(int(size))])

    def cdf(self, n: int) -> float:
        """``P(X <= n)``; default sums the pmf."""
        if n < 1:
            return 0.0
        return float(sum(self.pmf(i) for i in range(1, int(n) + 1)))

    def pgf(self, z: float, *, terms: int = 10_000, tol: float = 1e-14) -> float:
        """Probability generating function ``E[z^X]`` by truncated series."""
        total = 0.0
        power = z
        for n in range(1, terms + 1):
            term = self.pmf(n) * power
            total += term
            power *= z
            if abs(term) < tol and n > 8:
                break
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in sorted(vars(self).items())
            if not key.startswith("_")
        )
        return f"{type(self).__name__}({params})"


def require_positive(name: str, value: float) -> float:
    """Validate ``value > 0`` and return it as float."""
    value = float(value)
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return value


def require_nonnegative(name: str, value: float) -> float:
    """Validate ``value >= 0`` and return it as float."""
    value = float(value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def require_probability(name: str, value: float, *, closed: bool = True) -> float:
    """Validate that ``value`` is a probability and return it as float.

    With ``closed=False`` the endpoints 0 and 1 are excluded.
    """
    value = float(value)
    if closed:
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValidationError(f"{name} must be in (0, 1), got {value}")
    return value


def require_weights(name: str, weights: Sequence[float]) -> np.ndarray:
    """Validate a non-empty, non-negative weight vector summing to ~1."""
    array = np.asarray(weights, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValidationError(f"{name} must be a non-empty 1-D sequence")
    if np.any(array < 0):
        raise ValidationError(f"{name} must be non-negative")
    total = float(array.sum())
    if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
        raise ValidationError(f"{name} must sum to 1, got {total}")
    return array
