"""Discrete laws: batch sizes and key popularity.

* :class:`Geometric` — the paper's batch-size law. With concurrency
  probability ``q``, the number of keys arriving together is
  ``P(X = n) = q^(n-1) (1 - q)`` with mean ``1 / (1 - q)``.
* :class:`Zipf` — key popularity over a finite catalog; drives the
  unbalanced load shares ``{p_j}`` when keys are hashed to servers.
* :class:`FixedCount` — a degenerate batch size (no concurrency).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ValidationError
from .base import DiscreteDistribution, require_probability


class Geometric(DiscreteDistribution):
    """Batch size on ``{1, 2, ...}``: ``P(X = n) = q^(n-1) (1 - q)``.

    ``q`` is the paper's *concurrent probability*: each additional key in a
    burst arrives with probability ``q``. The mean batch size is
    ``1 / (1 - q)``.
    """

    def __init__(self, q: float) -> None:
        self._q = require_probability("q", q)
        if self._q == 1.0:
            raise ValidationError("q must be < 1 (otherwise batches never end)")

    @property
    def q(self) -> float:
        return self._q

    @property
    def mean(self) -> float:
        return 1.0 / (1.0 - self._q)

    @property
    def variance(self) -> float:
        return self._q / (1.0 - self._q) ** 2

    def pmf(self, n: int) -> float:
        if n < 1 or int(n) != n:
            return 0.0
        return self._q ** (n - 1) * (1.0 - self._q)

    def cdf(self, n: int) -> float:
        if n < 1:
            return 0.0
        return 1.0 - self._q ** int(n)

    def pgf(self, z: float, **_: object) -> float:
        if abs(z * self._q) >= 1.0:
            raise ValidationError(f"PGF diverges for |z q| >= 1 (z={z}, q={self._q})")
        return z * (1.0 - self._q) / (1.0 - self._q * z)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        # numpy's geometric counts trials to first success with P(success)=p,
        # support {1, 2, ...}, which is exactly our batch size with p = 1-q.
        if self._q == 0.0:
            if size is None:
                return 1
            return np.ones(size, dtype=np.int64)
        return rng.geometric(1.0 - self._q, size=size)

    def sample_window(self, rng: np.random.Generator, size: int) -> np.ndarray:
        # rng.geometric fills vectorized output from the same bit stream
        # as repeated scalar draws, so the vectorized path is exact.
        return np.asarray(self.sample(rng, int(size)))


class FixedCount(DiscreteDistribution):
    """Always exactly ``n`` — degenerate batch/key-count distribution."""

    def __init__(self, n: int) -> None:
        if int(n) != n or n < 1:
            raise ValidationError(f"n must be a positive integer, got {n}")
        self._n = int(n)

    @property
    def n(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return float(self._n)

    @property
    def variance(self) -> float:
        return 0.0

    def pmf(self, n: int) -> float:
        return 1.0 if n == self._n else 0.0

    def cdf(self, n: int) -> float:
        return 1.0 if n >= self._n else 0.0

    def pgf(self, z: float, **_: object) -> float:
        return z**self._n

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            return self._n
        return np.full(size, self._n, dtype=np.int64)

    def sample_window(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(int(size), self._n, dtype=np.int64)


class TruncatedBinomial(DiscreteDistribution):
    """Binomial(n, p) conditioned on being >= 1.

    This is the batch-size law a fork-join client *induces* at a server:
    a request with ``n`` keys sends ``Binomial(n, p)`` of them to a
    server with share ``p``, and a batch only exists when that count is
    positive. Used to model the closed-loop simulator's arrivals exactly
    (the paper's geometric is an approximation of this).
    """

    def __init__(self, n: int, p: float) -> None:
        if int(n) != n or n < 1:
            raise ValidationError(f"n must be a positive integer, got {n}")
        p = require_probability("p", p)
        if p == 0.0:
            raise ValidationError("p must be > 0 (batches must be possible)")
        self._n = int(n)
        self._p = p
        self._p_zero = (1.0 - p) ** self._n
        if self._p_zero >= 1.0:
            raise ValidationError("degenerate truncated binomial")
        # Precompute the conditioned pmf.
        ks = np.arange(0, self._n + 1)
        if p == 1.0:
            # Degenerate: every batch is exactly n keys.
            pmf = np.zeros(self._n + 1)
            pmf[self._n] = 1.0
        else:
            log_comb = (
                _log_factorial(self._n)
                - _log_factorial(ks)
                - _log_factorial(self._n - ks)
            )
            log_pmf = log_comb + ks * math.log(p) + (self._n - ks) * math.log1p(-p)
            pmf = np.exp(log_pmf)
            pmf[0] = 0.0
            pmf = pmf / pmf.sum()
        self._pmf = pmf
        self._cum = np.cumsum(self._pmf)

    @property
    def n(self) -> int:
        return self._n

    @property
    def p(self) -> float:
        return self._p

    @property
    def mean(self) -> float:
        return float(self._n * self._p / (1.0 - self._p_zero))

    @property
    def variance(self) -> float:
        ks = np.arange(0, self._n + 1, dtype=float)
        second = float(np.dot(ks * ks, self._pmf))
        return second - self.mean**2

    def pmf(self, n: int) -> float:
        if 1 <= n <= self._n and int(n) == n:
            return float(self._pmf[int(n)])
        return 0.0

    def cdf(self, n: int) -> float:
        if n < 1:
            return 0.0
        if n >= self._n:
            return 1.0
        return float(self._cum[int(n)])

    def pgf(self, z: float, **_: object) -> float:
        base = (1.0 - self._p + self._p * z) ** self._n
        return (base - self._p_zero) / (1.0 - self._p_zero)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        u = rng.random(size)
        idx = np.searchsorted(self._cum, u, side="left")
        if size is None:
            return int(idx)
        return idx.astype(np.int64)

    def sample_window(self, rng: np.random.Generator, size: int) -> np.ndarray:
        # Same uniform stream + deterministic searchsorted: exact.
        return np.asarray(self.sample(rng, int(size)))


def _log_factorial(values) -> np.ndarray:
    from scipy import special

    return special.gammaln(np.asarray(values, dtype=float) + 1.0)


class Zipf(DiscreteDistribution):
    """Zipf popularity over a finite catalog ``{1, ..., n_items}``.

    ``P(X = i) proportional to i^(-s)``. The Facebook key-popularity
    measurements are approximately Zipf with ``s`` slightly below 1; this
    drives the unbalanced per-server load shares.
    """

    def __init__(self, n_items: int, s: float = 1.0) -> None:
        if int(n_items) != n_items or n_items < 1:
            raise ValidationError(f"n_items must be a positive integer, got {n_items}")
        s = float(s)
        if s < 0:
            raise ValidationError(f"s must be >= 0, got {s}")
        self._n = int(n_items)
        self._s = s
        ranks = np.arange(1, self._n + 1, dtype=float)
        weights = ranks**-s
        self._probs = weights / weights.sum()
        self._cum = np.cumsum(self._probs)

    @property
    def n_items(self) -> int:
        return self._n

    @property
    def s(self) -> float:
        return self._s

    @property
    def probabilities(self) -> np.ndarray:
        """The full pmf vector over ranks ``1..n_items`` (copy)."""
        return self._probs.copy()

    @property
    def mean(self) -> float:
        return float(np.dot(np.arange(1, self._n + 1), self._probs))

    @property
    def variance(self) -> float:
        ranks = np.arange(1, self._n + 1, dtype=float)
        second = float(np.dot(ranks * ranks, self._probs))
        return second - self.mean**2

    def pmf(self, n: int) -> float:
        if 1 <= n <= self._n and int(n) == n:
            return float(self._probs[int(n) - 1])
        return 0.0

    def cdf(self, n: int) -> float:
        if n < 1:
            return 0.0
        if n >= self._n:
            return 1.0
        return float(self._cum[int(n) - 1])

    def head_mass(self, fraction: float) -> float:
        """Probability mass held by the top ``fraction`` of items.

        Quantifies the "a small percentage of values are accessed quite
        frequently" skew from the paper's §2.1.
        """
        fraction = require_probability("fraction", fraction)
        count = max(1, int(round(fraction * self._n)))
        return min(1.0, float(self._probs[:count].sum()))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        u = rng.random(size)
        idx = np.searchsorted(self._cum, u, side="left") + 1
        if size is None:
            return int(idx)
        return idx.astype(np.int64)

    def sample_window(self, rng: np.random.Generator, size: int) -> np.ndarray:
        # Same uniform stream + deterministic searchsorted: exact.
        return np.asarray(self.sample(rng, int(size)))
