"""Random-number-generator management.

All stochastic components take a :class:`numpy.random.Generator` explicitly
instead of touching global state, so experiments are reproducible and
parallel streams never collide. This module centralizes construction and
stream splitting.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a flexible seed spec.

    Accepts ``None`` (OS entropy), an int seed, an existing generator
    (returned unchanged), or a :class:`numpy.random.SeedSequence`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    The children are seeded from the parent's bit generator, so two
    simulator components (e.g. one arrival process per server) never share
    a stream even when run in arbitrary interleavings.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def rng_stream(rng: np.random.Generator) -> Iterator[np.random.Generator]:
    """Infinite iterator of independent child generators."""
    while True:
        yield np.random.default_rng(int(rng.integers(0, 2**63 - 1)))


def spawn_child(rng: np.random.Generator, tag: Optional[int] = None) -> np.random.Generator:
    """Derive a single child generator, optionally mixed with ``tag``.

    Mixing in a caller-supplied tag (e.g. a server index) makes the child
    stream a deterministic function of (parent seed, tag) rather than of
    the call order, which keeps sweeps reproducible when components are
    constructed in different orders.
    """
    base = int(rng.integers(0, 2**63 - 1))
    if tag is not None:
        base ^= (int(tag) * 0x9E3779B97F4A7C15) & (2**63 - 1)
    return np.random.default_rng(base)
