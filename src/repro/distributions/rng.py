"""Random-number-generator management.

All stochastic components take a :class:`numpy.random.Generator` explicitly
instead of touching global state, so experiments are reproducible and
parallel streams never collide. This module centralizes construction and
stream splitting.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a flexible seed spec.

    Accepts ``None`` (OS entropy), an int seed, an existing generator
    (returned unchanged), or a :class:`numpy.random.SeedSequence`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def seed_sequence(rng: np.random.Generator) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` behind a generator.

    Spawning children from the seed sequence (rather than drawing seeds
    from the generator's stream) makes the children a pure function of
    the parent's *seed*: consuming random numbers from the parent before
    splitting no longer changes which child streams are handed out.
    """
    bit_generator = rng.bit_generator
    seq = getattr(bit_generator, "seed_seq", None)
    if seq is None:  # numpy < 1.24 spelled it _seed_seq
        seq = getattr(bit_generator, "_seed_seq", None)
    if isinstance(seq, np.random.SeedSequence):
        return seq
    # Exotic bit generator without a seed sequence: derive one from the
    # stream (the legacy, order-dependent behavior — unavoidable here).
    return np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))


def split_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are spawned from the parent's seed sequence, so two
    simulator components (e.g. one arrival process per server) never
    share a stream, and the assignment depends only on the parent seed
    and spawn order — not on how much of the parent stream was consumed
    beforehand.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    children = seed_sequence(rng).spawn(count)
    return [np.random.Generator(np.random.PCG64(child)) for child in children]


def rng_stream(rng: np.random.Generator) -> Iterator[np.random.Generator]:
    """Infinite iterator of independent child generators."""
    seq = seed_sequence(rng)
    while True:
        yield np.random.Generator(np.random.PCG64(seq.spawn(1)[0]))


def spawn_child(rng: np.random.Generator, tag: Optional[int] = None) -> np.random.Generator:
    """Derive a single child generator, optionally keyed by ``tag``.

    A tagged child (e.g. per server index) is a deterministic function
    of (parent seed, tag): tags extend the seed sequence's spawn key,
    offset far above the sequential spawn counter so they can never
    collide with :func:`split_rng` children of the same parent.
    """
    seq = seed_sequence(rng)
    if tag is None:
        child = seq.spawn(1)[0]
    else:
        child = np.random.SeedSequence(
            entropy=seq.entropy,
            spawn_key=tuple(seq.spawn_key) + (2**31 + int(tag),),
        )
    return np.random.Generator(np.random.PCG64(child))
