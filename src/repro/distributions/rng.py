"""Random-number-generator management.

All stochastic components take a :class:`numpy.random.Generator` explicitly
instead of touching global state, so experiments are reproducible and
parallel streams never collide. This module centralizes construction and
stream splitting.
"""

from __future__ import annotations

import os
from typing import Callable, Iterator, Optional, Union

import numpy as np

from ..errors import ValidationError

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def _default_window() -> int:
    """Window size for pre-drawn RNG batches (``REPRO_RNG_WINDOW`` overrides)."""
    raw = os.environ.get("REPRO_RNG_WINDOW", "")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = 0
        if value >= 1:
            return value
    return 4096


#: Default number of values pre-drawn per refill by :class:`RandomWindow`.
#: Purely a perf knob: results are invariant to the window size because
#: each window consumes its own dedicated stream in order.
DEFAULT_RNG_WINDOW = _default_window()


class RandomWindow:
    """Pre-drawn window of random values with automatic refill.

    Replaces per-event scalar ``Generator`` calls on simulator hot paths:
    one vectorized draw of ``size`` values amortizes numpy's per-call
    overhead across the whole window, and :meth:`get` is a list index.

    The contract that makes this safe for seeded reproducibility: when
    ``fn(size)`` returns the same values as ``size`` successive scalar
    draws from the same stream (true for ``Generator.random``,
    ``Generator.exponential``, ``Generator.multinomial``, ... which fill
    vectorized output sequentially from one bit stream), the sequence
    :meth:`get` vends is bit-identical to the scalar calls it replaced —
    for *every* window size. Values are stored via ``ndarray.tolist()``
    so consumers receive plain Python floats/ints, exactly like
    ``float(rng.exponential(...))`` produced before.
    """

    __slots__ = ("_fn", "_size", "_values", "_index")

    def __init__(self, fn: Callable[[int], np.ndarray], size: Optional[int] = None) -> None:
        if size is None:
            size = DEFAULT_RNG_WINDOW
        if size < 1:
            raise ValidationError(f"window size must be >= 1, got {size}")
        self._fn = fn
        self._size = int(size)
        self._values: list = []
        self._index = 0

    @property
    def window_size(self) -> int:
        return self._size

    @property
    def remaining(self) -> int:
        """Values left before the next refill."""
        return len(self._values) - self._index

    def get(self):
        """The next value (refilling the window when it runs dry)."""
        i = self._index
        if i >= len(self._values):
            self._values = np.asarray(self._fn(self._size)).tolist()
            i = 0
        self._index = i + 1
        return self._values[i]

    def take(self, count: int) -> np.ndarray:
        """The next ``count`` values as an array (same stream order)."""
        if count < 0:
            raise ValidationError(f"count must be >= 0, got {count}")
        out: list = []
        while len(out) < count:
            if self._index >= len(self._values):
                self._values = np.asarray(self._fn(self._size)).tolist()
                self._index = 0
            grab = min(count - len(out), len(self._values) - self._index)
            out.extend(self._values[self._index : self._index + grab])
            self._index += grab
        return np.asarray(out)

    # Convenience constructors for the common simulator streams. ------

    @classmethod
    def exponential(
        cls,
        rng: np.random.Generator,
        mean: float,
        size: Optional[int] = None,
    ) -> "RandomWindow":
        """Windowed ``rng.exponential(mean)`` draws (arrival gaps)."""
        return cls(lambda n: rng.exponential(mean, n), size)

    @classmethod
    def uniform(
        cls, rng: np.random.Generator, size: Optional[int] = None
    ) -> "RandomWindow":
        """Windowed ``rng.random()`` draws (Bernoulli thinning, misses)."""
        return cls(lambda n: rng.random(n), size)

    @classmethod
    def multinomial(
        cls,
        rng: np.random.Generator,
        n: int,
        pvals,
        size: Optional[int] = None,
    ) -> "RandomWindow":
        """Windowed ``rng.multinomial(n, pvals)`` rows (key routing)."""
        pvals = np.asarray(pvals, dtype=float)
        return cls(lambda w: rng.multinomial(n, pvals, size=w), size)

    @classmethod
    def from_distribution(
        cls, distribution, rng: np.random.Generator, size: Optional[int] = None
    ) -> "RandomWindow":
        """Windowed draws from a :class:`Distribution` (service times).

        Uses the distribution's :meth:`~Distribution.sample_window`
        (bit-identical-to-scalar contract) when available, falling back
        to a scalar loop for duck-typed distributions.
        """
        window = getattr(distribution, "sample_window", None)
        if window is not None:
            return cls(lambda n: window(rng, n), size)
        return cls(
            lambda n: np.asarray([distribution.sample(rng) for _ in range(n)]),
            size,
        )


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a flexible seed spec.

    Accepts ``None`` (OS entropy), an int seed, an existing generator
    (returned unchanged), or a :class:`numpy.random.SeedSequence`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def seed_sequence(rng: np.random.Generator) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` behind a generator.

    Spawning children from the seed sequence (rather than drawing seeds
    from the generator's stream) makes the children a pure function of
    the parent's *seed*: consuming random numbers from the parent before
    splitting no longer changes which child streams are handed out.
    """
    bit_generator = rng.bit_generator
    seq = getattr(bit_generator, "seed_seq", None)
    if seq is None:  # numpy < 1.24 spelled it _seed_seq
        seq = getattr(bit_generator, "_seed_seq", None)
    if isinstance(seq, np.random.SeedSequence):
        return seq
    # Exotic bit generator without a seed sequence: derive one from the
    # stream (the legacy, order-dependent behavior — unavoidable here).
    return np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))


def split_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are spawned from the parent's seed sequence, so two
    simulator components (e.g. one arrival process per server) never
    share a stream, and the assignment depends only on the parent seed
    and spawn order — not on how much of the parent stream was consumed
    beforehand.
    """
    if count < 0:
        raise ValidationError(f"count must be >= 0, got {count}")
    children = seed_sequence(rng).spawn(count)
    return [np.random.Generator(np.random.PCG64(child)) for child in children]


def rng_stream(rng: np.random.Generator) -> Iterator[np.random.Generator]:
    """Infinite iterator of independent child generators."""
    seq = seed_sequence(rng)
    while True:
        yield np.random.Generator(np.random.PCG64(seq.spawn(1)[0]))


def spawn_child(rng: np.random.Generator, tag: Optional[int] = None) -> np.random.Generator:
    """Derive a single child generator, optionally keyed by ``tag``.

    A tagged child (e.g. per server index) is a deterministic function
    of (parent seed, tag): tags extend the seed sequence's spawn key,
    offset far above the sequential spawn counter so they can never
    collide with :func:`split_rng` children of the same parent.
    """
    seq = seed_sequence(rng)
    if tag is None:
        child = seq.spawn(1)[0]
    else:
        child = np.random.SeedSequence(
            entropy=seq.entropy,
            spawn_key=tuple(seq.spawn_key) + (2**31 + int(tag),),
        )
    return np.random.Generator(np.random.PCG64(child))
