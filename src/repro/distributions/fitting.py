"""Fitting workload distributions from trace samples.

The paper generates load from a *statistical model* of the Facebook trace
(Generalized Pareto gaps, concurrency probability ``q``). Given a raw
timestamp trace, these helpers recover those model parameters so users
can calibrate the analytic model to their own deployments:

* :func:`fit_generalized_pareto` — MLE (scipy) of ``(rate, xi)`` for gaps.
* :func:`estimate_concurrency` — fraction of gaps below the concurrency
  window, the paper's ``q``.
* :func:`fit_exponential_rate` — MLE service rate from service samples.
* :func:`fit_workload_from_timestamps` — the full pipeline: timestamps ->
  (lambda, xi, q).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np
from scipy import stats

from ..errors import ValidationError
from .generalized_pareto import GeneralizedPareto

#: The paper treats keys closer than 1 microsecond as "concurrent".
CONCURRENCY_WINDOW_SECONDS = 1e-6


@dataclasses.dataclass(frozen=True)
class WorkloadFit:
    """Result of fitting the paper's workload model to a gap trace."""

    rate: float
    """Average key arrival rate (keys/second)."""

    xi: float
    """Fitted burst degree (GPD shape)."""

    q: float
    """Estimated concurrency probability."""

    n_gaps: int
    """Number of inter-arrival gaps used."""

    log_likelihood: float
    """GPD log-likelihood of the non-concurrent gaps at the fit."""

    def gap_distribution(self) -> GeneralizedPareto:
        """The fitted batch-gap distribution."""
        return GeneralizedPareto(self.rate, self.xi)


def _validate_gaps(gaps: Sequence[float]) -> np.ndarray:
    data = np.asarray(gaps, dtype=float)
    if data.ndim != 1 or data.size < 2:
        raise ValidationError("need at least two gap samples")
    if np.any(data < 0) or not np.all(np.isfinite(data)):
        raise ValidationError("gaps must be finite and non-negative")
    return data


def fit_generalized_pareto(gaps: Sequence[float]) -> GeneralizedPareto:
    """MLE fit of the paper's ``(rate, xi)`` GPD to inter-arrival gaps.

    The shape is constrained to ``[0, 1)`` (the paper's domain); location
    is fixed at zero. Falls back to the exponential (``xi = 0``) when the
    unconstrained MLE shape is negative.
    """
    data = _validate_gaps(gaps)
    positive = data[data > 0]
    if positive.size < 2:
        raise ValidationError("need at least two positive gaps for a GPD fit")
    shape, _, scale = stats.genpareto.fit(positive, floc=0.0)
    shape = min(max(float(shape), 0.0), 0.999)
    scale = float(scale)
    # Re-derive the rate from (shape, scale): mean = scale / (1 - shape).
    mean = scale / (1.0 - shape)
    return GeneralizedPareto(1.0 / mean, shape)


def estimate_concurrency(
    gaps: Sequence[float], window: float = CONCURRENCY_WINDOW_SECONDS
) -> float:
    """Estimate the concurrency probability ``q``.

    ``q`` is the fraction of inter-arrival gaps smaller than the
    concurrency window (the paper uses < 1 microsecond, with the Facebook
    measurement q ~ 0.1159).
    """
    data = _validate_gaps(gaps)
    if window <= 0:
        raise ValidationError(f"window must be > 0, got {window}")
    return float(np.mean(data < window))


def fit_exponential_rate(samples: Sequence[float]) -> float:
    """MLE of an exponential rate: ``n / sum(samples)``."""
    data = np.asarray(samples, dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise ValidationError("need at least one sample")
    if np.any(data < 0) or not np.all(np.isfinite(data)):
        raise ValidationError("samples must be finite and non-negative")
    total = float(data.sum())
    if total <= 0:
        raise ValidationError("samples must not all be zero")
    return data.size / total


def fit_workload_from_timestamps(
    timestamps: Sequence[float],
    *,
    window: float = CONCURRENCY_WINDOW_SECONDS,
) -> WorkloadFit:
    """Fit the full workload model ``(lambda, xi, q)`` from key timestamps.

    Gaps below the concurrency window count toward ``q`` (they are
    within-batch arrivals); the remaining gaps are fit with a GPD to get
    the batch-gap law, matching how the paper's model separates batching
    from the renewal process.
    """
    ts = np.asarray(timestamps, dtype=float)
    if ts.ndim != 1 or ts.size < 3:
        raise ValidationError("need at least three timestamps")
    if not np.all(np.isfinite(ts)):
        raise ValidationError("timestamps must be finite")
    ts = np.sort(ts)
    gaps = np.diff(ts)
    q = estimate_concurrency(gaps, window)
    batch_gaps = gaps[gaps >= window]
    if batch_gaps.size < 2:
        raise ValidationError("not enough non-concurrent gaps to fit a GPD")
    gpd = fit_generalized_pareto(batch_gaps)
    loglik = float(
        np.sum(np.log(np.maximum([gpd.pdf(g) for g in batch_gaps], 1e-300)))
    )
    span = float(ts[-1] - ts[0])
    if span <= 0:
        raise ValidationError("timestamps must span a positive interval")
    key_rate = (ts.size - 1) / span
    return WorkloadFit(
        rate=key_rate,
        xi=gpd.xi,
        q=q,
        n_gaps=int(gaps.size),
        log_likelihood=loglik,
    )


def empirical_cv2(samples: Sequence[float]) -> float:
    """Squared coefficient of variation of a sample."""
    data = np.asarray(samples, dtype=float)
    if data.ndim != 1 or data.size < 2:
        raise ValidationError("need at least two samples")
    mean = float(data.mean())
    if mean == 0:
        raise ValidationError("cv2 undefined for zero-mean sample")
    return float(data.var(ddof=1)) / (mean * mean)


def lilliefors_exponential_distance(samples: Sequence[float]) -> float:
    """KS distance of a sample from the exponential with matched mean.

    A quick goodness-of-fit signal: large values mean the gap trace is not
    Poisson and a bursty (GPD) model is warranted.
    """
    data = np.asarray(samples, dtype=float)
    if data.ndim != 1 or data.size < 2:
        raise ValidationError("need at least two samples")
    mean = float(data.mean())
    if mean <= 0:
        raise ValidationError("mean must be positive")
    statistic, _ = stats.kstest(data, "expon", args=(0.0, mean))
    return float(statistic)
