"""Numeric Laplace–Stieltjes transforms.

The GI/M/1 fixed point (paper eq. (6)) needs ``L_TX(s) = E[exp(-s T)]``
for the inter-arrival distribution ``TX``. The paper's Facebook workload
uses a Generalized Pareto ``TX`` whose LST has no elementary closed form,
so we evaluate it with adaptive quadrature on the survival-function
identity::

    E[exp(-s T)] = 1 - s * \\int_0^\\infty exp(-s t) P(T > t) dt

This form is preferred over integrating ``exp(-s t) f(t) dt`` because it
avoids needing the density and is numerically benign for heavy tails: the
integrand is bounded by ``exp(-s t)`` which quadrature handles well.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from scipy import integrate

from ..errors import ConvergenceError, ValidationError


def laplace_from_survival(
    survival: Callable[[float], float],
    s: float,
    *,
    mean: Optional[float] = None,
    rtol: float = 1e-10,
) -> float:
    """Evaluate ``E[exp(-s T)]`` from the survival function of ``T``.

    Parameters
    ----------
    survival:
        ``t -> P(T > t)`` for ``t >= 0``.
    s:
        Transform argument; must be ``>= 0`` (the GI/M/1 fixed point only
        evaluates the LST on the non-negative real axis).
    mean:
        Optional ``E[T]``; used to scale the integration variable so that
        quadrature sees an O(1) problem regardless of units.
    rtol:
        Relative tolerance passed to the quadrature routine.
    """
    if s < 0:
        raise ValidationError(f"LST argument must be >= 0, got {s}")
    if s == 0:
        return 1.0

    # Change variables u = s * t so the integrand decays like exp(-u):
    # integral exp(-s t) S(t) dt = (1/s) integral exp(-u) S(u / s) du.
    def integrand(u: float) -> float:
        return math.exp(-u) * survival(u / s)

    value, abserr = integrate.quad(
        integrand,
        0.0,
        math.inf,
        epsabs=1e-13,
        epsrel=rtol,
        limit=400,
    )
    if not math.isfinite(value):
        raise ConvergenceError(
            f"quadrature for LST diverged at s={s}", last_value=value
        )
    result = 1.0 - value
    # Clamp tiny numerical excursions outside [0, 1].
    if -1e-9 <= result < 0.0:
        result = 0.0
    elif 1.0 < result <= 1.0 + 1e-9:
        result = 1.0
    if not 0.0 <= result <= 1.0:
        raise ConvergenceError(
            f"LST value {result} outside [0, 1] at s={s} "
            f"(quadrature error {abserr:.2e})",
            last_value=result,
        )
    return result


def laplace_derivative(
    laplace: Callable[[float], float], s: float, *, h: Optional[float] = None
) -> float:
    """First derivative ``d/ds E[exp(-s T)]`` by central difference.

    Useful for checking ``-L'(0) = E[T]`` in tests and for Newton steps in
    the fixed-point solver.
    """
    if h is None:
        h = max(1e-8, abs(s) * 1e-6)
    if s - h < 0:
        # One-sided at the boundary; the LST is only defined for s >= 0.
        return (laplace(s + h) - laplace(s)) / h
    return (laplace(s + h) - laplace(s - h)) / (2.0 * h)
