"""Phase-type and classical renewal distributions.

These cover the burstiness spectrum around the exponential:

* :class:`Erlang` / :class:`Gamma` — smoother than Poisson (cv2 < 1),
  the low-variance side of GI/M/1 sweeps.
* :class:`Hyperexponential` — burstier than Poisson (cv2 > 1) with a
  closed-form LST; a light-tailed alternative to the Generalized Pareto
  for ablations.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np
from scipy import special, stats

from ..errors import ValidationError
from .base import Distribution, require_positive, require_weights


class Gamma(Distribution):
    """Gamma distribution with shape ``k`` and rate ``rate``."""

    def __init__(self, shape: float, rate: float) -> None:
        self._shape = require_positive("shape", shape)
        self._rate = require_positive("rate", rate)

    @classmethod
    def from_mean_cv2(cls, mean: float, cv2: float) -> "Gamma":
        """Construct from mean and squared coefficient of variation."""
        mean = require_positive("mean", mean)
        cv2 = require_positive("cv2", cv2)
        shape = 1.0 / cv2
        return cls(shape, shape / mean)

    @property
    def shape(self) -> float:
        return self._shape

    @property
    def mean(self) -> float:
        return self._shape / self._rate

    @property
    def variance(self) -> float:
        return self._shape / (self._rate * self._rate)

    def cdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        return float(special.gammainc(self._shape, self._rate * t))

    def pdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        return float(stats.gamma.pdf(t, self._shape, scale=1.0 / self._rate))

    def quantile(self, k: float) -> float:
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        return float(stats.gamma.ppf(k, self._shape, scale=1.0 / self._rate))

    def laplace(self, s: float) -> float:
        if s < 0:
            raise ValidationError(f"LST argument must be >= 0, got {s}")
        return (self._rate / (self._rate + s)) ** self._shape

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.gamma(self._shape, 1.0 / self._rate, size=size)


class Erlang(Gamma):
    """Erlang-k: Gamma with integer shape; sum of k exponentials."""

    def __init__(self, k: int, rate: float) -> None:
        if int(k) != k or k < 1:
            raise ValidationError(f"Erlang order must be a positive integer, got {k}")
        super().__init__(int(k), rate)

    @property
    def order(self) -> int:
        return int(self._shape)


class Hyperexponential(Distribution):
    """Mixture of exponentials: with prob ``w_i`` the rate is ``rates[i]``.

    cv2 >= 1 always, which makes it the canonical *bursty but light-tailed*
    renewal process for GI/M/1 studies.
    """

    def __init__(self, weights: Sequence[float], rates: Sequence[float]) -> None:
        self._weights = require_weights("weights", weights)
        rates = np.asarray(rates, dtype=float)
        if rates.shape != self._weights.shape:
            raise ValidationError("weights and rates must have equal length")
        if np.any(rates <= 0):
            raise ValidationError("all rates must be > 0")
        self._rates = rates

    @classmethod
    def balanced_two_phase(cls, mean: float, cv2: float) -> "Hyperexponential":
        """Two-phase H2 with balanced means matching ``mean`` and ``cv2 >= 1``.

        Uses the standard balanced-means construction: ``p1/r1 = p2/r2``.
        """
        mean = require_positive("mean", mean)
        cv2 = float(cv2)
        if cv2 < 1.0:
            raise ValidationError(f"H2 requires cv2 >= 1, got {cv2}")
        if math.isclose(cv2, 1.0):
            return cls([1.0], [1.0 / mean])
        root = math.sqrt((cv2 - 1.0) / (cv2 + 1.0))
        p1 = 0.5 * (1.0 + root)
        p2 = 1.0 - p1
        r1 = 2.0 * p1 / mean
        r2 = 2.0 * p2 / mean
        return cls([p1, p2], [r1, r2])

    @property
    def mean(self) -> float:
        return float(np.sum(self._weights / self._rates))

    @property
    def variance(self) -> float:
        second = float(np.sum(2.0 * self._weights / self._rates**2))
        return second - self.mean**2

    def cdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        return float(np.sum(self._weights * -np.expm1(-self._rates * t)))

    def survival(self, t: float) -> float:
        if t <= 0:
            return 1.0
        return float(np.sum(self._weights * np.exp(-self._rates * t)))

    def pdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        return float(np.sum(self._weights * self._rates * np.exp(-self._rates * t)))

    def laplace(self, s: float) -> float:
        if s < 0:
            raise ValidationError(f"LST argument must be >= 0, got {s}")
        return float(np.sum(self._weights * self._rates / (self._rates + s)))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            phase = rng.choice(len(self._rates), p=self._weights)
            return rng.exponential(1.0 / self._rates[phase])
        phases = rng.choice(len(self._rates), size=size, p=self._weights)
        return rng.exponential(1.0 / self._rates[phases])


class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``; a simple low-variance law."""

    def __init__(self, low: float, high: float) -> None:
        low = float(low)
        high = float(high)
        if low < 0 or high <= low:
            raise ValidationError(f"need 0 <= low < high, got [{low}, {high}]")
        self._low = low
        self._high = high

    @property
    def mean(self) -> float:
        return 0.5 * (self._low + self._high)

    @property
    def variance(self) -> float:
        return (self._high - self._low) ** 2 / 12.0

    def cdf(self, t: float) -> float:
        if t <= self._low:
            return 0.0
        if t >= self._high:
            return 1.0
        return (t - self._low) / (self._high - self._low)

    def pdf(self, t: float) -> float:
        if self._low <= t <= self._high:
            return 1.0 / (self._high - self._low)
        return 0.0

    def quantile(self, k: float) -> float:
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        return self._low + k * (self._high - self._low)

    def laplace(self, s: float) -> float:
        if s < 0:
            raise ValidationError(f"LST argument must be >= 0, got {s}")
        if s == 0:
            return 1.0
        width = self._high - self._low
        return (math.exp(-s * self._low) - math.exp(-s * self._high)) / (s * width)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.uniform(self._low, self._high, size=size)
