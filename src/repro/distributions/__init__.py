"""Stochastic substrate: distributions, transforms, fitting, RNG streams.

Everything random in the library flows through these classes; see
:class:`repro.distributions.Distribution` for the shared interface.
"""

from .base import (
    DiscreteDistribution,
    Distribution,
    require_nonnegative,
    require_positive,
    require_probability,
    require_weights,
)
from .discrete import FixedCount, Geometric, TruncatedBinomial, Zipf
from .empirical import Empirical, Mixture, Shifted
from .exponential import Deterministic, Exponential
from .fitting import (
    CONCURRENCY_WINDOW_SECONDS,
    WorkloadFit,
    empirical_cv2,
    estimate_concurrency,
    fit_exponential_rate,
    fit_generalized_pareto,
    fit_workload_from_timestamps,
    lilliefors_exponential_distance,
)
from .generalized_pareto import GeneralizedPareto
from .heavy_tail import Lognormal, Pareto, Weibull
from .laplace import laplace_derivative, laplace_from_survival
from .phase_type import Erlang, Gamma, Hyperexponential, Uniform
from .rng import (
    DEFAULT_RNG_WINDOW,
    RandomWindow,
    RngLike,
    make_rng,
    rng_stream,
    seed_sequence,
    spawn_child,
    split_rng,
)

__all__ = [
    "CONCURRENCY_WINDOW_SECONDS",
    "DEFAULT_RNG_WINDOW",
    "Deterministic",
    "DiscreteDistribution",
    "Distribution",
    "Empirical",
    "Erlang",
    "Exponential",
    "FixedCount",
    "Gamma",
    "GeneralizedPareto",
    "Geometric",
    "Hyperexponential",
    "Lognormal",
    "Mixture",
    "Pareto",
    "RandomWindow",
    "RngLike",
    "Shifted",
    "TruncatedBinomial",
    "Uniform",
    "Weibull",
    "WorkloadFit",
    "Zipf",
    "empirical_cv2",
    "estimate_concurrency",
    "fit_exponential_rate",
    "fit_generalized_pareto",
    "fit_workload_from_timestamps",
    "laplace_derivative",
    "laplace_from_survival",
    "lilliefors_exponential_distance",
    "make_rng",
    "require_nonnegative",
    "require_positive",
    "require_probability",
    "require_weights",
    "rng_stream",
    "seed_sequence",
    "spawn_child",
    "split_rng",
]
