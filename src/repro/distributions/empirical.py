"""Empirical (trace-driven) distributions and mixtures.

:class:`Empirical` wraps a sample of observed gaps/latencies so measured
traces can be plugged anywhere a parametric law is accepted — including
the GI/M/1 fixed point, whose LST is computed from the empirical average
of ``exp(-s t)``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..errors import ValidationError
from .base import Distribution, require_weights


class Empirical(Distribution):
    """Distribution defined by an observed sample (ECDF + bootstrap sampling)."""

    def __init__(self, samples: Sequence[float]) -> None:
        data = np.asarray(samples, dtype=float)
        if data.ndim != 1 or data.size == 0:
            raise ValidationError("samples must be a non-empty 1-D sequence")
        if np.any(data < 0) or not np.all(np.isfinite(data)):
            raise ValidationError("samples must be finite and non-negative")
        self._sorted = np.sort(data)

    @property
    def n_samples(self) -> int:
        return int(self._sorted.size)

    @property
    def mean(self) -> float:
        return float(self._sorted.mean())

    @property
    def variance(self) -> float:
        if self._sorted.size < 2:
            return 0.0
        return float(self._sorted.var(ddof=1))

    def cdf(self, t: float) -> float:
        return float(np.searchsorted(self._sorted, t, side="right")) / self._sorted.size

    def quantile(self, k: float) -> float:
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        return float(np.quantile(self._sorted, k, method="inverted_cdf"))

    def laplace(self, s: float) -> float:
        if s < 0:
            raise ValidationError(f"LST argument must be >= 0, got {s}")
        return float(np.mean(np.exp(-s * self._sorted)))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            return float(rng.choice(self._sorted))
        return rng.choice(self._sorted, size=size)


class Mixture(Distribution):
    """Finite mixture of component distributions with given weights."""

    def __init__(self, weights: Sequence[float], components: Sequence[Distribution]) -> None:
        self._weights = require_weights("weights", weights)
        if len(components) != self._weights.size:
            raise ValidationError("weights and components must have equal length")
        self._components = list(components)

    @property
    def components(self) -> list:
        return list(self._components)

    @property
    def mean(self) -> float:
        return float(
            sum(w * c.mean for w, c in zip(self._weights, self._components))
        )

    @property
    def variance(self) -> float:
        # Law of total variance: E[Var] + Var[E].
        mean = self.mean
        second = sum(
            w * (c.variance + c.mean**2)
            for w, c in zip(self._weights, self._components)
        )
        if any(not math.isfinite(c.variance) for c in self._components):
            return math.inf
        return float(second - mean**2)

    def cdf(self, t: float) -> float:
        return float(
            sum(w * c.cdf(t) for w, c in zip(self._weights, self._components))
        )

    def pdf(self, t: float) -> float:
        return float(
            sum(w * c.pdf(t) for w, c in zip(self._weights, self._components))
        )

    def laplace(self, s: float) -> float:
        return float(
            sum(w * c.laplace(s) for w, c in zip(self._weights, self._components))
        )

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            idx = rng.choice(len(self._components), p=self._weights)
            return self._components[idx].sample(rng)
        idx = rng.choice(len(self._components), size=size, p=self._weights)
        out = np.empty(size, dtype=float)
        for i, component in enumerate(self._components):
            mask = idx == i
            count = int(mask.sum())
            if count:
                out[mask] = np.asarray(component.sample(rng, count))
        return out


class Shifted(Distribution):
    """``offset + T`` for a base distribution ``T``.

    Models a fixed floor under a random component, e.g. constant
    propagation delay plus random queueing.
    """

    def __init__(self, base: Distribution, offset: float) -> None:
        offset = float(offset)
        if offset < 0:
            raise ValidationError(f"offset must be >= 0, got {offset}")
        self._base = base
        self._offset = offset

    @property
    def mean(self) -> float:
        return self._base.mean + self._offset

    @property
    def variance(self) -> float:
        return self._base.variance

    def cdf(self, t: float) -> float:
        return self._base.cdf(t - self._offset)

    def pdf(self, t: float) -> float:
        return self._base.pdf(t - self._offset)

    def quantile(self, k: float) -> float:
        return self._offset + self._base.quantile(k)

    def laplace(self, s: float) -> float:
        return math.exp(-s * self._offset) * self._base.laplace(s)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return self._base.sample(rng, size) + self._offset
