"""Per-request mitigation policies: timeouts, retries, hedged requests.

The paper's model sends each key once and waits. Production clients do
not: they hedge (fire a duplicate of a slow key after a delay and take
the first answer — Dean & Barroso's "tail at scale" trick, the dynamic
cousin of the static redundancy analyzed in
:mod:`repro.core.redundancy`), or they time out and retry with backoff.
:class:`RequestPolicy` is the declarative description of one such
client-side policy; the event-engine simulator interprets it per key.

The two mechanisms compose: a policy may hedge *and* time out. Both are
no-ops on the analytic backends, which model the policy-free system —
the simulators are where policies earn (or lose) their keep.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..errors import ConfigError, ValidationError

__all__ = ["RequestPolicy", "hedge_delay_from_quantile"]


@dataclasses.dataclass(frozen=True)
class RequestPolicy:
    """Client-side per-key mitigation policy.

    Parameters
    ----------
    timeout:
        Per-attempt deadline in seconds. When it expires before the key
        resolves, outstanding attempts are abandoned and (while retries
        remain) the key is re-sent.
    max_retries:
        Re-sends allowed after the first attempt. Once exhausted, the
        outstanding attempts race to completion untimed — a key always
        resolves eventually.
    backoff:
        Timeout multiplier applied on each retry (>= 1).
    hedge_delay:
        Seconds after dispatch at which a duplicate attempt is fired at
        a *different* server (the same server when the cluster has only
        one). ``0.0`` duplicates immediately — static 2-way redundancy,
        the regime :class:`~repro.core.redundancy.RedundancyModel`
        predicts analytically.
    cancel_on_winner:
        Abandon the losing attempts the moment the first one resolves.
        Queued losers are dropped without consuming service capacity;
        in-service losers run out (the server cannot un-serve them).
    """

    timeout: Optional[float] = None
    max_retries: int = 0
    backoff: float = 2.0
    hedge_delay: Optional[float] = None
    cancel_on_winner: bool = True

    def __post_init__(self) -> None:
        if self.timeout is None and self.hedge_delay is None:
            raise ValidationError(
                "a policy must set timeout and/or hedge_delay "
                "(use policy=None for the policy-free system)"
            )
        if self.timeout is not None and self.timeout <= 0.0:
            raise ValidationError(f"timeout must be > 0, got {self.timeout}")
        if int(self.max_retries) != self.max_retries or self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be a non-negative integer, got {self.max_retries}"
            )
        if self.max_retries > 0 and self.timeout is None:
            raise ValidationError("max_retries > 0 requires a timeout")
        if self.backoff < 1.0:
            raise ValidationError(f"backoff must be >= 1, got {self.backoff}")
        if self.hedge_delay is not None and self.hedge_delay < 0.0:
            raise ValidationError(
                f"hedge_delay must be >= 0, got {self.hedge_delay}"
            )

    # ------------------------------------------------------------------

    @property
    def hedges(self) -> bool:
        return self.hedge_delay is not None

    @property
    def times_out(self) -> bool:
        return self.timeout is not None

    @classmethod
    def hedged(
        cls, hedge_delay: float, *, cancel_on_winner: bool = True
    ) -> "RequestPolicy":
        """Pure hedging: duplicate each key after ``hedge_delay`` seconds."""
        return cls(hedge_delay=hedge_delay, cancel_on_winner=cancel_on_winner)

    @classmethod
    def timeout_retry(
        cls, timeout: float, *, max_retries: int = 1, backoff: float = 2.0
    ) -> "RequestPolicy":
        """Pure timeout/retry: re-send after ``timeout``, up to ``max_retries``."""
        return cls(timeout=timeout, max_retries=max_retries, backoff=backoff)

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RequestPolicy":
        if not isinstance(payload, dict):
            raise ConfigError("policy payload must be an object")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown policy keys: {sorted(unknown)}")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ConfigError(f"incomplete policy: {exc}") from exc


def hedge_delay_from_quantile(
    workload,
    service_rate: float,
    quantile: float,
    *,
    pool_size: int = 50_000,
    seed: int = 0,
):
    """Pick a hedge delay at a quantile of the no-fault key latency.

    The standard hedging recipe ("hedge at the p95") fires the duplicate
    only for keys already slower than the bulk, bounding the extra load
    at ``1 - quantile`` of the key rate. The quantile comes from the
    vectorized single-server GI^X/M/1 latency pool for ``workload`` at
    ``service_rate`` — the same machinery the ``fastpath`` backend uses.
    """
    if not 0.0 < quantile < 1.0:
        raise ValidationError(f"quantile must be in (0, 1), got {quantile}")
    # Local import: repro.simulation imports repro.policies (the system
    # simulator interprets policies), so the reverse edge must be lazy.
    import numpy as np

    from ..distributions import make_rng
    from ..simulation.fastpath import simulate_key_latencies

    pool = simulate_key_latencies(
        workload, service_rate, n_keys=pool_size, rng=make_rng(seed)
    )
    return float(np.quantile(pool, quantile))
