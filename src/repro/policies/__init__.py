"""Client-side request policies (hedging, timeout/retry).

:class:`RequestPolicy` declares how the simulated client mitigates slow
keys; :func:`hedge_delay_from_quantile` picks the standard
hedge-at-a-quantile trigger from the no-fault latency distribution.
"""

from .policy import RequestPolicy, hedge_delay_from_quantile

__all__ = ["RequestPolicy", "hedge_delay_from_quantile"]
