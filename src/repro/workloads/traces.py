"""Trace recording and replay.

Record per-key arrival timestamps (and optional batch sizes) from any
generator, persist them as CSV, and replay them into the simulator or
the fitting pipeline. Lets users calibrate the model on their own
production traces exactly as §5 of the paper calibrates on Facebook's.
"""

from __future__ import annotations

import csv
import dataclasses
import io
from pathlib import Path
from typing import Iterable, List, Union

import numpy as np

from ..distributions import fit_workload_from_timestamps, WorkloadFit
from ..errors import ValidationError
from ..simulation.arrivals import Batch


@dataclasses.dataclass(frozen=True)
class KeyTrace:
    """Per-key arrival timestamps at one server (seconds, sorted)."""

    timestamps: np.ndarray

    def __post_init__(self) -> None:
        ts = np.asarray(self.timestamps, dtype=float)
        if ts.ndim != 1 or ts.size == 0:
            raise ValidationError("trace must contain at least one timestamp")
        if np.any(np.diff(ts) < 0):
            raise ValidationError("timestamps must be sorted")
        object.__setattr__(self, "timestamps", ts)

    @property
    def n_keys(self) -> int:
        return int(self.timestamps.size)

    @property
    def duration(self) -> float:
        return float(self.timestamps[-1] - self.timestamps[0])

    @property
    def mean_rate(self) -> float:
        if self.duration <= 0:
            raise ValidationError("trace spans zero time")
        return (self.n_keys - 1) / self.duration

    def gaps(self) -> np.ndarray:
        """Inter-arrival gaps."""
        return np.diff(self.timestamps)

    def fit_workload(self, *, window: float = 1e-6) -> WorkloadFit:
        """Fit the paper's (lambda, xi, q) model to this trace."""
        return fit_workload_from_timestamps(self.timestamps, window=window)

    def to_batches(self, *, window: float = 1e-6) -> List[Batch]:
        """Group sub-window arrivals into batches for replay."""
        batches: List[Batch] = []
        start = float(self.timestamps[0])
        size = 1
        for prev, curr in zip(self.timestamps[:-1], self.timestamps[1:]):
            if curr - prev < window:
                size += 1
            else:
                batches.append(Batch(time=start, size=size))
                start = float(curr)
                size = 1
        batches.append(Batch(time=start, size=size))
        return batches

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def save_csv(self, path: Union[str, Path]) -> None:
        """Write one timestamp per line with a header."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["timestamp_seconds"])
            for value in self.timestamps:
                writer.writerow([repr(float(value))])

    @classmethod
    def load_csv(cls, path: Union[str, Path]) -> "KeyTrace":
        """Read a trace written by :meth:`save_csv`."""
        with open(path, newline="") as handle:
            return cls._from_reader(handle)

    @classmethod
    def from_csv_text(cls, text: str) -> "KeyTrace":
        """Read a trace from an in-memory CSV string."""
        return cls._from_reader(io.StringIO(text))

    @classmethod
    def _from_reader(cls, handle) -> "KeyTrace":
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[:1] != ["timestamp_seconds"]:
            raise ValidationError("missing trace header 'timestamp_seconds'")
        values = []
        for row in reader:
            if not row:
                continue
            try:
                values.append(float(row[0]))
            except ValueError as exc:
                raise ValidationError(f"bad timestamp row: {row!r}") from exc
        return cls(timestamps=np.asarray(sorted(values)))

    @classmethod
    def merge(cls, traces: Iterable["KeyTrace"]) -> "KeyTrace":
        """Union of several traces (e.g. per-connection streams)."""
        stacks = [trace.timestamps for trace in traces]
        if not stacks:
            raise ValidationError("need at least one trace")
        return cls(timestamps=np.sort(np.concatenate(stacks)))
