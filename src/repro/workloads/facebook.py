"""The Facebook (Atikoglu et al., SIGMETRICS'12) statistical workload.

The paper's §5.1 drives its testbed with "workload according to Section 5
of [3], which provides a statistical model based on the real Facebook
trace". This module is that statistical model, assembled from the
published measurements:

* inter-arrival gaps: Generalized Pareto, burst degree ``xi = 0.15``
  (the paper's fitted value), aggregate rate up to ~``10^5`` keys/s;
* concurrency: two or more keys within 1 microsecond with probability
  ``q ~ 0.1159``;
* key sizes: roughly lognormal, 16-45 bytes typical (ETC pool);
* value sizes: Generalized-Pareto-like body with most values under 1 KB;
* key popularity: Zipf-like with a small hot set.

Absolute size parameters are approximations of the published ETC
figures — they shape the executable cache experiments, not the latency
theorems.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..core.workload import WorkloadPattern
from ..distributions import (
    Distribution,
    GeneralizedPareto,
    Lognormal,
    Zipf,
    make_rng,
)
from ..errors import ValidationError
from ..units import kps

#: Published headline numbers used as defaults.
ETC_KEY_RATE = kps(62.5)
ETC_BURST = 0.15
ETC_CONCURRENCY = 0.1159
ETC_MEAN_KEY_BYTES = 31.0
ETC_MEAN_VALUE_BYTES = 330.0
ETC_ZIPF_EXPONENT = 0.99


@dataclasses.dataclass(frozen=True)
class FacebookWorkload:
    """Bundle of the ETC statistical model's component distributions."""

    pattern: WorkloadPattern
    key_size: Distribution
    value_size: Distribution
    popularity: Zipf

    @classmethod
    def build(
        cls,
        *,
        rate: float = ETC_KEY_RATE,
        xi: float = ETC_BURST,
        q: float = ETC_CONCURRENCY,
        n_items: int = 100_000,
        zipf_s: float = ETC_ZIPF_EXPONENT,
        mean_key_bytes: float = ETC_MEAN_KEY_BYTES,
        mean_value_bytes: float = ETC_MEAN_VALUE_BYTES,
    ) -> "FacebookWorkload":
        """Assemble the model with the published defaults."""
        return cls(
            pattern=WorkloadPattern(rate=rate, xi=xi, q=q),
            key_size=Lognormal.from_mean_cv2(mean_key_bytes, 0.17),
            value_size=GeneralizedPareto(1.0 / mean_value_bytes, 0.35),
            popularity=Zipf(n_items, zipf_s),
        )

    def sample_key_rank(self, rng: np.random.Generator) -> int:
        """Draw a key by popularity."""
        return int(self.popularity.sample(rng))

    def sample_item_bytes(self, rng: np.random.Generator) -> tuple[int, int]:
        """Draw one (key_bytes, value_bytes) pair, both >= 1."""
        key_bytes = max(1, int(round(float(self.key_size.sample(rng)))))
        value_bytes = max(1, int(round(float(self.value_size.sample(rng)))))
        return key_bytes, value_bytes

    def generate_key_timestamps(
        self,
        duration: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Key arrival timestamps over ``duration`` seconds at one server.

        Batches arrive with GPD gaps; keys within a batch share the
        timestamp (sub-microsecond separations are below the model's
        resolution, matching how the measurement binned them).
        """
        if duration <= 0:
            raise ValidationError(f"duration must be > 0, got {duration}")
        rng = make_rng(rng)
        gap = self.pattern.batch_gap_distribution()
        sizes = self.pattern.batch_size_distribution()
        expected_batches = int(duration * self.pattern.batch_rate * 1.2) + 16
        gaps = np.asarray(gap.sample(rng, expected_batches), dtype=float)
        times = np.cumsum(gaps)
        times = times[times < duration]
        batch_sizes = np.asarray(
            sizes.sample(rng, times.size), dtype=np.int64
        )
        return np.repeat(times, batch_sizes)

    def head_concentration(self, fraction: float = 0.01) -> float:
        """Access mass of the hottest ``fraction`` of keys (§2.1 skew)."""
        return self.popularity.head_mass(fraction)


def facebook_pattern(
    rate: float = ETC_KEY_RATE,
    xi: float = ETC_BURST,
    q: float = 0.1,
) -> WorkloadPattern:
    """Shortcut for the paper's §5.1 arrival pattern (q rounded to 0.1)."""
    return WorkloadPattern(rate=rate, xi=xi, q=q)


def popularity_shares(
    popularity: Zipf, server_of_rank: List[int], n_servers: int
) -> List[float]:
    """Aggregate popularity mass per server: the induced ``{p_j}``."""
    if len(server_of_rank) != popularity.n_items:
        raise ValidationError("server_of_rank must cover the whole catalog")
    shares = np.zeros(int(n_servers))
    np.add.at(shares, np.asarray(server_of_rank), popularity.probabilities)
    total = shares.sum()
    if total <= 0:
        raise ValidationError("no popularity mass assigned")
    return (shares / total).tolist()
