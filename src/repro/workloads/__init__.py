"""Workload models: the Facebook/ETC statistical model, synthetic
request streams, and trace record/replay/fitting."""

from .facebook import (
    ETC_BURST,
    ETC_CONCURRENCY,
    ETC_KEY_RATE,
    ETC_MEAN_KEY_BYTES,
    ETC_MEAN_VALUE_BYTES,
    ETC_ZIPF_EXPONENT,
    FacebookWorkload,
    facebook_pattern,
    popularity_shares,
)
from .synthetic import Request, RequestStream, empirical_shares, per_server_key_rates
from .traces import KeyTrace

__all__ = [
    "ETC_BURST",
    "ETC_CONCURRENCY",
    "ETC_KEY_RATE",
    "ETC_MEAN_KEY_BYTES",
    "ETC_MEAN_VALUE_BYTES",
    "ETC_ZIPF_EXPONENT",
    "FacebookWorkload",
    "KeyTrace",
    "Request",
    "RequestStream",
    "empirical_shares",
    "facebook_pattern",
    "per_server_key_rates",
    "popularity_shares",
]
