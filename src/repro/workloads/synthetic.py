"""Synthetic request-stream generators for experiments and examples.

Produces end-user request streams (the client side of Fig. 1): request
timestamps, per-request key lists drawn from a popularity law, and the
derived per-server load shares — the knobs of the paper's §5.2 sweeps
in executable form.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..distributions import DiscreteDistribution, Distribution, Exponential, Zipf, make_rng
from ..errors import ValidationError


@dataclasses.dataclass(frozen=True)
class Request:
    """One synthetic end-user request."""

    request_id: int
    time: float
    key_ranks: tuple

    @property
    def n_keys(self) -> int:
        return len(self.key_ranks)

    def key_names(self, prefix: str = "item") -> List[str]:
        """Catalog key names for this request's ranks."""
        return [f"{prefix}:{rank}" for rank in self.key_ranks]


class RequestStream:
    """Generator of synthetic requests.

    Parameters
    ----------
    request_rate:
        End-user requests per second (Poisson arrivals by default).
    n_keys:
        Keys per request — fixed int, or a discrete distribution.
    popularity:
        Key popularity over the catalog (Zipf by default).
    interarrival:
        Optional non-Poisson request gaps.
    """

    def __init__(
        self,
        request_rate: float,
        n_keys,
        popularity: Zipf,
        *,
        interarrival: Optional[Distribution] = None,
        seed: Optional[int] = None,
    ) -> None:
        if request_rate <= 0:
            raise ValidationError(f"request_rate must be > 0, got {request_rate}")
        if isinstance(n_keys, int):
            if n_keys < 1:
                raise ValidationError(f"n_keys must be >= 1, got {n_keys}")
        elif not isinstance(n_keys, DiscreteDistribution):
            raise ValidationError(
                "n_keys must be an int or a DiscreteDistribution"
            )
        self._rate = float(request_rate)
        self._n_keys = n_keys
        self._popularity = popularity
        self._gap = (
            interarrival if interarrival is not None else Exponential(request_rate)
        )
        self._rng = make_rng(seed)

    def __iter__(self) -> Iterator[Request]:
        return self.generate()

    def generate(self, limit: Optional[int] = None) -> Iterator[Request]:
        """Yield requests; bounded by ``limit`` when given."""
        now = 0.0
        request_id = 0
        while limit is None or request_id < limit:
            now += float(self._gap.sample(self._rng))
            if isinstance(self._n_keys, int):
                count = self._n_keys
            else:
                count = int(self._n_keys.sample(self._rng))
            ranks = tuple(
                int(r) for r in self._popularity.sample(self._rng, count)
            )
            yield Request(request_id=request_id, time=now, key_ranks=ranks)
            request_id += 1

    def take(self, count: int) -> List[Request]:
        """Materialize the first ``count`` requests."""
        if count < 1:
            raise ValidationError(f"count must be >= 1, got {count}")
        return list(self.generate(limit=count))


def per_server_key_rates(
    requests: Sequence[Request],
    server_of_rank: Sequence[int],
    n_servers: int,
) -> List[float]:
    """Measured per-server key rates from a materialized request stream."""
    if not requests:
        raise ValidationError("need at least one request")
    servers = np.asarray(server_of_rank, dtype=int)
    counts = np.zeros(int(n_servers))
    for request in requests:
        for rank in request.key_ranks:
            counts[servers[rank - 1]] += 1
    span = requests[-1].time - requests[0].time
    if span <= 0:
        raise ValidationError("requests must span a positive interval")
    return (counts / span).tolist()


def empirical_shares(
    requests: Sequence[Request],
    server_of_rank: Sequence[int],
    n_servers: int,
) -> List[float]:
    """Observed load shares ``{p_j}`` from a request stream."""
    rates = per_server_key_rates(requests, server_of_rank, n_servers)
    total = sum(rates)
    return [rate / total for rate in rates]
