"""Maximal statistics for fork-join latency (paper §4.3.2, §4.4).

A request completes when the slowest of its N keys completes, so request
latency is a maximum of (approximately independent) per-key latencies.
The paper approximates the mean of the maximum by a quantile::

    E[max of N iid T] ~ F_T^{-1}(N / (N + 1))

(Casella & Berger [34]). This module provides that rule, the exact
integral it approximates, and an empirical estimator, so the accuracy of
the rule itself can be measured (one of our ablation benches).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np
from scipy import integrate

from ..distributions import Distribution
from ..errors import ValidationError


def quantile_level(n: float) -> float:
    """The quantile level ``n / (n + 1)`` used for ``E[max of n]``."""
    if n <= 0:
        raise ValidationError(f"n must be > 0, got {n}")
    return n / (n + 1.0)


def expected_max_quantile_rule(distribution: Distribution, n: float) -> float:
    """``E[max of n] ~ quantile(n / (n + 1))`` — the paper's approximation.

    ``n`` may be fractional: the rule extends smoothly, which the paper
    exploits when on average ``p_j * N`` keys land on server ``j``.
    """
    return distribution.quantile(quantile_level(n))


def expected_max_exact(distribution: Distribution, n: int, *, upper: float | None = None) -> float:
    """Exact ``E[max of n iid]`` via ``int_0^inf (1 - F(t)^n) dt``.

    Only valid for non-negative variables (all of ours). ``upper`` caps
    the integration range; by default a generous quantile-based cap is
    used and the remaining tail is integrated adaptively.
    """
    if int(n) != n or n < 1:
        raise ValidationError(f"n must be a positive integer, got {n}")
    n = int(n)

    def integrand(t: float) -> float:
        return 1.0 - distribution.cdf(t) ** n

    if upper is None:
        # Integrate to where F(t)^n = 1 - 1e-12; beyond it the integrand
        # contributes O(1e-12 * upper). A finite, quantile-derived cap is
        # essential: quad over [0, inf) can miss an integrand supported
        # at microsecond scales entirely.
        level = (1.0 - 1e-12) ** (1.0 / n)
        upper = distribution.quantile(level)
    value, _ = integrate.quad(
        integrand, 0.0, upper, limit=400, points=[distribution.mean]
    )
    return float(value)


def expected_max_empirical(
    sampler: Callable[[np.random.Generator, int], np.ndarray],
    n: int,
    *,
    rng: np.random.Generator,
    replications: int = 1000,
) -> float:
    """Monte-Carlo ``E[max of n]`` from a per-item sampler."""
    if int(n) != n or n < 1:
        raise ValidationError(f"n must be a positive integer, got {n}")
    if replications < 1:
        raise ValidationError(f"replications must be >= 1, got {replications}")
    samples = sampler(rng, int(n) * replications)
    samples = np.asarray(samples, dtype=float).reshape(replications, int(n))
    return float(samples.max(axis=1).mean())


def max_cdf_power(cdf_values: Sequence[float], exponents: Sequence[float]) -> float:
    """``prod F_j(t)^(e_j)`` — the mixture CDF of paper eq. (10)/(11).

    The CDF of the max over servers with fractional per-server key counts
    is the product of per-server CDFs raised to those counts.
    """
    values = np.asarray(cdf_values, dtype=float)
    powers = np.asarray(exponents, dtype=float)
    if values.shape != powers.shape:
        raise ValidationError("cdf_values and exponents must have equal length")
    if np.any((values < 0) | (values > 1)):
        raise ValidationError("cdf values must lie in [0, 1]")
    if np.any(powers < 0):
        raise ValidationError("exponents must be non-negative")
    # 0^0 := 1 (a server receiving no keys contributes nothing).
    out = 1.0
    for value, power in zip(values, powers):
        if power == 0.0:
            continue
        if value == 0.0:
            return 0.0
        out *= value**power
    return float(out)


def expected_max_of_exponential(rate: float, n: float) -> float:
    """Closed-form quantile-rule max for ``Exp(rate)``: ``ln(n + 1) / rate``.

    This is the form that appears throughout Theorem 1 (e.g. the
    ``ln(N+1) / ((1-delta)(1-q) muS)`` upper bound).
    """
    if rate <= 0:
        raise ValidationError(f"rate must be > 0, got {rate}")
    if n <= 0:
        raise ValidationError(f"n must be > 0, got {n}")
    return math.log(n + 1.0) / rate


def harmonic_expected_max_of_exponential(rate: float, n: int) -> float:
    """Exact ``E[max of n iid Exp(rate)] = H_n / rate`` (harmonic number).

    Used in tests to quantify the quantile rule's error: ``ln(n+1)`` vs
    ``H_n ~ ln(n) + gamma``.
    """
    if rate <= 0:
        raise ValidationError(f"rate must be > 0, got {rate}")
    if int(n) != n or n < 1:
        raise ValidationError(f"n must be a positive integer, got {n}")
    harmonic = sum(1.0 / i for i in range(1, int(n) + 1))
    return harmonic / rate
