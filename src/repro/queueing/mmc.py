"""M/M/c multi-server queue — the multi-core Memcached extension (§2.2).

The paper's related work discusses Intel's thread-scaling fixes and
multi-core configuration guidelines. The queueing-theoretic core of that
discussion is the M/M/c queue: is one c-core server (one shared queue, c
workers) better than c single-core servers (c independent queues)?
Classic answer: yes, resource pooling strictly reduces waiting — this
module provides the closed forms and the comparison helpers, and the
``multicore_speedup`` bench/example builds on it.
"""

from __future__ import annotations

import math

from ..errors import StabilityError, ValidationError


def erlang_c(c: int, offered_load: float) -> float:
    """Erlang-C: probability an arrival waits in an M/M/c queue.

    ``offered_load = lam / mu`` (in Erlangs); requires
    ``offered_load < c`` for stability.
    """
    if int(c) != c or c < 1:
        raise ValidationError(f"c must be a positive integer, got {c}")
    c = int(c)
    if offered_load < 0:
        raise ValidationError(f"offered_load must be >= 0, got {offered_load}")
    if offered_load == 0:
        return 0.0
    if offered_load >= c:
        raise StabilityError(offered_load / c)
    # Stable recursive evaluation of the Erlang-B blocking probability,
    # then convert to Erlang C.
    blocking = 1.0
    for k in range(1, c + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    rho = offered_load / c
    return blocking / (1.0 - rho * (1.0 - blocking))


class MMcQueue:
    """Analytic M/M/c results."""

    def __init__(self, arrival_rate: float, service_rate: float, c: int) -> None:
        if arrival_rate < 0:
            raise ValidationError(f"arrival_rate must be >= 0, got {arrival_rate}")
        if service_rate <= 0:
            raise ValidationError(f"service_rate must be > 0, got {service_rate}")
        if int(c) != c or c < 1:
            raise ValidationError(f"c must be a positive integer, got {c}")
        self._lam = float(arrival_rate)
        self._mu = float(service_rate)
        self._c = int(c)
        offered = self._lam / self._mu
        if offered >= self._c:
            raise StabilityError(offered / self._c)
        self._wait_probability = erlang_c(self._c, offered)

    @property
    def arrival_rate(self) -> float:
        return self._lam

    @property
    def service_rate(self) -> float:
        """Per-server service rate ``mu``."""
        return self._mu

    @property
    def servers(self) -> int:
        return self._c

    @property
    def utilization(self) -> float:
        """Per-server utilization ``rho = lam / (c mu)``."""
        return self._lam / (self._c * self._mu)

    @property
    def wait_probability(self) -> float:
        """Erlang-C probability of queueing."""
        return self._wait_probability

    @property
    def drain_rate(self) -> float:
        """``c mu - lam``: the exponential rate of the conditional wait."""
        return self._c * self._mu - self._lam

    @property
    def mean_wait(self) -> float:
        """``E[W] = C(c, a) / (c mu - lam)``."""
        return self._wait_probability / self.drain_rate

    @property
    def mean_sojourn(self) -> float:
        return self.mean_wait + 1.0 / self._mu

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system (Little)."""
        return self._lam * self.mean_sojourn

    def wait_cdf(self, t: float) -> float:
        """``P(W <= t) = 1 - C e^{-(c mu - lam) t}``."""
        if t < 0:
            return 0.0
        return 1.0 - self._wait_probability * math.exp(-self.drain_rate * t)

    def wait_quantile(self, k: float) -> float:
        """k-th quantile of the waiting time (0 below the atom)."""
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        if k <= 1.0 - self._wait_probability:
            return 0.0
        return math.log(self._wait_probability / (1.0 - k)) / self.drain_rate


def pooling_comparison(
    total_arrival_rate: float, per_core_service_rate: float, cores: int
) -> dict:
    """One c-core server vs c single-core servers at equal total load.

    Returns mean sojourns for the pooled M/M/c and the split c x M/M/1
    configurations, plus the pooling speedup — the §2.2 multi-core
    guideline in one number.
    """
    pooled = MMcQueue(total_arrival_rate, per_core_service_rate, cores)
    split = MMcQueue(total_arrival_rate / cores, per_core_service_rate, 1)
    return {
        "pooled_sojourn": pooled.mean_sojourn,
        "split_sojourn": split.mean_sojourn,
        "speedup": split.mean_sojourn / pooled.mean_sojourn,
        "utilization": pooled.utilization,
    }
