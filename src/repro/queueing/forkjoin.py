"""Classic fork-join baselines (paper §2.3).

The paper argues the *typical* Fork-Join model cannot describe Memcached
because of (1) one-to-one task distribution, (2) simple (non-batch)
service queues, (3) a single processing stage. We implement the classic
estimators so benches can compare them against the paper's model on the
same workloads:

* :func:`nelson_tantawi_mean` — the standard M/M/1 fork-join
  approximation for the mean join time of N identical M/M/1 servers
  (Nelson & Tantawi, 1988; paper ref. [28]).
* :class:`SplitMergeBounds` — independence bounds for the join time of N
  *general* per-task sojourn distributions: the lower bound takes the max
  of means, the upper takes the mean of the independent max (valid when
  tasks are positively associated, which queueing fork-joins are).
* :func:`varma_makowski_interpolation` — light/heavy-traffic
  interpolation (paper ref. [27]) for M/M/1 fork-join.
"""

from __future__ import annotations

import math

from ..distributions import Distribution
from ..errors import StabilityError, ValidationError
from .maxstat import expected_max_exact, expected_max_quantile_rule


def _harmonic(n: int) -> float:
    return sum(1.0 / i for i in range(1, n + 1))


def _check_mm1(arrival_rate: float, service_rate: float) -> float:
    if arrival_rate < 0:
        raise ValidationError(f"arrival_rate must be >= 0, got {arrival_rate}")
    if service_rate <= 0:
        raise ValidationError(f"service_rate must be > 0, got {service_rate}")
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        raise StabilityError(rho)
    return rho


def nelson_tantawi_mean(
    n_tasks: int, arrival_rate: float, service_rate: float
) -> float:
    """Nelson-Tantawi approximation of the mean fork-join response time.

    For N homogeneous M/M/1 queues fed by synchronized job arrivals::

        T_2(rho)  = (12 - rho) / 8 * 1 / (mu - lam)          # exact for N=2
        T_N(rho) ~ [H_N / H_2 + 4 rho / 11 (1 - H_N / H_2)] T_2(rho)

    Exact for N <= 2; within a few percent of simulation for N <= 32 in
    the original paper's range.
    """
    if int(n_tasks) != n_tasks or n_tasks < 1:
        raise ValidationError(f"n_tasks must be a positive integer, got {n_tasks}")
    n_tasks = int(n_tasks)
    rho = _check_mm1(arrival_rate, service_rate)
    mean_sojourn = 1.0 / (service_rate - arrival_rate)
    if n_tasks == 1:
        return mean_sojourn
    t2 = (12.0 - rho) / 8.0 * mean_sojourn
    if n_tasks == 2:
        return t2
    ratio = _harmonic(n_tasks) / _harmonic(2)
    return (ratio + 4.0 * rho / 11.0 * (1.0 - ratio)) * t2


def varma_makowski_interpolation(
    n_tasks: int, arrival_rate: float, service_rate: float
) -> float:
    """Varma-Makowski light/heavy-traffic interpolation for M/M/1 fork-join.

    Interpolates the mean join time between the light-traffic limit
    (``H_N / mu``, the mean max of N service times) and the heavy-traffic
    growth ``H_N / (mu (1 - rho))``-style scaling. We use the simple
    convex interpolation form::

        T_N(rho) ~ (H_N / mu) * (1 - rho + rho / (1 - rho))

    which matches both limits and is the shape used in interpolation
    approximations for symmetric fork-join queues.
    """
    if int(n_tasks) != n_tasks or n_tasks < 1:
        raise ValidationError(f"n_tasks must be a positive integer, got {n_tasks}")
    rho = _check_mm1(arrival_rate, service_rate)
    light = _harmonic(int(n_tasks)) / service_rate
    return light * (1.0 - rho + rho / (1.0 - rho))


class SplitMergeBounds:
    """Independence-based bounds on the join time of N general tasks.

    Given the per-task sojourn distribution ``T`` (assumed identical
    across tasks and positively associated, as in FCFS queues fed by the
    same arrivals), the mean join time ``E[max of N]`` satisfies::

        E[T]  <=  E[max of N T_i]  <=  E[max of N iid copies]

    The upper bound is the independent-max mean; the paper approximates
    it with the quantile rule.
    """

    def __init__(self, sojourn: Distribution, n_tasks: int) -> None:
        if int(n_tasks) != n_tasks or n_tasks < 1:
            raise ValidationError(f"n_tasks must be a positive integer, got {n_tasks}")
        self._sojourn = sojourn
        self._n = int(n_tasks)

    @property
    def n_tasks(self) -> int:
        return self._n

    @property
    def lower(self) -> float:
        """``E[T]``: a max is at least any single coordinate."""
        return self._sojourn.mean

    @property
    def upper_exact(self) -> float:
        """Exact mean of the independent max (numeric integral)."""
        return expected_max_exact(self._sojourn, self._n)

    @property
    def upper_quantile_rule(self) -> float:
        """Quantile-rule estimate of the independent max mean."""
        return expected_max_quantile_rule(self._sojourn, self._n)

    def as_tuple(self) -> tuple[float, float]:
        """``(lower, upper_exact)``."""
        return self.lower, self.upper_exact


def fork_join_scaling_exponent(means: list[float], ns: list[int]) -> float:
    """Fit ``E[T(N)] = a + b log N`` and return ``b``.

    Utility for tests/benches asserting the paper's Theta(log N) growth:
    regress the measured means on ``log N`` and report the slope.
    """
    if len(means) != len(ns) or len(means) < 2:
        raise ValidationError("need matching means/ns with at least two points")
    logs = [math.log(n) for n in ns]
    mean_x = sum(logs) / len(logs)
    mean_y = sum(means) / len(means)
    sxx = sum((x - mean_x) ** 2 for x in logs)
    if sxx == 0:
        raise ValidationError("ns must not be all equal")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(logs, means))
    return sxy / sxx
