"""GI/M/1 queue: general renewal arrivals, exponential service.

For a stable GI/M/1 queue with inter-arrival distribution ``A`` (LST
``L_A``) and service rate ``mu``, the stationary FCFS results are
(Medhi, *Stochastic Models in Queueing Theory*):

* root: ``sigma = L_A((1 - sigma) mu)`` in ``(0, 1)``;
* waiting time: ``P(W <= t) = 1 - sigma * exp(-(1 - sigma) mu t)``;
* sojourn time: ``P(T <= t) = 1 - exp(-(1 - sigma) mu t)`` — i.e. the
  response time is exactly ``Exp((1 - sigma) mu)``.

These are the paper's eqs. (4)-(5) once ``mu`` is replaced by the batch
service rate ``(1 - q) muS``.
"""

from __future__ import annotations

import math

from ..distributions import Distribution, Exponential
from ..errors import StabilityError, ValidationError
from .rootfind import solve_gim1_root, solve_gim1_root_cached


class GIM1Queue:
    """Analytic GI/M/1 results built on the sigma fixed point."""

    def __init__(
        self,
        interarrival: Distribution,
        service_rate: float,
    ) -> None:
        if service_rate <= 0:
            raise ValidationError(f"service_rate must be > 0, got {service_rate}")
        self._interarrival = interarrival
        self._mu = float(service_rate)
        arrival_rate = interarrival.rate
        if arrival_rate >= self._mu:
            raise StabilityError(arrival_rate / self._mu)
        token = interarrival.cache_token()
        if token is None:
            self._sigma = solve_gim1_root(
                interarrival.laplace, self._mu, arrival_rate=arrival_rate
            )
        else:
            # Parameter sweeps re-solve identical (gap law, mu) points
            # constantly; the memoized front end skips the re-solve.
            self._sigma = solve_gim1_root_cached(
                token, interarrival.laplace, self._mu, arrival_rate=arrival_rate
            )

    @property
    def interarrival(self) -> Distribution:
        return self._interarrival

    @property
    def service_rate(self) -> float:
        return self._mu

    @property
    def arrival_rate(self) -> float:
        return self._interarrival.rate

    @property
    def utilization(self) -> float:
        """``rho = arrival rate / service rate``."""
        return self.arrival_rate / self._mu

    @property
    def sigma(self) -> float:
        """The geometric root; the paper's ``delta``."""
        return self._sigma

    # ------------------------------------------------------------------
    # Waiting time W (time in queue before service starts).
    # ------------------------------------------------------------------

    @property
    def mean_wait(self) -> float:
        """``E[W] = sigma / ((1 - sigma) mu)``."""
        return self._sigma / ((1.0 - self._sigma) * self._mu)

    def wait_cdf(self, t: float) -> float:
        """``P(W <= t) = 1 - sigma exp(-(1 - sigma) mu t)`` (paper eq. (4))."""
        if t < 0:
            return 0.0
        return 1.0 - self._sigma * math.exp(-(1.0 - self._sigma) * self._mu * t)

    def wait_quantile(self, k: float) -> float:
        """k-th quantile of W (paper eq. (7)); 0 below the atom at zero."""
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        value = (math.log(self._sigma) - math.log1p(-k)) / (
            (1.0 - self._sigma) * self._mu
        )
        return max(value, 0.0)

    @property
    def wait_mass_at_zero(self) -> float:
        """``P(W = 0) = 1 - sigma``: probability of arriving to an idle server."""
        return 1.0 - self._sigma

    # ------------------------------------------------------------------
    # Sojourn time T (waiting + service).
    # ------------------------------------------------------------------

    @property
    def mean_sojourn(self) -> float:
        """``E[T] = 1 / ((1 - sigma) mu)``."""
        return 1.0 / ((1.0 - self._sigma) * self._mu)

    def sojourn_distribution(self) -> Exponential:
        """The sojourn time is exactly exponential (paper eq. (5))."""
        return Exponential((1.0 - self._sigma) * self._mu)

    def sojourn_cdf(self, t: float) -> float:
        """``P(T <= t) = 1 - exp(-(1 - sigma) mu t)``."""
        if t <= 0:
            return 0.0
        return -math.expm1(-(1.0 - self._sigma) * self._mu * t)

    def sojourn_quantile(self, k: float) -> float:
        """k-th quantile of the sojourn time (paper eq. (8))."""
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        return -math.log1p(-k) / ((1.0 - self._sigma) * self._mu)

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system by Little's law."""
        return self.arrival_rate * self.mean_sojourn

    # ------------------------------------------------------------------
    # Queue length at arrival epochs.
    # ------------------------------------------------------------------

    def queue_length_pmf_at_arrivals(self, n: int) -> float:
        """``P(arriving customer finds n in system) = (1-sigma) sigma^n``.

        The embedded-chain geometric law of the GI/M/1 queue. (The
        *time-average* distribution differs unless arrivals are Poisson;
        PASTA applies only then.)
        """
        if int(n) != n or n < 0:
            raise ValidationError(f"n must be a non-negative integer, got {n}")
        return (1.0 - self._sigma) * self._sigma ** int(n)

    def queue_length_cdf_at_arrivals(self, n: int) -> float:
        """``P(arriving customer finds <= n) = 1 - sigma^(n+1)``."""
        if n < 0:
            return 0.0
        return 1.0 - self._sigma ** (int(n) + 1)

    def mean_queue_length_at_arrivals(self) -> float:
        """``sigma / (1 - sigma)`` — mean number seen by an arrival."""
        return self._sigma / (1.0 - self._sigma)
