"""GI^[X]/M/1 with *general* batch sizes — beyond the paper's geometric.

The paper's elegant reduction (geometric sum of exponentials is
exponential) only works for geometric batch sizes. Real concurrency
bursts need not be geometric — the closed-loop simulator, for one,
produces binomial batches. This module handles a general batch-size
law ``X``:

* the batch service time is the phase-type mixture
  ``sum_{n} P(X = n) Erlang(n, mu)``, whose LST is ``G_X(mu/(mu+s))``
  (the PGF evaluated at the exponential LST);
* the embedded waiting-time analysis is GI/G/1, for which we provide
  the **effective-exponential approximation**: replace the batch
  service by an exponential with the same mean, recovering a GI/M/1
  whose root gives eq. (4)-(5)-style formulas;
* :func:`batch_collapse_error` quantifies the approximation against a
  vectorized Lindley simulation, so users know when the geometric
  assumption is safe.

For geometric ``X`` the approximation is *exact* and this class agrees
with :class:`~repro.queueing.gixm1.GIXM1Queue` to machine precision.
"""

from __future__ import annotations

import math

import numpy as np

from ..distributions import DiscreteDistribution, Distribution, Geometric
from ..errors import StabilityError, ValidationError
from .gim1 import GIM1Queue


class GeneralBatchQueue:
    """Batch-arrival queue with an arbitrary batch-size law.

    Parameters
    ----------
    batch_gap:
        Distribution of the gap between batches.
    batch_size:
        Any :class:`~repro.distributions.DiscreteDistribution` on
        ``{1, 2, ...}``.
    service_rate:
        Per-key exponential rate ``muS``.
    """

    def __init__(
        self,
        batch_gap: Distribution,
        batch_size: DiscreteDistribution,
        service_rate: float,
    ) -> None:
        if service_rate <= 0:
            raise ValidationError(f"service_rate must be > 0, got {service_rate}")
        self._gap = batch_gap
        self._size = batch_size
        self._mu = float(service_rate)
        mean_size = batch_size.mean
        if mean_size < 1.0:
            raise ValidationError("batch sizes must be >= 1")
        key_rate = mean_size * batch_gap.rate
        if key_rate >= self._mu:
            raise StabilityError(key_rate / self._mu)
        # Effective exponential: same mean batch service E[X]/mu.
        self._effective_rate = self._mu / mean_size
        self._embedded = GIM1Queue(batch_gap, self._effective_rate)

    @property
    def batch_gap(self) -> Distribution:
        return self._gap

    @property
    def batch_size(self) -> DiscreteDistribution:
        return self._size

    @property
    def service_rate(self) -> float:
        return self._mu

    @property
    def key_arrival_rate(self) -> float:
        return self._size.mean * self._gap.rate

    @property
    def utilization(self) -> float:
        return self.key_arrival_rate / self._mu

    @property
    def effective_batch_service_rate(self) -> float:
        """``mu / E[X]`` — the matched-mean exponential rate."""
        return self._effective_rate

    @property
    def delta(self) -> float:
        """Root of the effective GI/M/1 fixed point."""
        return self._embedded.sigma

    def batch_service_lst(self, s: float) -> float:
        """Exact LST of the true batch service: ``G_X(mu / (mu + s))``."""
        if s < 0:
            raise ValidationError(f"LST argument must be >= 0, got {s}")
        return self._size.pgf(self._mu / (self._mu + s))

    def batch_service_cv2(self) -> float:
        """Squared CV of the true batch service time.

        ``Var[S] = E[X]/mu^2 + Var[X]/mu^2`` for sums of iid
        exponentials, so ``cv2 = (E[X] + Var[X]) / E[X]^2``. Geometric
        sizes give exactly 1 (the collapse); smaller means the
        effective-exponential approximation *overestimates* delay,
        larger means it underestimates.
        """
        mean = self._size.mean
        return (mean + self._size.variance) / (mean * mean)

    def mean_queueing_time(self) -> float:
        """Approximate batch wait (effective-exponential GI/M/1)."""
        return self._embedded.mean_wait

    def mean_completion_time(self) -> float:
        """Approximate batch completion time."""
        return self._embedded.mean_sojourn

    def mean_key_latency(self) -> float:
        """Approximate mean per-key latency.

        Batch wait plus the mean in-batch position's service,
        ``E[J]/mu`` with ``E[J] = (E[X^2]/E[X] + 1) / 2`` under
        size-biased sampling.
        """
        mean = self._size.mean
        second = self._size.variance + mean * mean
        mean_position = (second / mean + 1.0) / 2.0
        return self.mean_queueing_time() + mean_position / self._mu

    # ------------------------------------------------------------------

    def simulate_key_latencies(
        self,
        rng: np.random.Generator,
        n_keys: int,
        *,
        warmup_fraction: float = 0.05,
    ) -> np.ndarray:
        """Exact per-key latencies by vectorized Lindley recursion."""
        if n_keys < 1:
            raise ValidationError(f"n_keys must be >= 1, got {n_keys}")
        mean_batch = self._size.mean
        n_batches = (
            int(math.ceil(1.05 * n_keys / mean_batch / (1.0 - warmup_fraction)))
            + 64
        )
        gaps = np.asarray(self._gap.sample(rng, n_batches), dtype=float)
        sizes = np.asarray(self._size.sample(rng, n_batches), dtype=np.int64)
        total_keys = int(sizes.sum())
        services = rng.exponential(1.0 / self._mu, size=total_keys)
        starts = np.zeros(n_batches, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        batch_service = np.add.reduceat(services, starts)
        u = batch_service[:-1] - gaps[1:]
        c = np.concatenate(([0.0], np.cumsum(u)))
        waits = c - np.minimum.accumulate(np.concatenate(([0.0], c))[:-1])
        waits = np.maximum(waits, 0.0)
        cumulative = np.cumsum(services)
        before = cumulative[starts] - services[starts]
        within = cumulative - np.repeat(before, sizes)
        latencies = np.repeat(waits, sizes) + within
        warmup_keys = int(sizes[: int(n_batches * warmup_fraction)].sum())
        usable = latencies[warmup_keys:]
        return usable[:n_keys] if usable.size >= n_keys else usable


def batch_collapse_error(
    queue: GeneralBatchQueue,
    rng: np.random.Generator,
    *,
    n_keys: int = 200_000,
) -> float:
    """Relative error of the effective-exponential mean vs simulation.

    Positive: the approximation overestimates; negative: underestimates.
    Near zero for geometric batches (where the collapse is exact).
    """
    simulated = float(queue.simulate_key_latencies(rng, n_keys).mean())
    approx = queue.mean_key_latency()
    return (approx - simulated) / simulated


def geometric_reference(
    batch_gap: Distribution, q: float, service_rate: float
) -> GeneralBatchQueue:
    """A GeneralBatchQueue with geometric sizes (cross-check helper)."""
    return GeneralBatchQueue(batch_gap, Geometric(q), service_rate)
