"""Fixed-point solver for the GI/M/1 root (paper eq. (6)).

The GI/M/1 queue's stationary waiting time is geometric with parameter
``sigma``, the unique root in ``(0, 1)`` of::

    sigma = L_A((1 - sigma) * mu)

where ``L_A`` is the LST of the inter-arrival distribution and ``mu`` the
service rate. The paper calls this root ``delta`` (with the batch service
rate ``(1 - q) * muS`` in place of ``mu``).

Existence/uniqueness hold iff the queue is stable (``rho < 1``):
``g(x) = L_A((1 - x) mu) - x`` satisfies ``g(0) > 0`` and ``g(1) = 0``
with ``g`` convex in ``x``, so the interior root is found by bracketed
Brent iteration, which is robust even when the LST itself is evaluated by
quadrature (Generalized Pareto arrivals).
"""

from __future__ import annotations

import collections
import math
from typing import Callable, Dict, Hashable, Tuple

from scipy import optimize

from ..errors import ConvergenceError, StabilityError, ValidationError


def solve_gim1_root(
    laplace: Callable[[float], float],
    service_rate: float,
    *,
    arrival_rate: float | None = None,
    tol: float = 1e-12,
) -> float:
    """Solve ``sigma = L_A((1 - sigma) * mu)`` for ``sigma`` in ``(0, 1)``.

    Parameters
    ----------
    laplace:
        The inter-arrival LST ``s -> E[exp(-s A)]``.
    service_rate:
        The (effective) service rate ``mu``; for the paper's batch queue
        pass ``(1 - q) * muS``.
    arrival_rate:
        Optional arrival rate for an explicit stability pre-check. When
        omitted, stability is inferred from the fixed-point geometry.
    tol:
        Absolute tolerance on the root.

    Raises
    ------
    StabilityError
        If ``arrival_rate >= service_rate`` or no interior root exists.
    """
    if service_rate <= 0:
        raise ValidationError(f"service_rate must be > 0, got {service_rate}")
    if arrival_rate is not None:
        if arrival_rate <= 0:
            raise ValidationError(f"arrival_rate must be > 0, got {arrival_rate}")
        rho = arrival_rate / service_rate
        if rho >= 1.0:
            raise StabilityError(rho)

    def g(x: float) -> float:
        return laplace((1.0 - x) * service_rate) - x

    g0 = g(0.0)
    if g0 <= 0.0:
        # L_A(mu) <= 0 cannot happen for a valid LST; defensive check.
        raise ConvergenceError(
            f"invalid LST: L(mu) = {g0} <= 0 at sigma = 0", last_value=g0
        )

    # g(1) = L(0) - 1 = 0 always; we need the *interior* root, which exists
    # iff g'(1) > 0, i.e. -mu * L'(0) = mu * E[A] > 1, i.e. rho < 1.
    # Search for an upper bracket strictly below 1 where g goes negative.
    # Start a comfortable distance from 1: quadrature-evaluated LSTs carry
    # ~1e-12 absolute error, which would swamp g at 1 - 1e-12.
    hi = None
    for gap in (1e-4, 1e-6, 1e-8, 1e-10):
        candidate = 1.0 - gap
        if g(candidate) < 0.0:
            hi = candidate
            break
    if hi is None:
        # Either exactly critical or unstable: no interior crossing.
        implied_rho = math.nan
        if arrival_rate is not None:
            implied_rho = arrival_rate / service_rate
        raise StabilityError(
            implied_rho if math.isfinite(implied_rho) else 1.0,
            "no interior GI/M/1 root: the queue is at or beyond saturation",
        )

    try:
        root = optimize.brentq(g, 0.0, hi, xtol=tol, rtol=8.881784197001252e-16)
    except ValueError as exc:  # pragma: no cover - bracket guaranteed above
        raise ConvergenceError(f"brentq failed: {exc}") from exc
    root = float(root)
    if not 0.0 < root < 1.0:
        raise ConvergenceError(
            f"GI/M/1 root {root} escaped (0, 1)", last_value=root
        )
    return root


# ----------------------------------------------------------------------
# Memoized root lookups.
#
# Parameter sweeps (`repro sweep`, the figure benches, grid suites)
# rebuild Workload/ServerStage objects for every cell, and many cells
# share the exact same (gap law, effective service rate) pair — e.g. a
# miss-ratio sweep never changes the server stage at all. Solving the
# fixed point is cheap for closed-form LSTs but involves adaptive
# quadrature for Generalized Pareto gaps, so identical re-solves are
# worth skipping. Distributions advertise a hashable identity via
# ``Distribution.cache_token()``; callers that have one use this
# memoized front end, everyone else falls through to the plain solver.
# ----------------------------------------------------------------------

_ROOT_CACHE_MAX = 4096
_root_cache: "collections.OrderedDict[Tuple[Hashable, float, float], float]" = (
    collections.OrderedDict()
)
_root_cache_hits = 0
_root_cache_misses = 0


def solve_gim1_root_cached(
    cache_token: Hashable,
    laplace: Callable[[float], float],
    service_rate: float,
    *,
    arrival_rate: float | None = None,
    tol: float = 1e-12,
) -> float:
    """LRU-memoized :func:`solve_gim1_root`.

    ``cache_token`` must identify the inter-arrival *law* completely
    (same token => same ``laplace``); use
    ``Distribution.cache_token()``. Roots are cached per
    ``(token, service_rate, tol)`` with least-recently-used eviction
    beyond ``_ROOT_CACHE_MAX`` entries. Unstable inputs raise before
    anything is cached.
    """
    global _root_cache_hits, _root_cache_misses
    key = (cache_token, float(service_rate), float(tol))
    cached = _root_cache.get(key)
    if cached is not None:
        _root_cache.move_to_end(key)
        _root_cache_hits += 1
        return cached
    root = solve_gim1_root(
        laplace, service_rate, arrival_rate=arrival_rate, tol=tol
    )
    _root_cache_misses += 1
    _root_cache[key] = root
    if len(_root_cache) > _ROOT_CACHE_MAX:
        _root_cache.popitem(last=False)
    return root


def gim1_root_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the memoized root solver (for tests)."""
    return {
        "hits": _root_cache_hits,
        "misses": _root_cache_misses,
        "size": len(_root_cache),
        "maxsize": _ROOT_CACHE_MAX,
    }


def gim1_root_cache_clear() -> None:
    """Drop every cached root and reset the hit/miss counters."""
    global _root_cache_hits, _root_cache_misses
    _root_cache.clear()
    _root_cache_hits = 0
    _root_cache_misses = 0


def fixed_point_iterate(
    laplace: Callable[[float], float],
    service_rate: float,
    *,
    initial: float = 0.5,
    max_iter: int = 500,
    tol: float = 1e-12,
) -> float:
    """Plain Picard iteration for the same root.

    Kept as an independent implementation for cross-checking the Brent
    solver in tests; converges because the map is a contraction on the
    relevant interval for stable queues.
    """
    if not 0.0 < initial < 1.0:
        raise ValidationError(f"initial must be in (0, 1), got {initial}")
    x = initial
    for iteration in range(max_iter):
        nxt = laplace((1.0 - x) * service_rate)
        if not 0.0 <= nxt <= 1.0:
            raise ConvergenceError(
                f"iterate {nxt} escaped [0, 1]", last_value=nxt, iterations=iteration
            )
        if abs(nxt - x) <= tol:
            return nxt
        x = nxt
    raise ConvergenceError(
        f"fixed point did not converge in {max_iter} iterations",
        last_value=x,
        iterations=max_iter,
    )
