"""GI^X/M/1 batch queue — the paper's Memcached-server model (§3, §4.3).

Keys arrive in batches: the gap between batches follows a general
distribution ``TX`` and the batch size ``X`` is geometric with concurrency
probability ``q``. Each key's service time is ``Exp(muS)``.

The paper's central reduction (§4.3.1): a geometric sum of ``Exp(muS)``
variables is ``Exp((1 - q) muS)``, so the *batch* process is a plain
GI/M/1 with service rate ``(1 - q) muS``. From that queue:

* batch queueing time ``TQ`` (eq. (4)) and quantile (eq. (7));
* batch completion time ``TC`` (eq. (5)) and quantile (eq. (8));
* per-key latency ``TS`` bounded by ``TQ < TS <= TC`` (eq. (9)).

A bonus exact result implemented here: a randomly chosen key's position
inside a (size-biased) geometric batch has mean ``1/(1-q)``, so the exact
mean per-key latency equals ``E[TC]`` — the paper's upper bound is tight
in expectation.
"""

from __future__ import annotations


import numpy as np

from ..distributions import Distribution, Exponential, Geometric
from ..errors import StabilityError, ValidationError
from .gim1 import GIM1Queue


class GIXM1Queue:
    """The paper's batch-arrival Memcached-server queue.

    Parameters
    ----------
    batch_gap:
        Distribution of the gap ``TX`` between consecutive batches.
    q:
        Concurrency probability; batch sizes are ``Geometric(q)``.
    service_rate:
        Per-key exponential service rate ``muS``.
    """

    def __init__(
        self,
        batch_gap: Distribution,
        q: float,
        service_rate: float,
    ) -> None:
        if service_rate <= 0:
            raise ValidationError(f"service_rate must be > 0, got {service_rate}")
        self._gap = batch_gap
        self._batch_size = Geometric(q)
        self._mu_key = float(service_rate)
        self._mu_batch = (1.0 - q) * self._mu_key
        key_rate = self.key_arrival_rate
        if key_rate >= self._mu_key:
            raise StabilityError(key_rate / self._mu_key)
        self._batch_queue = GIM1Queue(batch_gap, self._mu_batch)

    # ------------------------------------------------------------------
    # Parameters and rates.
    # ------------------------------------------------------------------

    @property
    def batch_gap(self) -> Distribution:
        return self._gap

    @property
    def q(self) -> float:
        """Concurrency probability."""
        return self._batch_size.q

    @property
    def batch_size(self) -> Geometric:
        return self._batch_size

    @property
    def service_rate(self) -> float:
        """Per-key service rate ``muS``."""
        return self._mu_key

    @property
    def batch_service_rate(self) -> float:
        """Effective batch service rate ``(1 - q) muS``."""
        return self._mu_batch

    @property
    def batch_arrival_rate(self) -> float:
        """Batches per second, ``1 / E[TX]``."""
        return self._gap.rate

    @property
    def key_arrival_rate(self) -> float:
        """Keys per second, ``lambda = E[X] / E[TX]`` (paper Table 1)."""
        return self._batch_size.mean * self._gap.rate

    @property
    def utilization(self) -> float:
        """``rho = lambda / muS`` — equal to batch rate over batch service rate."""
        return self.key_arrival_rate / self._mu_key

    @property
    def delta(self) -> float:
        """The paper's ``delta``: root of ``delta = L_TX((1-delta)(1-q)muS)``."""
        return self._batch_queue.sigma

    @property
    def decay_rate(self) -> float:
        """``(1 - delta)(1 - q) muS`` — the exponential rate in eqs. (4)-(5)."""
        return (1.0 - self.delta) * self._mu_batch

    # ------------------------------------------------------------------
    # Batch queueing time TQ (paper eqs. (4), (7)).
    # ------------------------------------------------------------------

    def queueing_cdf(self, t: float) -> float:
        """``TQ(t) = 1 - delta exp(-(1-delta)(1-q) muS t)``."""
        return self._batch_queue.wait_cdf(t)

    def queueing_quantile(self, k: float) -> float:
        """Paper eq. (7)."""
        return self._batch_queue.wait_quantile(k)

    @property
    def mean_queueing_time(self) -> float:
        return self._batch_queue.mean_wait

    # ------------------------------------------------------------------
    # Batch completion time TC (paper eqs. (5), (8)).
    # ------------------------------------------------------------------

    def completion_cdf(self, t: float) -> float:
        """``TC(t) = 1 - exp(-(1-delta)(1-q) muS t)``."""
        return self._batch_queue.sojourn_cdf(t)

    def completion_quantile(self, k: float) -> float:
        """Paper eq. (8)."""
        return self._batch_queue.sojourn_quantile(k)

    @property
    def mean_completion_time(self) -> float:
        return self._batch_queue.mean_sojourn

    def completion_distribution(self) -> Exponential:
        """``TC ~ Exp((1-delta)(1-q) muS)``."""
        return self._batch_queue.sojourn_distribution()

    # ------------------------------------------------------------------
    # Per-key latency TS (paper eq. (9)).
    # ------------------------------------------------------------------

    def key_latency_bounds(self, k: float) -> tuple[float, float]:
        """Bounds on the k-th quantile of per-key latency (eq. (9))."""
        return self.queueing_quantile(k), self.completion_quantile(k)

    @property
    def mean_key_latency(self) -> float:
        """Exact mean per-key latency.

        A random key's in-batch position under size-biased sampling of a
        geometric batch has mean ``1/(1-q)``, so its service component has
        mean ``1/((1-q) muS)`` and::

            E[TS] = E[TQ] + 1/((1-q) muS)
                  = delta/((1-delta)(1-q)muS) + 1/((1-q)muS)
                  = 1/((1-delta)(1-q)muS) = E[TC].

        The paper's upper bound is therefore exact in expectation.
        """
        return self.mean_completion_time

    def sample_key_latency(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Monte-Carlo per-key latency from the analytic batch law.

        Draws the batch wait from eq. (4), a size-biased batch size, a
        uniform position within it, and the partial sum of key services.
        Used to cross-check eq. (9) without running the event simulator.
        """
        if size <= 0:
            raise ValidationError(f"size must be > 0, got {size}")
        waits = self._sample_wait(rng, size)
        positions = self._sample_size_biased_position(rng, size)
        # Sum of `position` iid Exp(muS) services = Gamma(position, muS).
        services = rng.gamma(shape=positions, scale=1.0 / self._mu_key)
        return waits + services

    def _sample_wait(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample the stationary batch wait: atom at 0 plus exp tail."""
        delta = self.delta
        rate = self.decay_rate
        u = rng.random(size)
        out = np.zeros(size)
        busy = u < delta
        out[busy] = rng.exponential(1.0 / rate, size=int(busy.sum()))
        return out

    def _sample_size_biased_position(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Position of a random key in its batch (size-biased geometric).

        A uniformly random *key* lands in a batch of size ``n`` with
        probability proportional to ``n * P(X = n)``; its position within
        that batch is uniform on ``1..n``. For geometric ``X`` this
        composition is sampled directly.
        """
        q = self.q
        if q == 0.0:
            return np.ones(size)
        # Size-biased geometric: X* = X1 + X2 - 1 with X1, X2 ~ Geometric.
        x_star = rng.geometric(1.0 - q, size) + rng.geometric(1.0 - q, size) - 1
        return rng.integers(1, x_star, endpoint=True).astype(float)


def batch_collapse_service(q: float, service_rate: float) -> Exponential:
    """Service time of a whole geometric batch: ``Exp((1 - q) muS)``.

    The geometric-sum-of-exponentials identity the paper cites ([32]).
    Exposed standalone because tests and ablations verify it directly.
    """
    geometric = Geometric(q)  # validates q
    if service_rate <= 0:
        raise ValidationError(f"service_rate must be > 0, got {service_rate}")
    return Exponential((1.0 - geometric.q) * service_rate)
