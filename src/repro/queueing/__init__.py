"""Analytic queueing substrate.

* :class:`MM1Queue` — the database stage (paper §4.4).
* :class:`GIM1Queue` — general renewal arrivals, exponential service.
* :class:`GIXM1Queue` — the paper's batch-arrival Memcached-server queue.
* :class:`MG1Queue` — Pollaczek-Khinchine baseline.
* fork-join baselines, maximal statistics, and the Proposition-2 cliff
  machinery (Table 4).
"""

from .cliff import (
    CLIFF_METHODS,
    PAPER_TABLE_4,
    POISSON_CLIFF,
    cliff_key_rate,
    cliff_table,
    cliff_utilization,
    delta_for_utilization,
    knee_point,
    normalized_latency,
    poisson_cliff_closed_form,
)
from .forkjoin import (
    SplitMergeBounds,
    fork_join_scaling_exponent,
    nelson_tantawi_mean,
    varma_makowski_interpolation,
)
from .general_batch import (
    GeneralBatchQueue,
    batch_collapse_error,
    geometric_reference,
)
from .gim1 import GIM1Queue
from .gixm1 import GIXM1Queue, batch_collapse_service
from .maxstat import (
    expected_max_empirical,
    expected_max_exact,
    expected_max_of_exponential,
    expected_max_quantile_rule,
    harmonic_expected_max_of_exponential,
    max_cdf_power,
    quantile_level,
)
from .mg1 import MG1Queue
from .mm1 import MM1Queue
from .mmc import MMcQueue, erlang_c, pooling_comparison
from .rootfind import (
    fixed_point_iterate,
    gim1_root_cache_clear,
    gim1_root_cache_info,
    solve_gim1_root,
    solve_gim1_root_cached,
)

__all__ = [
    "CLIFF_METHODS",
    "GIM1Queue",
    "GIXM1Queue",
    "GeneralBatchQueue",
    "batch_collapse_error",
    "geometric_reference",
    "MG1Queue",
    "MM1Queue",
    "MMcQueue",
    "erlang_c",
    "pooling_comparison",
    "PAPER_TABLE_4",
    "POISSON_CLIFF",
    "SplitMergeBounds",
    "batch_collapse_service",
    "cliff_key_rate",
    "cliff_table",
    "cliff_utilization",
    "delta_for_utilization",
    "expected_max_empirical",
    "expected_max_exact",
    "expected_max_of_exponential",
    "expected_max_quantile_rule",
    "fixed_point_iterate",
    "fork_join_scaling_exponent",
    "harmonic_expected_max_of_exponential",
    "knee_point",
    "max_cdf_power",
    "nelson_tantawi_mean",
    "normalized_latency",
    "poisson_cliff_closed_form",
    "quantile_level",
    "gim1_root_cache_clear",
    "gim1_root_cache_info",
    "solve_gim1_root",
    "solve_gim1_root_cached",
    "varma_makowski_interpolation",
]
