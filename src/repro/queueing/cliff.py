"""Latency cliff analysis (paper Proposition 2 and Table 4).

The paper observes that ``E[TS(N)]`` as a function of server utilization
``rho`` has a *cliff point* whose location depends only on the burst
degree ``xi`` — not on the absolute rates (Proposition 2) and, as shown
here, not on the concurrency ``q`` either.

Why only ``(xi, rho)`` matter: with the paper's workload the batch gap is
``GPD(rate=(1-q) lambda, xi)`` whose scale is ``(1-xi)/((1-q) lambda)``,
and the fixed point evaluates the LST at ``s = (1-delta)(1-q) muS``, so
``s * scale = (1-delta)(1-xi)/rho`` — a function of ``(rho, xi)`` alone.
All cliff computations therefore work on the normalized latency curve::

    w(rho) = 1 / (1 - delta(xi, rho))        # E[TS(N)] up to a constant

**Cliff definition.** The paper never states its numeric knee recipe, so
we provide three documented criteria, each calibrated so that Poisson
arrivals (``xi = 0``, where ``delta = rho`` and ``w = 1/(1-rho)``) give
the paper's 77%:

* ``"relative-slope"`` (default): the smallest ``rho`` where
  ``d(ln w)/d rho`` reaches ``1/(1-0.77)``. Matches Table 4 within
  ~0.02 for ``xi <= 0.6`` (the realistic range; Facebook is 0.15).
* ``"iso-delta"``: the ``rho`` where ``delta(xi, rho) = 0.77``.
* ``"absolute-slope"``: the ``rho`` where ``dw/d rho = 1/(1-0.77)^2``.

For extreme burst (``xi >= ~0.8``) the curve is already steep at tiny
utilization; when a criterion is exceeded everywhere the cliff is
reported at the low end of the search range — operationally "any load is
past the cliff", qualitatively matching the paper's collapse to 9–39%.
The bench for Table 4 reports our values against the paper's side by
side.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Sequence

import numpy as np
from scipy import optimize

from ..distributions import GeneralizedPareto
from ..errors import ValidationError
from .rootfind import solve_gim1_root

#: The Poisson-limit cliff utilization every criterion is calibrated to.
POISSON_CLIFF = 0.77

#: Search range for cliff roots; beyond rho ~ 0.97 the quadrature-backed
#: fixed point loses precision and every curve is post-cliff anyway.
RHO_SEARCH_RANGE = (0.005, 0.965)

CLIFF_METHODS = ("relative-slope", "iso-delta", "absolute-slope")


def delta_for_utilization(xi: float, rho: float) -> float:
    """The GI/M/1 root ``delta`` as a function of ``(xi, rho)`` only.

    Works in normalized units: unit batch service rate, batch gap
    ``GPD(rate=rho, xi)``. By the scale invariance above this equals the
    delta of any Facebook-style workload with the same burst degree and
    server utilization, regardless of ``lambda``, ``muS`` and ``q``.
    """
    if not 0.0 <= xi < 1.0:
        raise ValidationError(f"xi must be in [0, 1), got {xi}")
    if not 0.0 < rho < 1.0:
        raise ValidationError(f"rho must be in (0, 1), got {rho}")
    if xi == 0.0:
        # Poisson arrivals: the fixed point is exactly delta = rho.
        return rho
    gap = GeneralizedPareto(rho, xi)
    return solve_gim1_root(gap.laplace, 1.0, arrival_rate=rho)


def normalized_latency(xi: float, rho: float) -> float:
    """``w(rho) = 1/(1 - delta)``: E[TS(N)] up to a rho-independent factor."""
    return 1.0 / (1.0 - delta_for_utilization(xi, rho))


def _latency_log_slope(xi: float, rho: float, h: float = 1e-4) -> float:
    """Central-difference ``d(ln w)/d rho``."""
    lo = max(rho - h, RHO_SEARCH_RANGE[0] / 2)
    hi = min(rho + h, 0.985)
    return (
        math.log(normalized_latency(xi, hi)) - math.log(normalized_latency(xi, lo))
    ) / (hi - lo)


def _latency_slope(xi: float, rho: float, h: float = 1e-4) -> float:
    """Central-difference ``dw/d rho``."""
    lo = max(rho - h, RHO_SEARCH_RANGE[0] / 2)
    hi = min(rho + h, 0.985)
    return (normalized_latency(xi, hi) - normalized_latency(xi, lo)) / (hi - lo)


def _first_crossing(
    func: Callable[[float], float], threshold: float
) -> float:
    """Smallest rho in the search range with ``func(rho) >= threshold``.

    Returns the range's low end if the threshold is exceeded everywhere
    (extreme burst: the cliff is immediate) and the high end if it is
    never reached.
    """
    lo, hi = RHO_SEARCH_RANGE
    if func(lo) >= threshold:
        return lo
    if func(hi) < threshold:
        return hi
    return float(
        optimize.brentq(lambda r: func(r) - threshold, lo, hi, xtol=1e-5)
    )


def cliff_utilization(xi: float, *, method: str = "relative-slope") -> float:
    """The cliff utilization ``rhoS(xi)`` (paper Table 4).

    See the module docstring for the three criteria. All are calibrated
    to return 0.77 in the Poisson limit and are monotonically decreasing
    in the burst degree.
    """
    if not 0.0 <= xi < 1.0:
        raise ValidationError(f"xi must be in [0, 1), got {xi}")
    if method == "relative-slope":
        threshold = 1.0 / (1.0 - POISSON_CLIFF)
        return _first_crossing(lambda r: _latency_log_slope(xi, r), threshold)
    if method == "iso-delta":
        return _first_crossing(lambda r: delta_for_utilization(xi, r), POISSON_CLIFF)
    if method == "absolute-slope":
        threshold = 1.0 / (1.0 - POISSON_CLIFF) ** 2
        return _first_crossing(lambda r: _latency_slope(xi, r), threshold)
    raise ValidationError(
        f"unknown cliff method {method!r}; choose one of {CLIFF_METHODS}"
    )


def cliff_key_rate(
    xi: float, service_rate: float, *, method: str = "relative-slope"
) -> float:
    """Per-server key rate (keys/s) at the Proposition 2 cliff.

    The cliff utilization depends only on the burst degree, so the
    per-server arrival rate where ``E[TS(N)]`` starts exploding is
    simply ``rhoS(xi) * muS``. This is the analytic upper anchor the
    capacity search brackets against: a server driven past this rate is
    on the steep side of the latency curve regardless of ``N`` or ``q``.
    """
    if service_rate <= 0.0:
        raise ValidationError(
            f"service_rate must be > 0, got {service_rate}"
        )
    return cliff_utilization(xi, method=method) * service_rate


def cliff_table(
    xis: Sequence[float], *, method: str = "relative-slope"
) -> Dict[float, float]:
    """Reproduce Table 4: ``{xi: rhoS(xi)}`` for the given burst degrees."""
    return {float(xi): cliff_utilization(float(xi), method=method) for xi in xis}


def knee_point(
    curve: Callable[[float], float],
    *,
    x_max: float,
    n_grid: int = 193,
) -> float:
    """Max-distance-from-chord (Kneedle) knee of an increasing curve.

    Generic utility (used for hit-rate curves and example analyses):
    normalizes both axes over ``[0, x_max]`` to ``[0, 1]`` and returns
    the ``x`` maximizing ``x_hat - y_hat`` for convex curves (or
    ``y_hat - x_hat`` for concave ones, whichever is larger).
    """
    if x_max <= 0:
        raise ValidationError(f"x_max must be > 0, got {x_max}")
    if n_grid < 8:
        raise ValidationError(f"n_grid must be >= 8, got {n_grid}")
    eps = x_max * 1e-6
    xs = np.linspace(eps, x_max, n_grid)
    ys = np.array([curve(float(x)) for x in xs])
    y0, y1 = ys[0], ys[-1]
    if y1 <= y0:
        raise ValidationError("curve must be increasing on the range")
    x_hat = xs / x_max
    y_hat = (ys - y0) / (y1 - y0)
    gaps = np.abs(x_hat - y_hat)
    return float(xs[int(np.argmax(gaps))])


def poisson_cliff_closed_form(rho_max: float = 0.95) -> float:
    """Kneedle knee of ``1/(1-rho)`` on ``[0, rho_max]`` in closed form.

    ``rho* = 1 - sqrt(rho_max / (1/(1-rho_max) - 1))``; at the default
    window this is 77.6%, which is where the 77% calibration constant
    comes from. Kept as an analytic cross-check for :func:`knee_point`.
    """
    if not 0.0 < rho_max < 1.0:
        raise ValidationError(f"rho_max must be in (0, 1), got {rho_max}")
    span = 1.0 / (1.0 - rho_max) - 1.0
    return 1.0 - math.sqrt(rho_max / span)


#: The paper's Table 4, for validation: burst degree -> cliff utilization.
PAPER_TABLE_4 = {
    0.00: 0.77, 0.05: 0.76, 0.10: 0.76, 0.15: 0.75, 0.20: 0.74,
    0.25: 0.73, 0.30: 0.72, 0.35: 0.71, 0.40: 0.69, 0.45: 0.67,
    0.50: 0.65, 0.55: 0.62, 0.60: 0.59, 0.65: 0.55, 0.70: 0.50,
    0.75: 0.45, 0.80: 0.39, 0.85: 0.31, 0.90: 0.21, 0.95: 0.09,
}
