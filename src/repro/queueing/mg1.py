"""M/G/1 queue (Pollaczek–Khinchine) — baseline / ablation substrate.

Used to quantify what the paper's GI-arrival modeling buys: an M/G/1 (or
M/M/1) model driven by the same rates ignores arrival burstiness entirely
and under-predicts latency for the Facebook workload.
"""

from __future__ import annotations

from ..distributions import Distribution
from ..errors import StabilityError, ValidationError


class MG1Queue:
    """Analytic M/G/1 mean-value results via Pollaczek–Khinchine.

    Poisson arrivals at ``arrival_rate``; service drawn from ``service``.
    """

    def __init__(self, arrival_rate: float, service: Distribution) -> None:
        if arrival_rate <= 0:
            raise ValidationError(f"arrival_rate must be > 0, got {arrival_rate}")
        self._lam = float(arrival_rate)
        self._service = service
        rho = self._lam * service.mean
        if rho >= 1.0:
            raise StabilityError(rho)

    @property
    def arrival_rate(self) -> float:
        return self._lam

    @property
    def service(self) -> Distribution:
        return self._service

    @property
    def utilization(self) -> float:
        return self._lam * self._service.mean

    @property
    def mean_wait(self) -> float:
        """P-K mean wait: ``lam E[S^2] / (2 (1 - rho))``."""
        second_moment = self._service.variance + self._service.mean**2
        return self._lam * second_moment / (2.0 * (1.0 - self.utilization))

    @property
    def mean_sojourn(self) -> float:
        return self.mean_wait + self._service.mean

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system by Little's law."""
        return self._lam * self.mean_sojourn
