"""M/M/1 queue — the paper's database stage (Theorem 1 part 3 substrate).

Standard FCFS M/M/1 with Poisson arrivals at rate ``lam`` and exponential
service at rate ``mu``. The sojourn (response) time is exponential with
rate ``(1 - rho) * mu`` — the closed form the paper uses in eq. (19),
including its light-load approximation ``1 - exp(-mu t)``.
"""

from __future__ import annotations

import math

from ..distributions import Exponential
from ..errors import StabilityError, ValidationError


class MM1Queue:
    """Analytic M/M/1 results: utilization, waits, sojourns, quantiles."""

    def __init__(self, arrival_rate: float, service_rate: float) -> None:
        if arrival_rate < 0:
            raise ValidationError(f"arrival_rate must be >= 0, got {arrival_rate}")
        if service_rate <= 0:
            raise ValidationError(f"service_rate must be > 0, got {service_rate}")
        self._lam = float(arrival_rate)
        self._mu = float(service_rate)
        if self._lam >= self._mu:
            raise StabilityError(self._lam / self._mu)

    @property
    def arrival_rate(self) -> float:
        return self._lam

    @property
    def service_rate(self) -> float:
        return self._mu

    @property
    def utilization(self) -> float:
        """``rho = lam / mu``."""
        return self._lam / self._mu

    @property
    def mean_wait(self) -> float:
        """Mean time in queue (excluding service)."""
        rho = self.utilization
        return rho / (self._mu * (1.0 - rho))

    @property
    def mean_sojourn(self) -> float:
        """Mean response time ``1 / (mu - lam)``."""
        return 1.0 / (self._mu - self._lam)

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system ``rho / (1 - rho)``."""
        rho = self.utilization
        return rho / (1.0 - rho)

    def sojourn_distribution(self) -> Exponential:
        """The response time is ``Exp((1 - rho) mu)`` (paper eq. (19))."""
        return Exponential((1.0 - self.utilization) * self._mu)

    def sojourn_cdf(self, t: float) -> float:
        """``P(T <= t)`` for the response time."""
        if t <= 0:
            return 0.0
        return -math.expm1(-(self._mu - self._lam) * t)

    def sojourn_quantile(self, k: float) -> float:
        """k-th quantile of the response time."""
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        return -math.log1p(-k) / (self._mu - self._lam)

    def wait_cdf(self, t: float) -> float:
        """``P(W <= t)``: an atom ``1 - rho`` at 0 plus an exponential tail."""
        if t < 0:
            return 0.0
        rho = self.utilization
        return 1.0 - rho * math.exp(-(self._mu - self._lam) * t)

    def wait_quantile(self, k: float) -> float:
        """k-th quantile of the waiting time (0 below the atom)."""
        if not 0.0 <= k < 1.0:
            raise ValidationError(f"quantile level must be in [0, 1): {k}")
        rho = self.utilization
        if k <= 1.0 - rho:
            return 0.0
        return -math.log((1.0 - k) / rho) / (self._mu - self._lam)
