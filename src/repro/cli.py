"""Command-line interface.

Subcommands map to the paper's workflows::

    repro estimate     Theorem 1 bounds for one configuration
    repro simulate     closed-loop system simulation
    repro sweep        factor sweeps (q, xi, rate, p1, r, n)
    repro cliff-table  reproduce Table 4
    repro validate     theory-vs-simulation comparison (Table 3 style)
    repro recommend    the §5.3 configuration advisor
    repro report       inspect a saved run report (JSON artifact)
    repro trace        print slowest-request span trees from a report

All rates are entered in Kps (thousand keys per second) and times in
microseconds, matching the paper's units; output is aligned text.
``estimate``, ``simulate``, ``validate``, and ``sweep`` accept a
``--json`` flag (before or after the subcommand) for machine-readable
output through the shared run-report serializer.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from .core import (
    ClusterModel,
    DatabaseStage,
    LatencyModel,
    WorkloadPattern,
    advise,
    sweep_database_stage,
    sweep_server_stage,
)
from .core.stages import ServerStage
from .errors import ReproError
from .observability import Observability, RunReport, Span, json_dumps
from .queueing import PAPER_TABLE_4, cliff_table
from .simulation import MemcachedSystemSimulator
from .units import kps, to_usec, usec


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--rate", type=float, default=62.5, help="per-server key rate in Kps"
    )
    parser.add_argument("--xi", type=float, default=0.15, help="burst degree")
    parser.add_argument(
        "--concurrency", type=float, default=0.1, help="concurrency probability q"
    )
    parser.add_argument(
        "--service-rate", type=float, default=80.0, help="server rate muS in Kps"
    )
    parser.add_argument(
        "--n-keys", type=int, default=150, help="keys per end-user request (N)"
    )
    parser.add_argument(
        "--network-delay", type=float, default=20.0, help="network latency in us"
    )
    parser.add_argument(
        "--miss-ratio", type=float, default=0.01, help="cache miss ratio r"
    )
    parser.add_argument(
        "--db-latency", type=float, default=1000.0, help="mean DB service in us"
    )


def _add_json_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of aligned text",
    )


def _wants_json(args: argparse.Namespace) -> bool:
    """``--json`` before or after the subcommand both count."""
    return bool(getattr(args, "json", False)) or bool(
        getattr(args, "json_global", False)
    )


def _workload_from(args: argparse.Namespace) -> WorkloadPattern:
    return WorkloadPattern(
        rate=kps(args.rate), xi=args.xi, q=args.concurrency
    )


def _model_from(args: argparse.Namespace) -> LatencyModel:
    return LatencyModel.build(
        workload=_workload_from(args),
        service_rate=kps(args.service_rate),
        network_delay=usec(args.network_delay),
        database_rate=1.0 / usec(args.db_latency),
        miss_ratio=args.miss_ratio,
    )


def _print_rows(header: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    widths = [
        max(len(str(cell)) for cell in [head] + [row[i] for row in rows])
        for i, head in enumerate(header)
    ]
    def fmt(row: Sequence[object]) -> str:
        return "  ".join(str(cell).rjust(width) for cell, width in zip(row, widths))
    print(fmt(header))
    print(fmt(["-" * width for width in widths]))
    for row in rows:
        print(fmt(row))


# ----------------------------------------------------------------------
# Subcommands.
# ----------------------------------------------------------------------


def cmd_estimate(args: argparse.Namespace) -> int:
    if args.config is not None:
        from .config import ExperimentConfig

        config = ExperimentConfig.load(args.config)
        model = config.latency_model()
        n_keys = config.n_keys
    else:
        model = _model_from(args)
        n_keys = args.n_keys
    estimate = model.estimate(n_keys)
    if _wants_json(args):
        print(
            json_dumps(
                {
                    "kind": "repro-estimate",
                    "n_keys": n_keys,
                    "estimate": estimate,
                    "total_lower": estimate.total_lower,
                    "total_upper": estimate.total_upper,
                    "dominant_stage": estimate.dominant_stage,
                    "server_utilization": model.server_stage.utilization,
                    "delta": model.server_stage.delta,
                }
            )
        )
        return 0
    print(estimate)
    print(f"dominant stage: {estimate.dominant_stage}")
    print(f"server utilization: {model.server_stage.utilization:.1%}")
    print(f"delta: {model.server_stage.delta:.4f}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    cluster = ClusterModel.balanced(args.servers, kps(args.service_rate))
    request_rate = kps(args.rate) * args.servers / args.n_keys
    want_json = _wants_json(args)
    want_report = args.report is not None
    observability = None
    if args.trace or args.profile or want_report:
        observability = Observability(
            trace=args.trace,
            metrics=True,
            profile=args.profile or want_report,
            slowest_k=args.slowest,
        )
    system = MemcachedSystemSimulator(
        cluster,
        n_keys_per_request=args.n_keys,
        request_rate=request_rate,
        network_delay=usec(args.network_delay),
        miss_ratio=args.miss_ratio,
        database_rate=1.0 / usec(args.db_latency),
        seed=args.seed,
        observability=observability,
    )
    results = system.run(
        n_requests=args.requests, warmup_requests=args.requests // 10
    )
    report = None
    if want_report or want_json:
        report = RunReport.from_simulation(
            results,
            observability,
            config={
                "servers": args.servers,
                "rate_kps": args.rate,
                "service_rate_kps": args.service_rate,
                "n_keys": args.n_keys,
                "network_delay_us": args.network_delay,
                "miss_ratio": args.miss_ratio,
                "db_latency_us": args.db_latency,
                "requests": args.requests,
                "seed": args.seed,
            },
        )
    if want_report:
        report.save(args.report)
    if want_json:
        print(report.to_json())
        return 0
    rows = []
    for label, recorder in [
        ("T(N)", results.total),
        ("TS(N)", results.server_stage),
        ("TD(N)", results.database_stage),
        ("TN(N)", results.network_stage),
    ]:
        summary = recorder.summary()
        rows.append(
            [
                label,
                f"{to_usec(summary.mean):.1f}",
                f"[{to_usec(summary.ci_low):.1f}, {to_usec(summary.ci_high):.1f}]",
            ]
        )
    _print_rows(["stage", "mean (us)", "95% CI (us)"], rows)
    print(f"measured miss ratio: {results.measured_miss_ratio:.4f}")
    print(
        "server utilizations: "
        + ", ".join(f"{u:.1%}" for u in results.server_utilizations)
    )
    if observability is not None and observability.tracer is not None:
        slowest = observability.tracer.slowest(3)
        if slowest:
            worst = ", ".join(f"{to_usec(span.duration):.0f}" for span in slowest)
            print(f"slowest requests (us): {worst}")
    if want_report:
        print(f"report written: {args.report}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    workload = _workload_from(args)
    service_rate = kps(args.service_rate)
    values = np.linspace(args.start, args.stop, args.points)
    if args.factor == "q":
        sweep = sweep_server_stage(
            "q",
            values,
            lambda q: ServerStage(workload.with_q(q), service_rate),
            args.n_keys,
        )
    elif args.factor == "xi":
        sweep = sweep_server_stage(
            "xi",
            values,
            lambda xi: ServerStage(workload.with_xi(xi), service_rate),
            args.n_keys,
        )
    elif args.factor == "rate":
        sweep = sweep_server_stage(
            "rate_kps",
            values,
            lambda rate: ServerStage(workload.with_rate(kps(rate)), service_rate),
            args.n_keys,
        )
    elif args.factor == "mu":
        sweep = sweep_server_stage(
            "mu_kps",
            values,
            lambda mu: ServerStage(workload, kps(mu)),
            args.n_keys,
        )
    elif args.factor == "r":
        sweep = sweep_database_stage(
            "miss_ratio",
            values,
            lambda r: DatabaseStage(1.0 / usec(args.db_latency), r),
            args.n_keys,
        )
    else:
        raise ReproError(f"unknown sweep factor {args.factor!r}")
    if _wants_json(args):
        print(
            json_dumps(
                {
                    "kind": "repro-sweep",
                    "parameter": sweep.parameter,
                    "values": list(sweep.values),
                    "lower": list(sweep.lower),
                    "upper": list(sweep.upper),
                }
            )
        )
        return 0
    rows = [
        [f"{value:.4g}", f"{to_usec(lo):.1f}", f"{to_usec(up):.1f}"]
        for value, lo, up in zip(sweep.values, sweep.lower, sweep.upper)
    ]
    _print_rows([sweep.parameter, "lower (us)", "upper (us)"], rows)
    return 0


def cmd_cliff_table(args: argparse.Namespace) -> int:
    xis = [round(0.05 * i, 2) for i in range(20)]
    ours = cliff_table(xis, method=args.method)
    rows = [
        [f"{xi:.2f}", f"{ours[xi]:.0%}", f"{PAPER_TABLE_4[xi]:.0%}"]
        for xi in xis
    ]
    _print_rows(["xi", "ours", "paper"], rows)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .core import validate_configuration

    model = _model_from(args)
    report = validate_configuration(
        model,
        n_keys=args.n_keys,
        n_requests=args.requests,
        pool_size=args.pool_size,
        seed=args.seed,
    )
    if _wants_json(args):
        print(
            json_dumps(
                {
                    "kind": "repro-validate",
                    "n_keys": report.n_keys,
                    "n_requests": report.n_requests,
                    "all_consistent": report.all_consistent,
                    "stages": report.stages,
                }
            )
        )
        return 0 if report.all_consistent else 1
    rows = []
    for stage in report.stages:
        if stage.theory_lower == stage.theory_upper:
            theory = f"{to_usec(stage.theory_lower):.1f}"
        else:
            theory = (
                f"{to_usec(stage.theory_lower):.1f}.."
                f"{to_usec(stage.theory_upper):.1f}"
            )
        rows.append(
            [
                stage.stage,
                theory,
                f"{to_usec(stage.simulated):.1f}",
                "ok" if stage.consistent else "INCONSISTENT",
            ]
        )
    _print_rows(["stage", "theory (us)", "simulated (us)", "verdict"], rows)
    if not report.all_consistent:
        print(
            "warning: simulation outside the documented Theorem 1 slack "
            "(see EXPERIMENTS.md)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_config_template(args: argparse.Namespace) -> int:
    from .config import ExperimentConfig

    print(ExperimentConfig.paper_section_5_1().to_json())
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    from .workloads import KeyTrace

    trace = KeyTrace.load_csv(args.trace)
    fit = trace.fit_workload(window=usec(args.window))
    print(f"trace      : {trace.n_keys} keys over {trace.duration:.3f}s")
    print(f"key rate   : {fit.rate / 1e3:.2f} Kps")
    print(f"burst xi   : {fit.xi:.3f}")
    print(f"concurrency: {fit.q:.3f}")
    if args.service_rate is not None:
        workload = WorkloadPattern(rate=fit.rate, xi=fit.xi, q=fit.q)
        stage = ServerStage(workload, kps(args.service_rate))
        bounds = stage.mean_latency_bounds(args.n_keys)
        print(
            f"E[TS({args.n_keys})] at muS = {args.service_rate} Kps: "
            f"[{to_usec(bounds.lower):.1f}, {to_usec(bounds.upper):.1f}] us "
            f"(utilization {stage.utilization:.1%})"
        )
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    from .core import NetworkStage, TailLatencyModel

    workload = _workload_from(args)
    stage = ServerStage(workload, kps(args.service_rate))
    database = (
        DatabaseStage(1.0 / usec(args.db_latency), args.miss_ratio)
        if args.miss_ratio > 0
        else None
    )
    model = TailLatencyModel(
        stage,
        network_stage=NetworkStage(usec(args.network_delay)),
        database_stage=database,
    )
    rows = []
    for level in (0.5, 0.9, 0.95, 0.99, 0.999):
        bounds = model.request_quantile_bounds(level, args.n_keys)
        rows.append(
            [
                f"p{level * 100:g}",
                f"{to_usec(bounds.lower):.1f}",
                f"{to_usec(bounds.upper):.1f}",
            ]
        )
    _print_rows(["percentile", "lower (us)", "upper (us)"], rows)
    if database is not None:
        exact = model.database_mean_exact(args.n_keys)
        print(f"exact E[TD(N)] (vs eq. 23): {to_usec(exact):.1f} us")
    return 0


def cmd_miss_curve(args: argparse.Namespace) -> int:
    from .distributions import Zipf
    from .memcached import miss_ratio_curve

    popularity = Zipf(args.items, args.zipf_s)
    capacities = np.unique(
        np.logspace(
            np.log10(max(args.items * 0.001, 1.0)),
            np.log10(args.items * 0.9),
            args.points,
        ).astype(int)
    )
    curve = miss_ratio_curve(popularity.probabilities, capacities)
    rows = [
        [int(c), f"{r:.4f}", f"{to_usec(DatabaseStage(1.0 / usec(args.db_latency), max(r, 1e-12)).mean_latency(args.n_keys)):.1f}"]
        for c, r in zip(capacities, curve)
    ]
    _print_rows(["capacity (items)", "miss ratio r", "E[TD(N)] (us)"], rows)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    report = RunReport.load(args.path)
    if _wants_json(args):
        print(report.to_json())
        return 0
    if report.config:
        print("config:")
        for key in sorted(report.config):
            print(f"  {key}: {report.config[key]}")
    rows = []
    for stage, count, mean, p50, p95, p99 in report.stage_rows():
        rows.append(
            [
                stage,
                count,
                f"{to_usec(mean):.1f}",
                f"{to_usec(p50):.1f}" if p50 is not None else "-",
                f"{to_usec(p95):.1f}" if p95 is not None else "-",
                f"{to_usec(p99):.1f}" if p99 is not None else "-",
            ]
        )
    if rows:
        _print_rows(
            ["stage", "count", "mean (us)", "p50 (us)", "p95 (us)", "p99 (us)"],
            rows,
        )
    for key in ("requests_completed", "keys_processed", "measured_miss_ratio"):
        if key in report.meta:
            print(f"{key}: {report.meta[key]}")
    if report.profile:
        profile = report.profile
        print(
            f"event loop: {profile.get('events')} events, "
            f"{profile.get('wall_seconds', 0.0):.3f}s wall, "
            f"{profile.get('events_per_second', 0.0):,.0f} events/s, "
            f"max pending {profile.get('pending_max')}"
        )
        categories = profile.get("categories") or {}
        for name, stats in list(categories.items())[:5]:
            print(
                f"  {name}: {stats['count']} calls, "
                f"{stats['wall_seconds'] * 1e3:.1f} ms, "
                f"{stats['mean_usec']:.1f} us/call"
            )
    print(f"metrics: {len(report.metrics)}  slow traces: {len(report.slowest)}")
    return 0


def _print_span(span: Span, root_start: float, depth: int) -> None:
    indent = "  " * depth
    duration = f"{to_usec(span.duration):.1f}us" if span.finished else "?"
    offset = to_usec(span.start - root_start)
    attrs = ""
    if span.attributes:
        attrs = "  " + " ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
    print(f"{indent}{span.name}  +{offset:.1f}us  {duration}{attrs}")
    for child in span.children:
        _print_span(child, root_start, depth + 1)


def cmd_trace(args: argparse.Namespace) -> int:
    report = RunReport.load(args.path)
    spans = report.slowest_spans()[: args.top]
    if not spans:
        print("report contains no traces (run simulate with --trace)")
        return 1
    if _wants_json(args):
        print(json_dumps([span.to_dict() for span in spans]))
        return 0
    for rank, span in enumerate(spans, 1):
        print(
            f"#{rank}  {span.name}  {to_usec(span.duration):.1f}us  "
            + " ".join(
                f"{key}={value}" for key, value in sorted(span.attributes.items())
            )
        )
        for child in span.children:
            _print_span(child, span.start, 1)
        print()
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    workload = _workload_from(args)
    if args.hottest_share is not None:
        cluster = ClusterModel.hot_cold(
            args.servers, kps(args.service_rate), hottest_share=args.hottest_share
        )
    else:
        cluster = ClusterModel.balanced(args.servers, kps(args.service_rate))
    database = DatabaseStage(1.0 / usec(args.db_latency), args.miss_ratio)
    report = advise(
        workload=workload,
        cluster=cluster,
        total_key_rate=kps(args.total_rate),
        n_keys=args.n_keys,
        database=database,
    )
    print(report)
    return 0


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memcached latency model (ICDCS 2017 reproduction)",
    )
    parser.add_argument(
        "--json",
        dest="json_global",
        action="store_true",
        help="emit machine-readable JSON (estimate/simulate/validate/sweep)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_est = sub.add_parser("estimate", help="Theorem 1 latency bounds")
    _add_workload_args(p_est)
    _add_json_flag(p_est)
    p_est.add_argument(
        "--config", default=None,
        help="JSON experiment config (overrides the flag-based workload)",
    )
    p_est.set_defaults(func=cmd_estimate)

    p_cfg = sub.add_parser(
        "config-template", help="print the §5.1 config as JSON"
    )
    p_cfg.set_defaults(func=cmd_config_template)

    p_sim = sub.add_parser("simulate", help="closed-loop system simulation")
    _add_workload_args(p_sim)
    _add_json_flag(p_sim)
    p_sim.add_argument("--servers", type=int, default=4)
    p_sim.add_argument("--requests", type=int, default=2000)
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument(
        "--trace",
        action="store_true",
        help="collect per-request span trees (slowest kept, see --slowest)",
    )
    p_sim.add_argument(
        "--profile",
        action="store_true",
        help="profile the event loop (wall time per callback category)",
    )
    p_sim.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write a JSON run report (enables metrics + profiling)",
    )
    p_sim.add_argument(
        "--slowest",
        type=int,
        default=10,
        help="how many slowest-request traces to retain (default 10)",
    )
    p_sim.set_defaults(func=cmd_simulate)

    p_sweep = sub.add_parser("sweep", help="factor sweeps")
    _add_workload_args(p_sweep)
    _add_json_flag(p_sweep)
    p_sweep.add_argument("factor", choices=["q", "xi", "rate", "mu", "r"])
    p_sweep.add_argument("--start", type=float, required=True)
    p_sweep.add_argument("--stop", type=float, required=True)
    p_sweep.add_argument("--points", type=int, default=11)
    p_sweep.set_defaults(func=cmd_sweep)

    p_cliff = sub.add_parser("cliff-table", help="reproduce Table 4")
    p_cliff.add_argument(
        "--method",
        default="relative-slope",
        choices=["relative-slope", "iso-delta", "absolute-slope"],
    )
    p_cliff.set_defaults(func=cmd_cliff_table)

    p_val = sub.add_parser("validate", help="theory vs fast-path simulation")
    _add_workload_args(p_val)
    _add_json_flag(p_val)
    p_val.add_argument("--requests", type=int, default=20000)
    p_val.add_argument("--pool-size", type=int, default=500_000)
    p_val.add_argument("--seed", type=int, default=1)
    p_val.set_defaults(func=cmd_validate)

    p_rep = sub.add_parser("report", help="inspect a saved run report")
    p_rep.add_argument("path", help="JSON file written by simulate --report")
    _add_json_flag(p_rep)
    p_rep.set_defaults(func=cmd_report)

    p_trc = sub.add_parser(
        "trace", help="print slowest-request span trees from a run report"
    )
    p_trc.add_argument("path", help="JSON file written by simulate --report")
    p_trc.add_argument(
        "--top", type=int, default=10, help="how many traces to print"
    )
    _add_json_flag(p_trc)
    p_trc.set_defaults(func=cmd_trace)

    p_fit = sub.add_parser("fit", help="fit (lambda, xi, q) from a trace CSV")
    p_fit.add_argument("trace", help="CSV written by KeyTrace.save_csv")
    p_fit.add_argument(
        "--window", type=float, default=1.0, help="concurrency window in us"
    )
    p_fit.add_argument(
        "--service-rate", type=float, default=None,
        help="optional muS (Kps) to also print Theorem 1 bounds",
    )
    p_fit.add_argument("--n-keys", type=int, default=150)
    p_fit.set_defaults(func=cmd_fit)

    p_tail = sub.add_parser("tail", help="request latency percentiles")
    _add_workload_args(p_tail)
    p_tail.set_defaults(func=cmd_tail)

    p_curve = sub.add_parser(
        "miss-curve", help="LRU miss-ratio curve (Che approximation)"
    )
    p_curve.add_argument("--items", type=int, default=100_000)
    p_curve.add_argument("--zipf-s", type=float, default=0.9)
    p_curve.add_argument("--points", type=int, default=10)
    p_curve.add_argument("--n-keys", type=int, default=150)
    p_curve.add_argument("--db-latency", type=float, default=1000.0)
    p_curve.set_defaults(func=cmd_miss_curve)

    p_rec = sub.add_parser("recommend", help="configuration advisor (§5.3)")
    _add_workload_args(p_rec)
    p_rec.add_argument("--servers", type=int, default=4)
    p_rec.add_argument(
        "--total-rate", type=float, default=250.0, help="total key rate in Kps"
    )
    p_rec.add_argument(
        "--hottest-share", type=float, default=None, help="p1 for hot/cold clusters"
    )
    p_rec.set_defaults(func=cmd_recommend)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
