"""Command-line interface.

Subcommands map to the paper's workflows::

    repro estimate     Theorem 1 bounds for one configuration
    repro simulate     closed-loop system simulation
    repro capacity     max sustainable RPS under an SLO (staged bisection)
    repro monitor      windowed telemetry + SLO dashboard for one run
    repro sweep        one-factor sweeps through the factor registry
    repro experiment   multi-factor grids on the parallel runner
    repro cliff-table  reproduce Table 4
    repro validate     theory-vs-simulation comparison (Table 3 style)
    repro recommend    the §5.3 configuration advisor
    repro report       inspect a saved run report (JSON artifact)
    repro trace        print slowest-request span trees from a report

All rates are entered in Kps (thousand keys per second) and times in
microseconds, matching the paper's units; output is aligned text.
``estimate``, ``simulate``, ``monitor``, ``validate``, ``sweep``, and
``experiment`` accept a ``--json`` flag (before or after the subcommand) for
machine-readable output through the shared run-report serializer.

Parameter parsing funnels through one object:
:func:`_scenario_from_args` builds a
:class:`~repro.experiments.Scenario`, and every subcommand derives its
models/simulators from it. ``sweep`` and ``experiment`` expand the
scenario over the factor registry and execute on the (optionally
process-parallel, resumable) :class:`~repro.experiments.ExperimentRunner`.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .capacity import CapacityObjective, capacity_curve, find_capacity
from .core import (
    ClusterModel,
    DatabaseStage,
    WorkloadPattern,
    advise,
)
from .core.stages import ServerStage
from .errors import ConfigError, ReproError
from .faults import FaultSchedule
from .policies import RequestPolicy, hedge_delay_from_quantile
from .experiments import (
    BACKENDS,
    DEFAULT_POOL_SIZE,
    Grid,
    Scenario,
    Suite,
    SuiteResult,
    factor_names,
    get_factor,
    options_from_args,
    run_suite,
    sweep_suite,
    validate_options,
)
from .observability import (
    GROUPS,
    STAGES,
    BurnRateRule,
    Observability,
    RunReport,
    SLOMonitor,
    SLORule,
    Span,
    Timeline,
    json_dumps,
    provenance,
    provenance_comment,
)
from .queueing import PAPER_TABLE_4, cliff_table
from .units import kps, to_kps, to_msec, to_usec, usec


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--rate", type=float, default=62.5, help="per-server key rate in Kps"
    )
    parser.add_argument("--xi", type=float, default=0.15, help="burst degree")
    parser.add_argument(
        "--concurrency", type=float, default=0.1, help="concurrency probability q"
    )
    parser.add_argument(
        "--service-rate", type=float, default=80.0, help="server rate muS in Kps"
    )
    parser.add_argument(
        "--n-keys", type=int, default=150, help="keys per end-user request (N)"
    )
    parser.add_argument(
        "--network-delay", type=float, default=20.0, help="network latency in us"
    )
    parser.add_argument(
        "--miss-ratio", type=float, default=0.01, help="cache miss ratio r"
    )
    parser.add_argument(
        "--db-latency", type=float, default=1000.0, help="mean DB service in us"
    )


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the runner-backed subcommands (sweep/experiment)."""
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="estimate",
        help="how each cell is evaluated (default: estimate)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1, help="replications per grid point"
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (results are identical for any N)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="checkpoint directory (one JSON per cell)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed cells from --out and run only the rest",
    )
    parser.add_argument("--servers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--requests", type=int, default=2000, help="requests per simulated cell"
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=DEFAULT_POOL_SIZE,
        help="fastpath per-server latency pool size",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one progress line per completed cell to stderr",
    )


def _add_timeline_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeline",
        default=None,
        metavar="PATH",
        help="record windowed telemetry and write the Timeline JSON here",
    )
    parser.add_argument(
        "--timeline-windows",
        type=int,
        default=60,
        metavar="K",
        help="windows the run is sliced into (default 60)",
    )


def _add_fault_policy_args(parser: argparse.ArgumentParser) -> None:
    """Fault-injection and request-policy flags (simulation backends)."""
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "fault schedule: inline JSON object ('{\"windows\": [...]}') "
            "or a path to a JSON file"
        ),
    )
    parser.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        metavar="US",
        help="hedge slow key fetches after this delay in us",
    )
    parser.add_argument(
        "--hedge-quantile",
        type=float,
        default=None,
        metavar="Q",
        help=(
            "set the hedge delay at this per-key latency quantile "
            "(e.g. 0.95; mutually exclusive with --hedge-delay)"
        ),
    )
    parser.add_argument(
        "--key-timeout",
        type=float,
        default=None,
        metavar="US",
        help="per-key timeout in us before abandoning and retrying",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="retry budget used with --key-timeout (default 1)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=2.0,
        help="timeout multiplier applied per retry (default 2.0)",
    )
    parser.add_argument(
        "--no-cancel-on-winner",
        action="store_true",
        help="let losing hedged attempts run to completion",
    )


def _add_json_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of aligned text",
    )


def _wants_json(args: argparse.Namespace) -> bool:
    """``--json`` before or after the subcommand both count."""
    return bool(getattr(args, "json", False)) or bool(
        getattr(args, "json_global", False)
    )


def _faults_from_args(args: argparse.Namespace) -> Optional[FaultSchedule]:
    """Parse ``--faults`` (inline JSON object or a JSON file path)."""
    spec = getattr(args, "faults", None)
    if spec is None:
        return None
    text = spec.strip()
    if text.startswith("{"):
        return FaultSchedule.from_json(text)
    try:
        return FaultSchedule.load(text)
    except OSError as exc:
        raise ConfigError(f"cannot read fault schedule {text!r}: {exc}") from exc


def _policy_from_args(args: argparse.Namespace) -> Optional[RequestPolicy]:
    """Build the request policy from ``--hedge-*``/``--key-timeout`` flags."""
    hedge_delay = getattr(args, "hedge_delay", None)
    hedge_quantile = getattr(args, "hedge_quantile", None)
    timeout = getattr(args, "key_timeout", None)
    if hedge_delay is not None and hedge_quantile is not None:
        raise ConfigError(
            "--hedge-delay and --hedge-quantile are mutually exclusive"
        )
    if hedge_quantile is not None:
        workload = WorkloadPattern(
            rate=kps(args.rate), xi=args.xi, q=args.concurrency
        )
        hedge: Optional[float] = hedge_delay_from_quantile(
            workload, kps(args.service_rate), hedge_quantile
        )
    elif hedge_delay is not None:
        hedge = usec(hedge_delay)
    else:
        hedge = None
    if hedge is None and timeout is None:
        return None
    return RequestPolicy(
        timeout=usec(timeout) if timeout is not None else None,
        max_retries=(
            int(getattr(args, "max_retries", 1)) if timeout is not None else 0
        ),
        backoff=float(getattr(args, "retry_backoff", 2.0)),
        hedge_delay=hedge,
        cancel_on_winner=not getattr(args, "no_cancel_on_winner", False),
    )


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    """Build the unified :class:`Scenario` from CLI flags.

    Converts the CLI's paper units (Kps, microseconds) into the
    library's internal units; flags a subcommand does not define fall
    back to the scenario defaults.
    """
    requests = int(getattr(args, "requests", None) or 2000)
    return Scenario(
        key_rate=kps(args.rate),
        burst_xi=args.xi,
        concurrency_q=args.concurrency,
        n_servers=int(getattr(args, "servers", 1)),
        service_rate=kps(args.service_rate),
        n_keys=args.n_keys,
        network_delay=usec(args.network_delay),
        miss_ratio=args.miss_ratio,
        database_rate=1.0 / usec(args.db_latency),
        seed=int(getattr(args, "seed", 0)),
        n_requests=requests,
        warmup_requests=requests // 10,
        faults=_faults_from_args(args),
        policy=_policy_from_args(args),
    )


def _print_rows(header: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    widths = [
        max(len(str(cell)) for cell in [head] + [row[i] for row in rows])
        for i, head in enumerate(header)
    ]
    def fmt(row: Sequence[object]) -> str:
        return "  ".join(str(cell).rjust(width) for cell, width in zip(row, widths))
    print(fmt(header))
    print(fmt(["-" * width for width in widths]))
    for row in rows:
        print(fmt(row))


# ----------------------------------------------------------------------
# Subcommands.
# ----------------------------------------------------------------------


def cmd_estimate(args: argparse.Namespace) -> int:
    if args.config is not None:
        from .config import ExperimentConfig

        scenario = Scenario.from_config(ExperimentConfig.load(args.config))
    else:
        scenario = _scenario_from_args(args)
    model = scenario.latency_model()
    n_keys = scenario.n_keys
    estimate = model.estimate(n_keys)
    if _wants_json(args):
        print(
            json_dumps(
                {
                    "kind": "repro-estimate",
                    "n_keys": n_keys,
                    "estimate": estimate,
                    "total_lower": estimate.total_lower,
                    "total_upper": estimate.total_upper,
                    "dominant_stage": estimate.dominant_stage,
                    "server_utilization": model.server_stage.utilization,
                    "delta": model.server_stage.delta,
                }
            )
        )
        return 0
    print(estimate)
    print(f"dominant stage: {estimate.dominant_stage}")
    print(f"server utilization: {model.server_stage.utilization:.1%}")
    print(f"delta: {model.server_stage.delta:.4f}")
    return 0


def _save_timeline(args: argparse.Namespace, timeline) -> None:
    """Write ``--timeline PATH`` (the JSON carries its own provenance)."""
    timeline.save(args.timeline)
    if not _wants_json(args):
        print(f"timeline written: {args.timeline}")


def cmd_simulate(args: argparse.Namespace) -> int:
    """One dispatch path for every backend: flags assemble into the
    typed options registry and :meth:`Scenario.run` does the rest."""
    scenario = _scenario_from_args(args)
    backend = "simulate" if args.backend == "engine" else args.backend
    want_json = _wants_json(args)
    want_report = args.report is not None
    if backend != "simulate" and (args.trace or args.profile or want_report):
        # --trace/--profile/--report assemble the engine-only
        # `observability` option; validating it against the chosen
        # backend yields the registry's uniform misdirected-option
        # error instead of a silent drop.
        validate_options(backend, {"observability": True})
    options = options_from_args(backend, args)
    result = scenario.run(backend, **options)
    if args.timeline is not None:
        _save_timeline(args, result.timeline)
    observability = options.get("observability")
    report = None
    if result.raw is not None and (want_report or want_json):
        report = RunReport.from_simulation(
            result.raw,
            observability,
            config={
                "servers": args.servers,
                "rate_kps": args.rate,
                "service_rate_kps": args.service_rate,
                "n_keys": args.n_keys,
                "network_delay_us": args.network_delay,
                "miss_ratio": args.miss_ratio,
                "db_latency_us": args.db_latency,
                "requests": args.requests,
                "seed": args.seed,
            },
        )
    if want_report:
        report.save(args.report)
    if want_json:
        print(report.to_json() if report is not None else json_dumps(result.to_dict()))
        return 0
    rows = []
    for label, stage in [
        ("T(N)", result.total),
        ("TS(N)", result.server),
        ("TD(N)", result.database),
        ("TN(N)", result.network),
    ]:
        rows.append(
            [
                label,
                f"{to_usec(stage.mean):.1f}",
                f"[{to_usec(stage.ci_low):.1f}, {to_usec(stage.ci_high):.1f}]",
            ]
        )
    _print_rows(["stage", "mean (us)", "95% CI (us)"], rows)
    print(f"measured miss ratio: {result.measured_miss_ratio:.4f}")
    if result.server_utilizations:
        print(
            "server utilizations: "
            + ", ".join(f"{u:.1%}" for u in result.server_utilizations)
        )
    if observability is not None and observability.tracer is not None:
        slowest = observability.tracer.slowest(3)
        if slowest:
            worst = ", ".join(f"{to_usec(span.duration):.0f}" for span in slowest)
            print(f"slowest requests (us): {worst}")
    if want_report:
        print(f"report written: {args.report}")
    return 0


# ----------------------------------------------------------------------
# Monitor: sparkline dashboard + SLO evaluation over one run's timeline.
# ----------------------------------------------------------------------

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _sparkline(values: Sequence[float]) -> str:
    """Eight-level terminal sparkline; undefined (NaN) windows show '·'."""
    data = np.asarray(values, dtype=float)
    finite = data[np.isfinite(data)]
    if finite.size == 0:
        return "·" * data.size
    low = float(finite.min())
    span = float(finite.max()) - low
    chars = []
    for value in data:
        if not np.isfinite(value):
            chars.append("·")
        elif span <= 0.0:
            chars.append(_SPARK_LEVELS[3])
        else:
            level = (float(value) - low) / span * (len(_SPARK_LEVELS) - 1)
            chars.append(_SPARK_LEVELS[int(round(level))])
    return "".join(chars)


def _print_dashboard(timeline: Timeline) -> None:
    """The ``repro monitor`` terminal view of one run's windowed series."""
    print(
        f"timeline: {timeline.n_windows} windows x "
        f"{to_msec(timeline.window):.2f} ms, "
        f"{int(round(float(timeline.completions.sum())))} completions"
    )
    series: List[Tuple[str, np.ndarray, str]] = [
        ("arrival rate (Kps)", to_kps(timeline.arrival_rate()), "{:.1f}"),
        ("occupancy (reqs)", timeline.occupancy(), "{:.1f}"),
        ("p50 (us)", to_usec(timeline.quantile_series(0.50)), "{:.0f}"),
        ("p99 (us)", to_usec(timeline.quantile_series(0.99)), "{:.0f}"),
    ]
    for name in timeline.stage_names:
        series.append((f"util {name}", timeline.utilization(name), "{:.2f}"))
    rows = []
    for label, values, fmt in series:
        finite = values[np.isfinite(values)]
        span = (
            f"{fmt.format(float(finite.min()))} .. "
            f"{fmt.format(float(finite.max()))}"
            if finite.size
            else "-"
        )
        rows.append([label, _sparkline(values), span])
    _print_rows(["series", "per-window", "min .. max"], rows)


def _monitor_rules(args: argparse.Namespace, timeline: Timeline) -> List[object]:
    """SLO rules from the ``--slo-*``/``--burn-*`` flags.

    With no flags at all, a default rule alerts when a window's p99
    exceeds 5x the whole-run median — a scale-free "this window is an
    outage relative to this run" detector.
    """
    rules: List[object] = []
    if args.slo_p99 is not None:
        rules.append(
            SLORule(
                name="p99-threshold",
                metric="p99",
                threshold=usec(args.slo_p99),
                min_count=args.min_count,
            )
        )
    if args.slo_util is not None:
        if not timeline.stage_names:
            raise ConfigError(
                "--slo-util needs per-stage telemetry, which this "
                "backend's timeline does not carry"
            )
        for name in timeline.stage_names:
            rules.append(
                SLORule(
                    name=f"util-{name}",
                    metric=f"utilization:{name}",
                    threshold=args.slo_util,
                )
            )
    if args.burn_threshold is not None:
        rules.append(
            BurnRateRule(
                name="burn-rate",
                latency_threshold=usec(args.burn_threshold),
                objective=args.burn_objective,
                factor=args.burn_factor,
                min_count=args.min_count,
            )
        )
    if not rules:
        overall = timeline.overall_latency()
        if not overall.count:
            raise ConfigError("the run completed no requests to monitor")
        rules.append(
            SLORule(
                name="p99-auto",
                metric="p99",
                threshold=5.0 * overall.quantile(0.50),
                min_count=args.min_count,
            )
        )
    return rules


def cmd_monitor(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    backend = "simulate" if args.backend == "engine" else args.backend
    timeline = scenario.timeline(backend, n_windows=args.windows)
    rules = _monitor_rules(args, timeline)
    report = SLOMonitor(rules).evaluate(timeline)
    latency_rules = {
        rule.name
        for rule in rules
        if isinstance(rule, SLORule) and rule.metric in ("p50", "p95", "p99", "mean")
    }
    if args.csv is not None:
        timeline.to_csv(args.csv)
    failed = bool(args.fail_on_alert and report.alerts)
    payload = None
    if args.out is not None or _wants_json(args):
        payload = {
            "kind": "repro-monitor",
            "backend": backend,
            "timeline": timeline.to_dict(),
            "slo": report.to_dict(),
            "verdict": report.verdict(),
            "provenance": provenance(),
        }
    if args.out is not None:
        Path(args.out).write_text(json_dumps(payload))
    if _wants_json(args):
        print(json_dumps(payload))
        return 1 if failed else 0
    _print_dashboard(timeline)
    for name in sorted(report.attainment):
        value = report.attainment[name]
        shown = f"{value:.1%}" if math.isfinite(value) else "-"
        print(f"attainment {name}: {shown}")
    if report.alerts:
        print("alerts:")
        for alert in report.alerts:
            peak = (
                f"{to_usec(alert.peak):.1f}us"
                if alert.rule in latency_rules
                else f"{alert.peak:.3g}"
            )
            print(
                f"  {alert.rule}  {alert.start:.3f}s..{alert.end:.3f}s  "
                f"peak {peak}  ({alert.n_windows} windows)"
            )
    else:
        print("alerts: none")
    law = report.littles_law
    max_err = float(law["max_relative_error"])
    if math.isfinite(max_err):
        print(
            f"littles law: max rel err {max_err:.2%} "
            f"over {law['n_valid']} windows"
        )
    else:
        print("littles law: too few samples per window to check")
    if args.csv is not None:
        print(f"csv written: {args.csv}")
    if args.out is not None:
        print(f"monitor report written: {args.out}")
    return 1 if failed else 0


# ----------------------------------------------------------------------
# Capacity: SLO-driven "max RPS" staged bisection + knee curves.
# ----------------------------------------------------------------------


def _capacity_objective(args: argparse.Namespace) -> CapacityObjective:
    """One :class:`CapacityObjective` from the ``--slo-*``/``--burn-*``
    flags. At most one objective flag may be given; with none, the
    default is ``p99 <= 20 ms`` (the baseline knee the README documents).
    """
    given = [
        flag
        for flag, value in (
            ("--slo-p99", args.slo_p99),
            ("--slo-p95", args.slo_p95),
            ("--slo-mean", args.slo_mean),
            ("--burn-threshold", args.burn_threshold),
            ("--slo-util", args.slo_util),
        )
        if value is not None
    ]
    if len(given) > 1:
        raise ConfigError(f"capacity takes exactly one objective, got {given}")
    common = {"confidence": args.confidence, "min_count": args.min_count}
    if args.slo_p95 is not None:
        return CapacityObjective(usec(args.slo_p95), metric="p95", **common)
    if args.slo_mean is not None:
        return CapacityObjective(usec(args.slo_mean), metric="mean", **common)
    if args.burn_threshold is not None:
        return CapacityObjective(
            args.burn_factor,
            metric="burn_rate",
            latency_threshold=usec(args.burn_threshold),
            objective=args.burn_objective,
            **common,
        )
    if args.slo_util is not None:
        stage, sep, rho = args.slo_util.partition("=")
        threshold = math.nan
        if sep and stage:
            try:
                threshold = float(rho)
            except ValueError:
                pass
        if not math.isfinite(threshold):
            raise ConfigError(
                f"bad --slo-util spec {args.slo_util!r} "
                "(expected STAGE=RHO, e.g. server-0=0.7)"
            )
        return CapacityObjective(
            threshold, metric=f"utilization:{stage}", **common
        )
    p99 = args.slo_p99 if args.slo_p99 is not None else 20_000.0
    return CapacityObjective(usec(p99), metric="p99", **common)


def _objective_value(objective: CapacityObjective, value: float) -> str:
    """Format an objective reading in its natural units."""
    if objective.is_latency:
        return f"{to_usec(value):.1f}"
    return f"{value:.3f}"


def _capacity_sweep(
    args: argparse.Namespace,
    scenario: Scenario,
    objective: CapacityObjective,
    backend: str,
) -> int:
    """``repro capacity --sweep NAME=SPEC``: the knee curve mode."""
    factor, values = _parse_factor_spec(args.sweep)
    curve = capacity_curve(
        scenario,
        objective,
        factor,
        values,
        backend=backend,
        method=args.method,
        rel_tol=args.rel_tol,
        max_probes=args.max_probes,
        n_requests=args.requests,
        max_requests=args.max_requests,
        windows=args.windows,
        spot_check=args.spot_check,
        spot_replicates=args.spot_replicates,
        workers=args.parallel,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
        on_progress=_progress_printer if args.progress else None,
    )
    if args.out is not None:
        curve.save(args.out)
    if args.csv is not None:
        Path(args.csv).write_text(curve.to_csv())
    if _wants_json(args):
        print(json_dumps(curve.to_dict()))
        return 0
    print(f"objective: {objective.describe()}  backend: {backend}")
    # The grid keys coordinates by the factor's *label* (e.g. "mu" ->
    # "mu_kps"), which may differ from the sweep spec's name.
    label = next(
        key for key in curve.suite.cells[0].coords if key != "replicate"
    )
    rows = []
    for cell in curve.suite.cells:
        if cell.error is not None:
            rows.append(
                [f"{cell.coords[label]:.4g}", "-", "-", "-", cell.error]
            )
            continue
        rows.append(
            [
                f"{cell.coords[label]:.4g}",
                f"{cell.metrics['max_rps']:.1f}",
                f"{cell.metrics['cliff_rps']:.1f}",
                "yes" if cell.metrics["below_cliff"] else "no",
                f"{int(cell.metrics['n_probes'])}",
            ]
        )
    _print_rows(
        [label, "max rps", "cliff rps", "below cliff", "probes"], rows
    )
    print(
        f"{curve.suite.n_cells} searches: {curve.suite.executed} executed, "
        f"{curve.suite.resumed} resumed, {curve.suite.elapsed:.2f}s"
    )
    if args.out is not None:
        print(f"capacity curve written: {args.out}")
    if args.csv is not None:
        print(f"csv written: {args.csv}")
    return 0


def cmd_capacity(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    backend = "simulate" if args.backend == "engine" else args.backend
    objective = _capacity_objective(args)
    if args.sweep is not None:
        return _capacity_sweep(args, scenario, objective, backend)
    result = find_capacity(
        scenario,
        objective,
        backend=backend,
        method=args.method,
        rel_tol=args.rel_tol,
        max_probes=args.max_probes,
        n_requests=args.requests,
        max_requests=args.max_requests,
        windows=args.windows,
        spot_check=args.spot_check,
        spot_replicates=args.spot_replicates,
    )
    if args.out is not None:
        result.save(args.out)
    if args.csv is not None:
        Path(args.csv).write_text(result.to_csv())
    if _wants_json(args):
        print(json_dumps(result.to_dict()))
        return 0
    bracket = result.bracket
    unit = " (us)" if objective.is_latency else ""
    print(
        f"objective: {objective.describe()}  backend: {result.backend}  "
        f"method: {result.method}"
    )
    print(
        f"analytic: cliff {bracket.cliff_rps:.1f} rps "
        f"(rho {bracket.cliff_rho:.3f}), stability {bracket.stability_rps:.1f} "
        f"rps ({bracket.binding} binds), bracket "
        f"[{bracket.lo:.1f}, {bracket.hi:.1f}]"
    )
    rows = [
        [
            probe.index,
            f"{probe.rps:.1f}",
            probe.backend,
            probe.n_requests,
            _objective_value(objective, probe.value),
            f"[{_objective_value(objective, probe.ci_low)}, "
            f"{_objective_value(objective, probe.ci_high)}]",
            probe.status + ("" if probe.decisive else "?"),
            probe.escalations,
        ]
        for probe in result.probes
    ]
    _print_rows(
        ["#", "rps", "backend", "requests", f"value{unit}", f"CI{unit}",
         "status", "esc"],
        rows,
    )
    if result.capped:
        print(
            f"max rps at SLO: {result.max_rps:.1f} "
            "(capped: the SLO never binds below the stability limit)"
        )
    elif result.max_rps == 0.0:
        print(
            f"max rps at SLO: 0 (unattainable: even {result.fail_rps:.2f} "
            "rps misses the objective)"
        )
    else:
        print(
            f"max rps at SLO: {result.max_rps:.1f}  "
            f"(first failing {result.fail_rps:.1f}, "
            f"rel_tol {result.rel_tol:.0%})"
        )
    print(f"below analytic cliff: {'yes' if result.below_cliff else 'no'}")
    if result.spot_check is not None:
        spot = result.spot_check
        print(
            f"engine spot-check ({len(spot['probes'])} replicates): "
            f"{_objective_value(objective, spot['value'])}{unit} "
            f"[{_objective_value(objective, spot['ci_low'])}, "
            f"{_objective_value(objective, spot['ci_high'])}] -- "
            + ("agrees" if result.agrees else "DISAGREES")
        )
    if args.out is not None:
        print(f"capacity report written: {args.out}")
    if args.csv is not None:
        print(f"csv written: {args.csv}")
    return 0


def _explain_csv(path: str, attr, tail) -> None:
    """Stage table as CSV with the provenance comment header."""
    import csv

    means = attr.means()
    shares = attr.mean_shares()
    with open(path, "w", newline="") as handle:
        handle.write(provenance_comment() + "\r\n")
        writer = csv.writer(handle)
        writer.writerow(
            ["stage", "mean_seconds", "mean_share", f"tail_share_q{tail.quantile:g}"]
        )
        for stage in STAGES:
            writer.writerow(
                [stage, means[stage], shares[stage], tail.shares[stage]]
            )


def _print_waterfall(record, rank: int) -> None:
    """One slowest-request critical-path bar chart."""
    print(
        f"slowest #{rank}  request {int(record.request_id)}  "
        f"total {to_usec(record.total):.1f}us  (born {record.born:.4f}s)"
    )
    for stage, value in record.waterfall():
        width = int(round(32 * max(value, 0.0) / record.total)) if record.total else 0
        print(
            f"  {stage:<14} {to_usec(value):>9.1f}us  |{'#' * width}"
        )


def cmd_explain(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    backend = "simulate" if args.backend == "engine" else args.backend
    # The analytic reference is part of every explain output and it
    # rejects untenable (unstable fault-free) scenarios — compute it
    # before paying for the simulation so bad configs fail fast.
    reference = scenario.attribution_reference()
    result = scenario.run(backend, attribution=True)
    attr = result.attribution
    if attr is None or attr.count == 0:
        print("no requests completed; nothing to attribute")
        return 1
    tail = attr.tail(args.quantile)
    ref_shares = {
        group: reference[group] / reference["total"] for group in GROUPS
    }
    sim_group_shares = attr.group_shares()

    if args.csv is not None:
        _explain_csv(args.csv, attr, tail)
    payload = None
    if args.out is not None or _wants_json(args):
        payload = {
            "kind": "repro-explain",
            "backend": backend,
            "scenario": scenario.to_dict(),
            "attribution": attr.to_dict(),
            "tail": tail.to_dict(),
            "reference": reference,
            "reference_shares": ref_shares,
            "provenance": provenance(),
        }
    if args.out is not None:
        Path(args.out).write_text(json_dumps(payload))
    if _wants_json(args):
        print(json_dumps(payload))
        return 0

    means = attr.means()
    shares = attr.mean_shares()
    print(
        f"latency provenance — {backend} backend, "
        f"{attr.count} requests attributed"
    )
    print(
        f"mean total {to_usec(attr.mean_total()):.1f}us   "
        f"tail threshold {to_usec(tail.threshold):.1f}us "
        f"(q={tail.quantile:g}, {tail.n_tail} requests)"
    )
    print()
    ranked = sorted(STAGES, key=lambda stage: -abs(shares[stage]))
    _print_rows(
        ["stage", "mean (us)", "mean share", f"q{tail.quantile:g} share"],
        [
            [
                stage,
                f"{to_usec(means[stage]):.2f}",
                f"{shares[stage]:+.1%}",
                f"{tail.shares[stage]:+.1%}",
            ]
            for stage in ranked
        ],
    )
    print()
    print(
        f"dominant tail stage: {tail.dominant} "
        f"({tail.shares[tail.dominant]:.1%} of q{tail.quantile:g} latency)"
    )
    print()
    for rank, record in enumerate(attr.slowest[: args.top], 1):
        _print_waterfall(record, rank)
        print()
    print("group shares vs fault-free analytic reference:")
    _print_rows(
        ["group", "simulated", "analytic", "diff"],
        [
            [
                group,
                f"{sim_group_shares[group]:+.1%}",
                f"{ref_shares[group]:+.1%}",
                f"{(sim_group_shares[group] - ref_shares[group]) * 100:+.1f}pp",
            ]
            for group in GROUPS
        ],
    )
    if args.csv is not None:
        print(f"csv written: {args.csv}")
    if args.out is not None:
        print(f"explain report written: {args.out}")
    return 0


def _backend_options(args: argparse.Namespace) -> dict:
    """Per-backend runner options from CLI flags (one registry scan)."""
    return options_from_args(getattr(args, "backend", "estimate"), args)


def _progress_printer(result, done: int, total: int) -> None:
    """``--progress`` line per completed cell (stderr, parent process)."""
    status = "ok" if result.ok else "FAILED"
    detail = "resumed" if result.resumed else f"{result.elapsed:.2f}s"
    print(f"[{done}/{total}] cell {result.index} {status} ({detail})", file=sys.stderr)


def _execute_suite(args: argparse.Namespace, suite: Suite) -> SuiteResult:
    """Run a suite with the CLI's parallel/checkpoint/resume flags."""
    return run_suite(
        suite,
        workers=getattr(args, "parallel", None),
        checkpoint_dir=getattr(args, "out", None),
        resume=bool(getattr(args, "resume", False)),
        on_progress=(
            _progress_printer if getattr(args, "progress", False) else None
        ),
    )


#: Metrics shown (in us) per backend by ``sweep``/``experiment`` tables.
_DISPLAY_METRICS = {
    "estimate": ("mean", "ci_low", "ci_high"),
    "simulate": ("mean", "p95", "p99"),
    "fastpath": ("mean", "p95", "p99"),
    "fastpath-system": ("mean", "p95", "p99"),
}


def _print_suite(args: argparse.Namespace, result: SuiteResult) -> int:
    """Aggregated suite table (replicate means) + run accounting."""
    if _wants_json(args):
        print(json_dumps(result.to_dict()))
        return 0
    metrics = _DISPLAY_METRICS[result.backend]
    coord_labels = [
        label for label in result.cells[0].coords if label != "replicate"
    ]
    aggregates = {metric: result.aggregate(metric) for metric in metrics}
    rows = [
        [f"{value:.4g}" for value in key]
        + [f"{to_usec(aggregates[metric][key]):.1f}" for metric in metrics]
        for key in aggregates[metrics[0]]
    ]
    _print_rows(coord_labels + [f"{m} (us)" for m in metrics], rows)
    print(
        f"{result.n_cells} cells: {result.executed} executed, "
        f"{result.resumed} resumed, {result.elapsed:.2f}s"
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    factor = get_factor(args.factor)
    values = [float(v) for v in np.linspace(args.start, args.stop, args.points)]
    suite = sweep_suite(
        _scenario_from_args(args),
        args.factor,
        values,
        backend=args.backend,
        seeds=args.seeds,
        **_backend_options(args),
    )
    result = _execute_suite(args, suite)
    if args.backend != "estimate" or args.seeds > 1:
        return _print_suite(args, result)
    # Classic one-factor table: the Theorem 1 bounds the paper plots
    # for this axis (server-stage bounds for server factors, the
    # eq. (23) point estimate for the database factor).
    lower_key, upper_key = factor.sweep_metrics
    lower = result.series(lower_key)
    upper = result.series(upper_key)
    if _wants_json(args):
        print(
            json_dumps(
                {
                    "kind": "repro-sweep",
                    "parameter": factor.label,
                    "values": values,
                    "lower": lower,
                    "upper": upper,
                }
            )
        )
        return 0
    rows = [
        [f"{value:.4g}", f"{to_usec(lo):.1f}", f"{to_usec(up):.1f}"]
        for value, lo, up in zip(values, lower, upper)
    ]
    _print_rows([factor.label, "lower (us)", "upper (us)"], rows)
    return 0


def _parse_factor_spec(spec: str) -> Tuple[str, List[float]]:
    """``NAME=START:STOP:POINTS`` or ``NAME=v1,v2,...`` -> (name, values)."""
    name, sep, rhs = spec.partition("=")
    name = name.strip()
    if not sep or not name or not rhs:
        raise ReproError(
            f"bad factor spec {spec!r} "
            "(expected NAME=START:STOP:POINTS or NAME=v1,v2,...)"
        )
    try:
        if ":" in rhs:
            start_s, stop_s, points_s = rhs.split(":")
            points = int(points_s)
            if points < 1:
                raise ReproError(f"factor {name!r} needs >= 1 points")
            values = [
                float(v) for v in np.linspace(float(start_s), float(stop_s), points)
            ]
        else:
            values = [float(v) for v in rhs.split(",")]
    except ValueError as exc:
        raise ReproError(f"bad factor spec {spec!r}: {exc}") from exc
    return name, values


def cmd_experiment(args: argparse.Namespace) -> int:
    axes = dict(_parse_factor_spec(spec) for spec in args.factor)
    grid = Grid(_scenario_from_args(args), axes, seeds=args.seeds)
    suite = Suite(
        args.name, grid, backend=args.backend, options=_backend_options(args)
    )
    return _print_suite(args, _execute_suite(args, suite))


def cmd_cliff_table(args: argparse.Namespace) -> int:
    xis = [round(0.05 * i, 2) for i in range(20)]
    ours = cliff_table(xis, method=args.method)
    rows = [
        [f"{xi:.2f}", f"{ours[xi]:.0%}", f"{PAPER_TABLE_4[xi]:.0%}"]
        for xi in xis
    ]
    _print_rows(["xi", "ours", "paper"], rows)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .core import validate_configuration

    scenario = _scenario_from_args(args)
    report = validate_configuration(
        scenario.latency_model(),
        n_keys=scenario.n_keys,
        n_requests=scenario.n_requests,
        pool_size=args.pool_size,
        seed=scenario.seed,
    )
    if _wants_json(args):
        print(
            json_dumps(
                {
                    "kind": "repro-validate",
                    "n_keys": report.n_keys,
                    "n_requests": report.n_requests,
                    "all_consistent": report.all_consistent,
                    "stages": report.stages,
                }
            )
        )
        return 0 if report.all_consistent else 1
    rows = []
    for stage in report.stages:
        if stage.theory_lower == stage.theory_upper:
            theory = f"{to_usec(stage.theory_lower):.1f}"
        else:
            theory = (
                f"{to_usec(stage.theory_lower):.1f}.."
                f"{to_usec(stage.theory_upper):.1f}"
            )
        rows.append(
            [
                stage.stage,
                theory,
                f"{to_usec(stage.simulated):.1f}",
                "ok" if stage.consistent else "INCONSISTENT",
            ]
        )
    _print_rows(["stage", "theory (us)", "simulated (us)", "verdict"], rows)
    if not report.all_consistent:
        print(
            "warning: simulation outside the documented Theorem 1 slack "
            "(see EXPERIMENTS.md)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_config_template(args: argparse.Namespace) -> int:
    from .config import ExperimentConfig

    print(ExperimentConfig.paper_section_5_1().to_json())
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    from .workloads import KeyTrace

    trace = KeyTrace.load_csv(args.trace)
    fit = trace.fit_workload(window=usec(args.window))
    print(f"trace      : {trace.n_keys} keys over {trace.duration:.3f}s")
    print(f"key rate   : {fit.rate / 1e3:.2f} Kps")
    print(f"burst xi   : {fit.xi:.3f}")
    print(f"concurrency: {fit.q:.3f}")
    if args.service_rate is not None:
        workload = WorkloadPattern(rate=fit.rate, xi=fit.xi, q=fit.q)
        stage = ServerStage(workload, kps(args.service_rate))
        bounds = stage.mean_latency_bounds(args.n_keys)
        print(
            f"E[TS({args.n_keys})] at muS = {args.service_rate} Kps: "
            f"[{to_usec(bounds.lower):.1f}, {to_usec(bounds.upper):.1f}] us "
            f"(utilization {stage.utilization:.1%})"
        )
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    model = scenario.tail_model()
    database = (
        DatabaseStage(scenario.database_rate, scenario.miss_ratio)
        if scenario.miss_ratio > 0
        else None
    )
    rows = []
    for level in (0.5, 0.9, 0.95, 0.99, 0.999):
        bounds = model.request_quantile_bounds(level, scenario.n_keys)
        rows.append(
            [
                f"p{level * 100:g}",
                f"{to_usec(bounds.lower):.1f}",
                f"{to_usec(bounds.upper):.1f}",
            ]
        )
    _print_rows(["percentile", "lower (us)", "upper (us)"], rows)
    if database is not None:
        exact = model.database_mean_exact(scenario.n_keys)
        print(f"exact E[TD(N)] (vs eq. 23): {to_usec(exact):.1f} us")
    return 0


def cmd_miss_curve(args: argparse.Namespace) -> int:
    from .distributions import Zipf
    from .memcached import miss_ratio_curve

    popularity = Zipf(args.items, args.zipf_s)
    capacities = np.unique(
        np.logspace(
            np.log10(max(args.items * 0.001, 1.0)),
            np.log10(args.items * 0.9),
            args.points,
        ).astype(int)
    )
    curve = miss_ratio_curve(popularity.probabilities, capacities)
    rows = [
        [int(c), f"{r:.4f}", f"{to_usec(DatabaseStage(1.0 / usec(args.db_latency), max(r, 1e-12)).mean_latency(args.n_keys)):.1f}"]
        for c, r in zip(capacities, curve)
    ]
    _print_rows(["capacity (items)", "miss ratio r", "E[TD(N)] (us)"], rows)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    report = RunReport.load(args.path)
    if _wants_json(args):
        print(report.to_json())
        return 0
    if report.config:
        print("config:")
        for key in sorted(report.config):
            print(f"  {key}: {report.config[key]}")
    rows = []
    for stage, count, mean, p50, p95, p99 in report.stage_rows():
        rows.append(
            [
                stage,
                count,
                f"{to_usec(mean):.1f}",
                f"{to_usec(p50):.1f}" if p50 is not None else "-",
                f"{to_usec(p95):.1f}" if p95 is not None else "-",
                f"{to_usec(p99):.1f}" if p99 is not None else "-",
            ]
        )
    if rows:
        _print_rows(
            ["stage", "count", "mean (us)", "p50 (us)", "p95 (us)", "p99 (us)"],
            rows,
        )
    for key in ("requests_completed", "keys_processed", "measured_miss_ratio"):
        if key in report.meta:
            print(f"{key}: {report.meta[key]}")
    if report.timeline is not None:
        timeline = Timeline.from_dict(report.timeline)
        print(
            f"timeline: {timeline.n_windows} windows x "
            f"{to_msec(timeline.window):.2f} ms"
        )
        print(
            f"  p99 (us)     {_sparkline(to_usec(timeline.quantile_series(0.99)))}"
        )
        print(f"  arrival rate {_sparkline(timeline.arrival_rate())}")
        law = timeline.littles_law()
        max_err = float(law["max_relative_error"])
        if math.isfinite(max_err):
            print(
                f"  littles law: max rel err {max_err:.2%} "
                f"over {law['n_valid']} windows"
            )
    if report.profile:
        profile = report.profile
        print(
            f"event loop: {profile.get('events')} events, "
            f"{profile.get('wall_seconds', 0.0):.3f}s wall, "
            f"{profile.get('events_per_second', 0.0):,.0f} events/s, "
            f"max pending {profile.get('pending_max')}"
        )
        categories = profile.get("categories") or {}
        for name, stats in list(categories.items())[:5]:
            print(
                f"  {name}: {stats['count']} calls, "
                f"{stats['wall_seconds'] * 1e3:.1f} ms, "
                f"{stats['mean_usec']:.1f} us/call"
            )
    print(f"metrics: {len(report.metrics)}  slow traces: {len(report.slowest)}")
    return 0


def _print_span(span: Span, root_start: float, depth: int) -> None:
    indent = "  " * depth
    duration = f"{to_usec(span.duration):.1f}us" if span.finished else "?"
    offset = to_usec(span.start - root_start)
    attrs = ""
    if span.attributes:
        attrs = "  " + " ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
    print(f"{indent}{span.name}  +{offset:.1f}us  {duration}{attrs}")
    for child in span.children:
        _print_span(child, root_start, depth + 1)


def cmd_trace(args: argparse.Namespace) -> int:
    report = RunReport.load(args.path)
    spans = report.slowest_spans()[: args.top]
    if not spans:
        print("report contains no traces (run simulate with --trace)")
        return 1
    if _wants_json(args):
        print(json_dumps([span.to_dict() for span in spans]))
        return 0
    for rank, span in enumerate(spans, 1):
        print(
            f"#{rank}  {span.name}  {to_usec(span.duration):.1f}us  "
            + " ".join(
                f"{key}={value}" for key, value in sorted(span.attributes.items())
            )
        )
        for child in span.children:
            _print_span(child, span.start, 1)
        print()
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    if args.hottest_share is not None:
        cluster = ClusterModel.hot_cold(
            scenario.n_servers,
            scenario.service_rate,
            hottest_share=args.hottest_share,
        )
    else:
        cluster = scenario.cluster()
    database = DatabaseStage(scenario.database_rate, scenario.miss_ratio)
    report = advise(
        workload=scenario.workload(),
        cluster=cluster,
        total_key_rate=kps(args.total_rate),
        n_keys=scenario.n_keys,
        database=database,
    )
    print(report)
    return 0


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memcached latency model (ICDCS 2017 reproduction)",
    )
    parser.add_argument(
        "--json",
        dest="json_global",
        action="store_true",
        help="emit machine-readable JSON (estimate/simulate/validate/sweep)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_est = sub.add_parser("estimate", help="Theorem 1 latency bounds")
    _add_workload_args(p_est)
    _add_json_flag(p_est)
    p_est.add_argument(
        "--config", default=None,
        help="JSON experiment config (overrides the flag-based workload)",
    )
    p_est.set_defaults(func=cmd_estimate)

    p_cfg = sub.add_parser(
        "config-template", help="print the §5.1 config as JSON"
    )
    p_cfg.set_defaults(func=cmd_config_template)

    p_sim = sub.add_parser("simulate", help="closed-loop system simulation")
    _add_workload_args(p_sim)
    _add_fault_policy_args(p_sim)
    _add_json_flag(p_sim)
    p_sim.add_argument(
        "--backend",
        choices=["engine", "fastpath", "fastpath-system"],
        default="engine",
        help=(
            "event engine (default; supports tracing/reports), the "
            "per-key Lindley fast path, or the vectorized whole-system "
            "fast path"
        ),
    )
    p_sim.add_argument(
        "--pool-size",
        type=int,
        default=None,
        help="fastpath backend: per-server latency pool size",
    )
    p_sim.add_argument("--servers", type=int, default=4)
    p_sim.add_argument("--requests", type=int, default=2000)
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument(
        "--trace",
        action="store_true",
        help="collect per-request span trees (slowest kept, see --slowest)",
    )
    p_sim.add_argument(
        "--profile",
        action="store_true",
        help="profile the event loop (wall time per callback category)",
    )
    p_sim.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write a JSON run report (enables metrics + profiling)",
    )
    p_sim.add_argument(
        "--slowest",
        type=int,
        default=10,
        help="how many slowest-request traces to retain (default 10)",
    )
    _add_timeline_args(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_mon = sub.add_parser(
        "monitor", help="windowed telemetry + SLO dashboard for one run"
    )
    _add_workload_args(p_mon)
    _add_fault_policy_args(p_mon)
    _add_json_flag(p_mon)
    p_mon.add_argument(
        "--backend",
        choices=["engine", "fastpath-system"],
        default="engine",
        help="which simulation backend records the timeline",
    )
    p_mon.add_argument("--servers", type=int, default=4)
    p_mon.add_argument("--requests", type=int, default=4000)
    p_mon.add_argument("--seed", type=int, default=1)
    p_mon.add_argument(
        "--windows",
        type=int,
        default=48,
        help="windows the run is sliced into (default 48)",
    )
    p_mon.add_argument(
        "--slo-p99",
        type=float,
        default=None,
        metavar="US",
        help="alert when a window's p99 exceeds this latency in us "
        "(default: 5x the whole-run median, if no other rule is given)",
    )
    p_mon.add_argument(
        "--slo-util",
        type=float,
        default=None,
        metavar="RHO",
        help="alert when any stage's utilization exceeds this fraction",
    )
    p_mon.add_argument(
        "--burn-threshold",
        type=float,
        default=None,
        metavar="US",
        help="error-budget rule: a request is 'bad' above this latency (us)",
    )
    p_mon.add_argument(
        "--burn-objective",
        type=float,
        default=0.99,
        help="fraction of requests that must meet --burn-threshold",
    )
    p_mon.add_argument(
        "--burn-factor",
        type=float,
        default=1.0,
        help="burn-rate multiple that fires the alert (default 1.0)",
    )
    p_mon.add_argument(
        "--min-count",
        type=int,
        default=5,
        help="latency rules skip windows with fewer completions (default 5)",
    )
    p_mon.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the monitor report (timeline + SLO evaluation) as JSON",
    )
    p_mon.add_argument(
        "--csv",
        default=None,
        metavar="PATH",
        help="export the per-window series as CSV",
    )
    p_mon.add_argument(
        "--fail-on-alert",
        action="store_true",
        help="exit 1 when any SLO alert fires",
    )
    p_mon.set_defaults(func=cmd_monitor)

    p_cap = sub.add_parser(
        "capacity",
        help="max sustainable RPS under an SLO (staged bisection)",
    )
    _add_workload_args(p_cap)
    _add_fault_policy_args(p_cap)
    _add_json_flag(p_cap)
    p_cap.add_argument(
        "--backend",
        choices=["engine", "fastpath", "fastpath-system"],
        default="fastpath-system",
        help="backend the bisection probes (default: fastpath-system)",
    )
    p_cap.add_argument("--servers", type=int, default=4)
    p_cap.add_argument("--seed", type=int, default=1)
    p_cap.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="starting request budget per probe (default: 2000; "
        "indeterminate probes double it)",
    )
    p_cap.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="escalation ceiling per probe (default: 8x the base budget)",
    )
    p_cap.add_argument(
        "--windows",
        type=int,
        default=24,
        help="timeline windows per probe (batch-means CI input, default 24)",
    )
    p_cap.add_argument(
        "--rel-tol",
        type=float,
        default=0.02,
        help="stop when the pass/fail bracket is this tight (default 0.02)",
    )
    p_cap.add_argument(
        "--max-probes",
        type=int,
        default=32,
        help="total probe budget (default 32)",
    )
    p_cap.add_argument(
        "--method",
        default="relative-slope",
        choices=["relative-slope", "iso-delta", "absolute-slope"],
        help="Proposition 2 cliff detector anchoring the bracket",
    )
    p_cap.add_argument(
        "--slo-p99",
        type=float,
        default=None,
        metavar="US",
        help="objective: p99 latency bound in us (default 20000 when no "
        "other objective flag is given)",
    )
    p_cap.add_argument(
        "--slo-p95",
        type=float,
        default=None,
        metavar="US",
        help="objective: p95 latency bound in us",
    )
    p_cap.add_argument(
        "--slo-mean",
        type=float,
        default=None,
        metavar="US",
        help="objective: mean latency bound in us",
    )
    p_cap.add_argument(
        "--slo-util",
        default=None,
        metavar="STAGE=RHO",
        help="objective: a stage's busy fraction bound (e.g. server-0=0.7)",
    )
    p_cap.add_argument(
        "--burn-threshold",
        type=float,
        default=None,
        metavar="US",
        help="objective: error-budget burn rate; a request is 'bad' above "
        "this latency (us)",
    )
    p_cap.add_argument(
        "--burn-objective",
        type=float,
        default=0.99,
        help="fraction of requests that must meet --burn-threshold",
    )
    p_cap.add_argument(
        "--burn-factor",
        type=float,
        default=1.0,
        help="burn-rate multiple the search holds the system under",
    )
    p_cap.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="probe confidence level (default 0.95)",
    )
    p_cap.add_argument(
        "--min-count",
        type=int,
        default=5,
        help="windows with fewer completions are excluded (default 5)",
    )
    p_cap.add_argument(
        "--spot-check",
        action="store_true",
        help="replicate the found knee on the event engine and test "
        "backend agreement",
    )
    p_cap.add_argument(
        "--spot-replicates",
        type=int,
        default=3,
        help="independent engine runs pooled by the spot-check (default 3)",
    )
    p_cap.add_argument(
        "--sweep",
        default=None,
        metavar="NAME=START:STOP:POINTS",
        help="knee-curve mode: one capacity search per factor value "
        "(NAME=v1,v2,... also accepted)",
    )
    p_cap.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --sweep (results identical for any N)",
    )
    p_cap.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="--sweep checkpoint directory (one JSON per search)",
    )
    p_cap.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed --sweep searches from --checkpoint",
    )
    p_cap.add_argument(
        "--progress",
        action="store_true",
        help="print one progress line per completed search to stderr",
    )
    p_cap.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the capacity result (or curve) as JSON",
    )
    p_cap.add_argument(
        "--csv",
        default=None,
        metavar="PATH",
        help="export the probe trace (or knee curve) as CSV",
    )
    p_cap.set_defaults(func=cmd_capacity)

    p_expl = sub.add_parser(
        "explain",
        help="per-request latency provenance: stage shares + root cause",
    )
    _add_workload_args(p_expl)
    _add_fault_policy_args(p_expl)
    _add_json_flag(p_expl)
    p_expl.add_argument(
        "--backend",
        choices=["engine", "fastpath-system"],
        default="engine",
        help="which simulation backend records the attribution",
    )
    p_expl.add_argument("--servers", type=int, default=4)
    p_expl.add_argument("--requests", type=int, default=2000)
    p_expl.add_argument("--seed", type=int, default=1)
    p_expl.add_argument(
        "--quantile",
        type=float,
        default=0.99,
        help="tail quantile the stage shares are conditioned on (default 0.99)",
    )
    p_expl.add_argument(
        "--top",
        type=int,
        default=3,
        help="slowest-request waterfalls to print (default 3)",
    )
    p_expl.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the explain report (attribution + reference) as JSON",
    )
    p_expl.add_argument(
        "--csv",
        default=None,
        metavar="PATH",
        help="export the ranked stage table as CSV",
    )
    p_expl.set_defaults(func=cmd_explain)

    p_sweep = sub.add_parser(
        "sweep", help="one-factor sweeps (factor registry + runner)"
    )
    _add_workload_args(p_sweep)
    _add_fault_policy_args(p_sweep)
    _add_json_flag(p_sweep)
    p_sweep.add_argument("factor", choices=list(factor_names()))
    p_sweep.add_argument("--start", type=float, required=True)
    p_sweep.add_argument("--stop", type=float, required=True)
    p_sweep.add_argument("--points", type=int, default=11)
    _add_runner_args(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_exp = sub.add_parser(
        "experiment", help="multi-factor experiment grids (parallel runner)"
    )
    _add_workload_args(p_exp)
    _add_fault_policy_args(p_exp)
    _add_json_flag(p_exp)
    p_exp.add_argument(
        "--factor",
        action="append",
        required=True,
        metavar="NAME=START:STOP:POINTS",
        help="sweep axis (repeatable); NAME=v1,v2,... also accepted",
    )
    p_exp.add_argument("--name", default="experiment", help="suite name")
    _add_runner_args(p_exp)
    p_exp.set_defaults(func=cmd_experiment)

    p_cliff = sub.add_parser("cliff-table", help="reproduce Table 4")
    p_cliff.add_argument(
        "--method",
        default="relative-slope",
        choices=["relative-slope", "iso-delta", "absolute-slope"],
    )
    p_cliff.set_defaults(func=cmd_cliff_table)

    p_val = sub.add_parser("validate", help="theory vs fast-path simulation")
    _add_workload_args(p_val)
    _add_json_flag(p_val)
    p_val.add_argument("--requests", type=int, default=20000)
    p_val.add_argument("--pool-size", type=int, default=500_000)
    p_val.add_argument("--seed", type=int, default=1)
    p_val.set_defaults(func=cmd_validate)

    p_rep = sub.add_parser("report", help="inspect a saved run report")
    p_rep.add_argument("path", help="JSON file written by simulate --report")
    _add_json_flag(p_rep)
    p_rep.set_defaults(func=cmd_report)

    p_trc = sub.add_parser(
        "trace", help="print slowest-request span trees from a run report"
    )
    p_trc.add_argument("path", help="JSON file written by simulate --report")
    p_trc.add_argument(
        "--top", type=int, default=10, help="how many traces to print"
    )
    _add_json_flag(p_trc)
    p_trc.set_defaults(func=cmd_trace)

    p_fit = sub.add_parser("fit", help="fit (lambda, xi, q) from a trace CSV")
    p_fit.add_argument("trace", help="CSV written by KeyTrace.save_csv")
    p_fit.add_argument(
        "--window", type=float, default=1.0, help="concurrency window in us"
    )
    p_fit.add_argument(
        "--service-rate", type=float, default=None,
        help="optional muS (Kps) to also print Theorem 1 bounds",
    )
    p_fit.add_argument("--n-keys", type=int, default=150)
    p_fit.set_defaults(func=cmd_fit)

    p_tail = sub.add_parser("tail", help="request latency percentiles")
    _add_workload_args(p_tail)
    p_tail.set_defaults(func=cmd_tail)

    p_curve = sub.add_parser(
        "miss-curve", help="LRU miss-ratio curve (Che approximation)"
    )
    p_curve.add_argument("--items", type=int, default=100_000)
    p_curve.add_argument("--zipf-s", type=float, default=0.9)
    p_curve.add_argument("--points", type=int, default=10)
    p_curve.add_argument("--n-keys", type=int, default=150)
    p_curve.add_argument("--db-latency", type=float, default=1000.0)
    p_curve.set_defaults(func=cmd_miss_curve)

    p_rec = sub.add_parser("recommend", help="configuration advisor (§5.3)")
    _add_workload_args(p_rec)
    p_rec.add_argument("--servers", type=int, default=4)
    p_rec.add_argument(
        "--total-rate", type=float, default=250.0, help="total key rate in Kps"
    )
    p_rec.add_argument(
        "--hottest-share", type=float, default=None, help="p1 for hot/cold clusters"
    )
    p_rec.set_defaults(func=cmd_recommend)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
