"""The paper's primary contribution: the Memcached latency model.

Build a :class:`LatencyModel` from a :class:`WorkloadPattern`, a
:class:`ClusterModel`, and optional network/database stages, then call
``estimate(N)`` for Theorem 1's bounds on the end-user request latency.
"""

from .analysis import (
    SweepResult,
    concurrency_scaling_check,
    database_regime_boundary,
    fit_linear_slope,
    fit_log_slope,
    goodness_of_linear_fit,
    marginal_benefit_fewer_keys,
    marginal_benefit_lower_miss_ratio,
    sweep_database_stage,
    sweep_server_stage,
)
from .cluster import ClusterModel, HeterogeneousCluster
from .latency import LatencyEstimate, LatencyModel
from .recommendations import AdvisorReport, Recommendation, Severity, advise
from .redundancy import (
    RedundancyEstimate,
    RedundancyModel,
    redundancy_crossover,
    redundancy_speedup,
)
from .tail import QuantileBounds, TailLatencyModel
from .validation import (
    StageComparison,
    ValidationReport,
    validate_configuration,
)
from .stages import (
    DatabaseStage,
    NetworkStage,
    ServerStage,
    ServerStageEstimate,
)
from .workload import (
    FACEBOOK_BURST,
    FACEBOOK_CONCURRENCY,
    FACEBOOK_KEY_RATE,
    FACEBOOK_TRACE_CONCURRENCY,
    WorkloadPattern,
)

__all__ = [
    "AdvisorReport",
    "ClusterModel",
    "DatabaseStage",
    "FACEBOOK_BURST",
    "FACEBOOK_CONCURRENCY",
    "FACEBOOK_KEY_RATE",
    "FACEBOOK_TRACE_CONCURRENCY",
    "HeterogeneousCluster",
    "LatencyEstimate",
    "LatencyModel",
    "NetworkStage",
    "QuantileBounds",
    "Recommendation",
    "RedundancyEstimate",
    "RedundancyModel",
    "TailLatencyModel",
    "redundancy_crossover",
    "redundancy_speedup",
    "ServerStage",
    "ServerStageEstimate",
    "Severity",
    "StageComparison",
    "ValidationReport",
    "SweepResult",
    "WorkloadPattern",
    "advise",
    "concurrency_scaling_check",
    "database_regime_boundary",
    "fit_linear_slope",
    "fit_log_slope",
    "goodness_of_linear_fit",
    "marginal_benefit_fewer_keys",
    "marginal_benefit_lower_miss_ratio",
    "sweep_database_stage",
    "sweep_server_stage",
    "validate_configuration",
]
