"""Redundant requests: "low latency via redundancy" as a model extension.

The paper cites Vulimiri et al. [12] and C3 [13] — send each key to
``d`` replicas, use the fastest answer — as latency optimizations its
model does not cover. This extension covers them:

* the per-key latency becomes the **min** of ``d`` (approximately
  independent) copies, so its completion-time tail shrinks by ``d``;
* but every server's load inflates by ``d``, moving ``delta`` up.

The classic trade-off falls out: redundancy wins at low utilization and
loses catastrophically near saturation; :func:`redundancy_crossover`
finds the break-even utilization for a workload.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from ..errors import StabilityError, ValidationError
from ..queueing import GIXM1Queue
from .workload import WorkloadPattern


@dataclasses.dataclass(frozen=True)
class RedundancyEstimate:
    """Request-level server-stage estimate under d-way replication."""

    replication: int
    utilization: float
    delta: float
    mean_upper: float
    """Quantile-rule estimate of E[TS(N)] (upper-bound style, eq. 14)."""


class RedundancyModel:
    """GI^X/M/1 latency under d-way replicated reads.

    Parameters
    ----------
    workload:
        The *unreplicated* per-server workload.
    service_rate:
        Per-key service rate ``muS``.
    replication:
        Copies per key, ``d >= 1``; ``d = 1`` reduces to the base model.
    """

    def __init__(
        self,
        workload: WorkloadPattern,
        service_rate: float,
        replication: int = 1,
    ) -> None:
        if int(replication) != replication or replication < 1:
            raise ValidationError(
                f"replication must be a positive integer, got {replication}"
            )
        self._d = int(replication)
        self._base_workload = workload
        inflated = workload.scaled(float(self._d))
        if inflated.rate >= service_rate:
            raise StabilityError(inflated.rate / service_rate)
        self._queue = GIXM1Queue(
            inflated.batch_gap_distribution(), inflated.q, service_rate
        )

    @property
    def replication(self) -> int:
        return self._d

    @property
    def queue(self) -> GIXM1Queue:
        """The inflated per-server queue."""
        return self._queue

    @property
    def utilization(self) -> float:
        return self._queue.utilization

    def per_key_completion_rate(self) -> float:
        """Tail rate of the fastest copy's completion time.

        Each copy's completion time is ``Exp(decay)`` (eq. (5)); the min
        of ``d`` independent copies is ``Exp(d * decay)``.
        """
        return self._d * self._queue.decay_rate

    def mean_key_latency(self) -> float:
        """Mean of the fastest copy: ``1 / (d * decay)``."""
        return 1.0 / self.per_key_completion_rate()

    def request_mean_upper(self, n_keys: float) -> float:
        """Quantile-rule E[TS(N)]: ``ln(N+1) / (d * decay)``."""
        if n_keys <= 0:
            raise ValidationError(f"n_keys must be > 0, got {n_keys}")
        return math.log(float(n_keys) + 1.0) / self.per_key_completion_rate()

    def estimate(self, n_keys: float) -> RedundancyEstimate:
        return RedundancyEstimate(
            replication=self._d,
            utilization=self.utilization,
            delta=self._queue.delta,
            mean_upper=self.request_mean_upper(n_keys),
        )


def redundancy_speedup(
    workload: WorkloadPattern,
    service_rate: float,
    n_keys: float,
    replication: int = 2,
) -> Optional[float]:
    """Latency ratio (base / replicated) for d-way reads.

    > 1 means redundancy helps. Returns ``None`` when the replicated
    system would be unstable (the inflated load saturates the servers).
    """
    base = RedundancyModel(workload, service_rate, 1)
    try:
        repl = RedundancyModel(workload, service_rate, replication)
    except StabilityError:
        return None
    return base.request_mean_upper(n_keys) / repl.request_mean_upper(n_keys)


def redundancy_crossover(
    workload: WorkloadPattern,
    service_rate: float,
    n_keys: float,
    replication: int = 2,
    *,
    tolerance: float = 1e-3,
) -> float:
    """Utilization above which d-way redundancy stops helping.

    Bisects the base utilization (by scaling the workload rate) for the
    point where the speedup crosses 1. Below the returned utilization
    replicated reads are faster; above, slower (or unstable).
    """
    if int(replication) != replication or replication < 2:
        raise ValidationError("replication must be an integer >= 2")

    def speedup_at(rho: float) -> Optional[float]:
        scaled = workload.with_rate(rho * service_rate)
        return redundancy_speedup(scaled, service_rate, n_keys, replication)

    lo, hi = 1e-3, (1.0 - 1e-6) / replication
    lo_speedup = speedup_at(lo)
    if lo_speedup is None or lo_speedup <= 1.0:
        raise ValidationError(
            "redundancy does not help even at negligible load; "
            "no crossover exists"
        )
    hi_speedup = speedup_at(hi)
    if hi_speedup is not None and hi_speedup > 1.0:
        # Helps all the way to the stability edge of the replicated system.
        return hi * replication  # base utilization where replicas saturate
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        value = speedup_at(mid)
        if value is not None and value > 1.0:
            lo = mid
        else:
            hi = mid
        if hi - lo < tolerance:
            break
    return 0.5 * (lo + hi)
