"""Programmatic theory-vs-simulation validation (Table 3 as an API).

:func:`validate_configuration` runs the fast-path simulator against a
configuration and scores each Theorem 1 stage: is the simulated mean
inside the theory band (allowing the documented D1/D2 approximation
slack from EXPERIMENTS.md)? The CLI's ``repro validate`` and user
acceptance pipelines share this code path.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional


from ..distributions import make_rng
from ..errors import ValidationError
from ..simulation.fastpath import sample_request_latencies, simulate_key_latencies
from .latency import LatencyModel

#: The quantile rule underestimates E[max of N] by up to H_N - ln(N+1);
#: ~12% at N = 150 plus sampling noise (EXPERIMENTS.md deviation D1).
SERVER_SLACK = 1.35
#: Eq. (23) underestimates the exact database maximum by ~25% at the
#: paper's parameters (deviation D2).
DATABASE_SLACK = 1.6
#: Lower-side slack for both stages (bounds can be loose downward too).
LOWER_SLACK = 0.8


@dataclasses.dataclass(frozen=True)
class StageComparison:
    """One stage's theory-vs-simulation verdict."""

    stage: str
    theory_lower: float
    theory_upper: float
    simulated: float
    consistent: bool

    @property
    def relative_position(self) -> float:
        """Simulated value relative to the theory upper bound."""
        if self.theory_upper == 0.0:
            return 0.0
        return self.simulated / self.theory_upper


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """All stage comparisons for one configuration."""

    n_keys: int
    n_requests: int
    stages: List[StageComparison]

    @property
    def all_consistent(self) -> bool:
        return all(stage.consistent for stage in self.stages)

    def stage(self, name: str) -> StageComparison:
        for comparison in self.stages:
            if comparison.stage == name:
                return comparison
        raise ValidationError(f"unknown stage: {name!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"validation over {self.n_requests} requests, N = {self.n_keys}:"]
        for s in self.stages:
            verdict = "ok" if s.consistent else "INCONSISTENT"
            lines.append(
                f"  {s.stage}: sim {s.simulated * 1e6:.1f}us vs theory "
                f"[{s.theory_lower * 1e6:.1f}, {s.theory_upper * 1e6:.1f}]us "
                f"({verdict})"
            )
        return "\n".join(lines)


def validate_configuration(
    model: LatencyModel,
    *,
    n_keys: int,
    n_requests: int = 20_000,
    pool_size: int = 400_000,
    seed: Optional[int] = None,
) -> ValidationReport:
    """Simulate the configuration and compare with Theorem 1.

    The model's server stage supplies the workload and rates; the
    optional network/database stages are exercised when present. For
    unbalanced clusters the simulation draws every key from the
    *heaviest* server's pool — conservative, and exactly the worst-case
    view Proposition 1 bounds.
    """
    if n_keys < 1:
        raise ValidationError(f"n_keys must be >= 1, got {n_keys}")
    if n_requests < 100:
        raise ValidationError(f"n_requests must be >= 100, got {n_requests}")
    rng = make_rng(seed)
    server_stage = model.server_stage
    workload = server_stage.workload
    pool = simulate_key_latencies(
        workload, server_stage.queue.service_rate, n_keys=pool_size, rng=rng
    )
    database = model.database_stage
    sample = sample_request_latencies(
        [pool],
        [1.0],
        n_keys=n_keys,
        n_requests=n_requests,
        rng=rng,
        network_delay=model.network_stage.delay,
        miss_ratio=database.miss_ratio if database is not None else 0.0,
        database_rate=database.service_rate if database is not None else None,
    )
    estimate = model.estimate(n_keys)

    stages: List[StageComparison] = []
    ts_sim = float(sample.server_max.mean())
    stages.append(
        StageComparison(
            stage="TS(N)",
            theory_lower=estimate.server.lower,
            theory_upper=estimate.server.upper,
            simulated=ts_sim,
            consistent=(
                estimate.server.lower * LOWER_SLACK
                <= ts_sim
                <= estimate.server.upper * SERVER_SLACK
            ),
        )
    )
    if database is not None:
        td_sim = float(sample.database_max.mean())
        stages.append(
            StageComparison(
                stage="TD(N)",
                theory_lower=estimate.database,
                theory_upper=estimate.database,
                simulated=td_sim,
                consistent=(
                    estimate.database * LOWER_SLACK
                    <= td_sim
                    <= estimate.database * DATABASE_SLACK
                ),
            )
        )
    t_sim = float(sample.total.mean())
    stages.append(
        StageComparison(
            stage="T(N)",
            theory_lower=estimate.total_lower,
            theory_upper=estimate.total_upper,
            simulated=t_sim,
            consistent=(
                estimate.total_lower * LOWER_SLACK
                <= t_sim
                <= estimate.total_upper * SERVER_SLACK
            ),
        )
    )
    return ValidationReport(
        n_keys=n_keys, n_requests=n_requests, stages=stages
    )
