"""Tail-latency (percentile) estimation.

Theorem 1 reports expectations; operators buy p99s. This module extends
the model to full distributions:

* the **server stage**: the mixture CDF of eq. (10)/(11) bounded through
  eq. (9) — ``P(TS(N) <= t)`` lies between ``F_TC(t)^(N)``-style and
  ``F_TQ(t)``-style products, giving two-sided quantile bounds at any
  percentile;
* the **database stage**: an *exact* closed form — with Binomial(N, r)
  misses and iid ``Exp`` database sojourns,
  ``P(TD(N) <= t) = (1 - r + r F_D(t))^N`` (binomial thinning);
* the **request**: composition bounds from eq. (1).

The paper's remark that "the expected latency statistically equals the
N/(N+1) percentile of the per-key latency" is the bridge: these CDFs are
what that percentile is taken from.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..distributions import require_probability
from ..errors import ValidationError
from .stages import DatabaseStage, NetworkStage, ServerStage


@dataclasses.dataclass(frozen=True)
class QuantileBounds:
    """Two-sided bounds on a latency quantile (seconds)."""

    level: float
    lower: float
    upper: float

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)


class TailLatencyModel:
    """Percentile-level view of the Memcached latency model."""

    def __init__(
        self,
        server_stage: ServerStage,
        *,
        network_stage: Optional[NetworkStage] = None,
        database_stage: Optional[DatabaseStage] = None,
    ) -> None:
        self._server = server_stage
        self._network = network_stage if network_stage is not None else NetworkStage(0.0)
        self._database = database_stage

    # ------------------------------------------------------------------
    # Server stage.
    # ------------------------------------------------------------------

    def server_cdf_bounds(self, t: float, n_keys: float) -> tuple[float, float]:
        """Bounds on ``P(TS(N) <= t)``.

        Eq. (9) gives ``F_TC(t) <= F_TS(t) <= F_TQ(t)`` per key at the
        heaviest server; Prop. 1 lifts per-key CDFs to the mixture: the
        N-key CDF lies between ``F_TC(t)^(N/p1-ish)`` and ``F_TQ(t)^N``.
        We use the conservative exponents: lower with ``N / p1`` (every
        key as slow as the hottest server's floor share) and upper with
        ``N`` (balanced product).
        """
        if n_keys <= 0:
            raise ValidationError(f"n_keys must be > 0, got {n_keys}")
        queue = self._server.queue
        f_tq = queue.queueing_cdf(t)
        f_tc = queue.completion_cdf(t)
        if self._server.is_balanced:
            exponent_low = float(n_keys)
        else:
            exponent_low = float(n_keys) / self._server.heaviest_share
        lower = f_tc**exponent_low
        upper = f_tq ** float(n_keys)
        return lower, min(upper, 1.0)

    def server_quantile_bounds(self, level: float, n_keys: float) -> QuantileBounds:
        """Bounds on the ``level``-quantile of ``TS(N)``.

        Inverts the CDF bounds in closed form: both the queueing and the
        completion CDFs are (shifted) exponentials.
        """
        require_probability("level", level, closed=False)
        if n_keys <= 0:
            raise ValidationError(f"n_keys must be > 0, got {n_keys}")
        queue = self._server.queue
        # Upper bound on the quantile comes from the *lower* CDF bound.
        if self._server.is_balanced:
            exponent = float(n_keys)
        else:
            exponent = float(n_keys) / self._server.heaviest_share
        k_upper = level ** (1.0 / exponent)
        upper = queue.completion_quantile(k_upper)
        k_lower = level ** (1.0 / float(n_keys))
        lower = queue.queueing_quantile(k_lower)
        return QuantileBounds(level=level, lower=lower, upper=upper)

    # ------------------------------------------------------------------
    # Database stage (exact).
    # ------------------------------------------------------------------

    def database_cdf(self, t: float, n_keys: float) -> float:
        """Exact ``P(TD(N) <= t) = (1 - r + r F_D(t))^N``.

        Each of the N keys independently contributes a database term
        that is 0 with probability ``1 - r`` and ``Exp`` otherwise.
        """
        if self._database is None:
            return 1.0 if t >= 0 else 0.0
        if n_keys <= 0:
            raise ValidationError(f"n_keys must be > 0, got {n_keys}")
        r = self._database.miss_ratio
        if t < 0:
            return 0.0
        f_d = self._database.sojourn_distribution().cdf(t)
        return (1.0 - r + r * f_d) ** float(n_keys)

    def database_quantile(self, level: float, n_keys: float) -> float:
        """Exact ``level``-quantile of ``TD(N)`` (closed form).

        Solving ``(1 - r + r F_D(t))^N = level``: zero when the no-miss
        probability already exceeds the level, else the matching
        exponential quantile.
        """
        require_probability("level", level, closed=False)
        if self._database is None:
            return 0.0
        if n_keys <= 0:
            raise ValidationError(f"n_keys must be > 0, got {n_keys}")
        r = self._database.miss_ratio
        if r == 0.0:
            return 0.0
        root = level ** (1.0 / float(n_keys))
        f_d_needed = (root - (1.0 - r)) / r
        if f_d_needed <= 0.0:
            return 0.0
        if f_d_needed >= 1.0:
            raise ValidationError("quantile level unreachable")  # pragma: no cover
        return self._database.sojourn_distribution().quantile(f_d_needed)

    def database_mean_exact(self, n_keys: float) -> float:
        """Exact ``E[TD(N)]`` by integrating the closed-form CDF.

        The reference value the paper's eq. (23) approximates (our D2
        deviation); integral of ``1 - (1 - r + r F_D(t))^N``.
        """
        if self._database is None:
            return 0.0
        if n_keys <= 0:
            raise ValidationError(f"n_keys must be > 0, got {n_keys}")
        from scipy import integrate

        upper = self.database_quantile(1.0 - 1e-12, n_keys) if self._database.miss_ratio else 0.0
        if upper == 0.0:
            return 0.0
        value, _ = integrate.quad(
            lambda t: 1.0 - self.database_cdf(t, n_keys), 0.0, upper, limit=300
        )
        return float(value)

    # ------------------------------------------------------------------
    # Request level (eq. (1) composition).
    # ------------------------------------------------------------------

    def request_quantile_bounds(
        self, level: float, n_keys: float
    ) -> QuantileBounds:
        """Bounds on the ``level``-quantile of ``T(N)``.

        Lower: ``T(N) >= max{TN, TS(N), TD(N)}``, so its quantile is at
        least each stage's quantile. Upper: ``T(N) <= TN + TS(N) +
        TD(N)`` plus a union bound — splitting the tail mass ``1 -
        level`` between the two random stages.
        """
        require_probability("level", level, closed=False)
        network = self._network.delay
        server = self.server_quantile_bounds(level, n_keys)
        database = self.database_quantile(level, n_keys)
        lower = max(network, server.lower, database)

        tail = 1.0 - level
        split_level = 1.0 - tail / 2.0
        server_hi = self.server_quantile_bounds(split_level, n_keys).upper
        database_hi = self.database_quantile(split_level, n_keys)
        upper = network + server_hi + database_hi
        return QuantileBounds(level=level, lower=lower, upper=upper)

    def p99(self, n_keys: float) -> QuantileBounds:
        """99th percentile of the request latency."""
        return self.request_quantile_bounds(0.99, n_keys)

    def p999(self, n_keys: float) -> QuantileBounds:
        """99.9th percentile — the paper's "bad case" metric (§4.5)."""
        return self.request_quantile_bounds(0.999, n_keys)
