"""Workload patterns (paper §3: the arrival side of the model).

A :class:`WorkloadPattern` bundles the three workload factors the paper
studies — average key rate ``lambda``, burst degree ``xi``, concurrency
probability ``q`` — and materializes the batch-gap distribution ``TX``
the GI^X/M/1 queue needs.

Rate convention (DESIGN.md ambiguity #3): ``rate`` is the *key* arrival
rate ``lambda = E[X]/E[TX]`` of paper Table 1. Batches then arrive at
``(1-q) * lambda`` and the batch gap is ``GPD(rate=(1-q) lambda, xi)``.
This convention reproduces the paper's Table 3 numerically
(bounds [352, 368] microseconds vs the paper's [351, 366]).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..distributions import (
    Distribution,
    GeneralizedPareto,
    Geometric,
    require_positive,
    require_probability,
)
from ..errors import ValidationError
from ..units import kps

#: Facebook workload constants measured in the paper's §5.1.
FACEBOOK_KEY_RATE = kps(62.5)
FACEBOOK_BURST = 0.15
FACEBOOK_CONCURRENCY = 0.1
#: Concurrency probability measured in the Facebook trace itself (§2.1).
FACEBOOK_TRACE_CONCURRENCY = 0.1159


@dataclasses.dataclass(frozen=True)
class WorkloadPattern:
    """Key arrival pattern at one Memcached server.

    Parameters
    ----------
    rate:
        Average key arrival rate ``lambda`` in keys/second.
    xi:
        Burst degree of the Generalized Pareto gap law, in ``[0, 1)``.
        ``xi = 0`` is Poisson.
    q:
        Concurrency probability: batch sizes are ``Geometric(q)``.
    gap_override:
        Optional explicit batch-gap distribution. When provided it is
        used verbatim (its rate must equal ``(1-q) * rate``); the default
        is the paper's GPD.
    """

    rate: float
    xi: float = 0.0
    q: float = 0.0
    gap_override: Optional[Distribution] = None

    def __post_init__(self) -> None:
        require_positive("rate", self.rate)
        if not 0.0 <= self.xi < 1.0:
            raise ValidationError(f"xi must be in [0, 1), got {self.xi}")
        require_probability("q", self.q)
        if self.q >= 1.0:
            raise ValidationError("q must be < 1")
        if self.gap_override is not None:
            expected = self.batch_rate
            actual = self.gap_override.rate
            if abs(actual - expected) > 1e-6 * expected:
                raise ValidationError(
                    f"gap_override rate {actual} does not match the batch "
                    f"rate (1-q)*rate = {expected}"
                )

    @classmethod
    def facebook(
        cls,
        rate: float = FACEBOOK_KEY_RATE,
        xi: float = FACEBOOK_BURST,
        q: float = FACEBOOK_CONCURRENCY,
    ) -> "WorkloadPattern":
        """The paper's §5.1 Facebook workload (62.5 Kps, xi=0.15, q=0.1)."""
        return cls(rate=rate, xi=xi, q=q)

    @classmethod
    def poisson(cls, rate: float) -> "WorkloadPattern":
        """Plain Poisson arrivals: no burst, no concurrency."""
        return cls(rate=rate, xi=0.0, q=0.0)

    @property
    def batch_rate(self) -> float:
        """Batches per second: ``(1 - q) * lambda``."""
        return (1.0 - self.q) * self.rate

    @property
    def mean_batch_size(self) -> float:
        """``E[X] = 1 / (1 - q)``."""
        return 1.0 / (1.0 - self.q)

    def batch_gap_distribution(self) -> Distribution:
        """The batch-gap law ``TX`` fed to the GI^X/M/1 queue."""
        if self.gap_override is not None:
            return self.gap_override
        return GeneralizedPareto(self.batch_rate, self.xi)

    def batch_size_distribution(self) -> Geometric:
        """The batch-size law ``X ~ Geometric(q)``."""
        return Geometric(self.q)

    def utilization(self, service_rate: float) -> float:
        """Server utilization ``rho = lambda / muS``."""
        require_positive("service_rate", service_rate)
        return self.rate / service_rate

    def with_rate(self, rate: float) -> "WorkloadPattern":
        """Copy with a different key rate (sweep helper)."""
        return WorkloadPattern(rate=rate, xi=self.xi, q=self.q)

    def with_xi(self, xi: float) -> "WorkloadPattern":
        """Copy with a different burst degree (sweep helper)."""
        return WorkloadPattern(rate=self.rate, xi=xi, q=self.q)

    def with_q(self, q: float) -> "WorkloadPattern":
        """Copy with a different concurrency probability (sweep helper)."""
        return WorkloadPattern(rate=self.rate, xi=self.xi, q=q)

    def scaled(self, factor: float) -> "WorkloadPattern":
        """Copy with the key rate multiplied by ``factor``."""
        require_positive("factor", factor)
        return self.with_rate(self.rate * factor)
