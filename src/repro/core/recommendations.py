"""Configuration advisor implementing the paper's §5.3 recommendations.

Three rules, each quantified by the model rather than stated as folklore:

1. **Utilization headroom** — keep every server's utilization below the
   burst-dependent cliff ``rhoS(xi)`` (Prop. 2 / Table 4).
2. **Load balancing trigger** — rebalance only when the *heaviest*
   server exceeds the cliff; below it the imbalance costs little.
3. **Keys-per-request vs miss ratio** — compare the marginal latency
   benefit of halving N against halving r; for large N the model says
   halving N wins (Theta(log N) vs Theta(log r)).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

from ..units import format_duration
from ..queueing import cliff_utilization
from .analysis import (
    marginal_benefit_fewer_keys,
    marginal_benefit_lower_miss_ratio,
)
from .cluster import ClusterModel
from .stages import DatabaseStage
from .workload import WorkloadPattern


class Severity(enum.Enum):
    """How urgent a recommendation is."""

    OK = "ok"
    ADVISORY = "advisory"
    CRITICAL = "critical"


@dataclasses.dataclass(frozen=True)
class Recommendation:
    """One finding from the advisor."""

    rule: str
    severity: Severity
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.value}] {self.rule}: {self.message}"


@dataclasses.dataclass(frozen=True)
class AdvisorReport:
    """All findings for one configuration."""

    cliff_utilization: float
    max_utilization: float
    recommendations: List[Recommendation]

    @property
    def worst_severity(self) -> Severity:
        order = [Severity.OK, Severity.ADVISORY, Severity.CRITICAL]
        return max(
            (rec.severity for rec in self.recommendations),
            key=order.index,
            default=Severity.OK,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [
            f"cliff utilization rhoS(xi) = {self.cliff_utilization:.0%}",
            f"heaviest server utilization = {self.max_utilization:.0%}",
        ]
        lines.extend(str(rec) for rec in self.recommendations)
        return "\n".join(lines)


def advise(
    *,
    workload: WorkloadPattern,
    cluster: ClusterModel,
    total_key_rate: float,
    n_keys: float,
    database: Optional[DatabaseStage] = None,
    headroom: float = 0.05,
) -> AdvisorReport:
    """Run all §5.3 rules against a configuration.

    Parameters
    ----------
    workload:
        Aggregate workload shape (burst degree and concurrency).
    cluster:
        Server cluster with load shares and service rate.
    total_key_rate:
        Total keys/second offered to the cluster.
    n_keys:
        Keys generated per end-user request.
    database:
        Optional database stage; enables the keys-vs-miss-ratio rule.
    headroom:
        Fraction of utilization below the cliff at which an advisory
        (rather than OK) is emitted.
    """
    recommendations: List[Recommendation] = []
    cliff = cliff_utilization(workload.xi)
    max_util = cluster.max_utilization(total_key_rate)

    # Rule 1: utilization vs the cliff.
    if max_util >= cliff:
        recommendations.append(
            Recommendation(
                rule="utilization",
                severity=Severity.CRITICAL,
                message=(
                    f"heaviest server runs at {max_util:.0%}, past the "
                    f"latency cliff rhoS({workload.xi:g}) = {cliff:.0%}; "
                    "add servers or capacity before anything else"
                ),
            )
        )
    elif max_util >= cliff - headroom:
        recommendations.append(
            Recommendation(
                rule="utilization",
                severity=Severity.ADVISORY,
                message=(
                    f"heaviest server at {max_util:.0%} is within "
                    f"{headroom:.0%} of the cliff ({cliff:.0%}); plan "
                    "capacity now"
                ),
            )
        )
    else:
        recommendations.append(
            Recommendation(
                rule="utilization",
                severity=Severity.OK,
                message=(
                    f"heaviest server at {max_util:.0%} is safely below "
                    f"the cliff ({cliff:.0%})"
                ),
            )
        )

    # Rule 2: load balancing trigger.
    if not cluster.is_balanced:
        balanced_util = total_key_rate / (
            cluster.n_servers * cluster.service_rate
        )
        if max_util >= cliff and balanced_util < cliff:
            recommendations.append(
                Recommendation(
                    rule="load-balancing",
                    severity=Severity.CRITICAL,
                    message=(
                        f"imbalance (p1 = {cluster.heaviest_share:.2f}) pushes "
                        f"the hottest server past the cliff while balanced "
                        f"load would sit at {balanced_util:.0%}; rebalance now"
                    ),
                )
            )
        elif max_util < cliff:
            recommendations.append(
                Recommendation(
                    rule="load-balancing",
                    severity=Severity.OK,
                    message=(
                        "imbalance present but the hottest server is below "
                        "the cliff; rebalancing would yield little latency "
                        "benefit (paper §5.2.2 case i)"
                    ),
                )
            )
        else:
            recommendations.append(
                Recommendation(
                    rule="load-balancing",
                    severity=Severity.ADVISORY,
                    message=(
                        "cluster is overloaded even if balanced; rebalancing "
                        "alone cannot restore low latency — add capacity"
                    ),
                )
            )

    # Rule 3: fewer keys vs lower miss ratio. In the logarithmic regime
    # (N*r >= 1, misses inevitable) halving either N or r saves the same
    # ln(2)/muD, but N can realistically be cut by large factors while r
    # is already tiny — the paper's recommendation. In the linear regime
    # (N*r << 1) latency is Theta(r) and cache tuning genuinely wins.
    if database is not None and database.miss_ratio > 0.0:
        fewer_keys = marginal_benefit_fewer_keys(database, n_keys)
        lower_miss = marginal_benefit_lower_miss_ratio(database, n_keys)
        if database.regime(n_keys) == "logarithmic":
            message = (
                f"misses are inevitable (E[K] = {database.expected_misses(n_keys):.1f}); "
                f"halving keys/request saves {format_duration(fewer_keys)} "
                f"vs {format_duration(lower_miss)} for halving the miss "
                "ratio — and N can be cut drastically while r is already "
                "tiny; prefer reducing keys per request (paper §5.3 rule 3)"
            )
        else:
            message = (
                f"halving the miss ratio saves {format_duration(lower_miss)} "
                f"vs {format_duration(fewer_keys)} for halving keys/request; "
                "with so few keys per request, cache tuning wins "
                "(paper eq. (25) small-N regime)"
            )
        recommendations.append(
            Recommendation(
                rule="keys-vs-miss-ratio",
                severity=Severity.ADVISORY,
                message=message,
            )
        )

    return AdvisorReport(
        cliff_utilization=cliff,
        max_utilization=max_util,
        recommendations=recommendations,
    )
