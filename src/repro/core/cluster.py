"""Memcached cluster model: servers, service rate, load shares (paper §3).

The unbalanced load distribution is the probability vector ``{p_j}``:
on average ``p_j * N`` of a request's N keys are hashed to server ``j``
(paper enhancement 1). :class:`ClusterModel` owns the shares and the
per-key service rate ``muS``, and splits a total key stream into
per-server :class:`~repro.core.workload.WorkloadPattern` objects.
"""

from __future__ import annotations

import dataclasses
import math

from typing import List, Sequence

import numpy as np

from ..distributions import require_positive
from ..errors import ValidationError
from .workload import WorkloadPattern


def _normalize_shares(shares: Sequence[float]) -> tuple[float, ...]:
    array = np.asarray(shares, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValidationError("shares must be a non-empty 1-D sequence")
    if np.any(array <= 0):
        raise ValidationError("every load share must be > 0")
    total = float(array.sum())
    if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
        raise ValidationError(f"load shares must sum to 1, got {total}")
    return tuple(float(x) for x in array)


@dataclasses.dataclass(frozen=True)
class ClusterModel:
    """A cluster of Memcached servers with (possibly unbalanced) shares.

    Parameters
    ----------
    shares:
        The load-distribution probabilities ``{p_j}``; positive, sum to 1.
    service_rate:
        Per-key service rate ``muS`` (keys/second), identical across
        servers as in the paper.
    """

    shares: tuple
    service_rate: float

    def __init__(self, shares: Sequence[float], service_rate: float) -> None:
        object.__setattr__(self, "shares", _normalize_shares(shares))
        object.__setattr__(
            self, "service_rate", require_positive("service_rate", service_rate)
        )

    @classmethod
    def balanced(cls, n_servers: int, service_rate: float) -> "ClusterModel":
        """Uniform shares over ``n_servers`` servers."""
        if int(n_servers) != n_servers or n_servers < 1:
            raise ValidationError(
                f"n_servers must be a positive integer, got {n_servers}"
            )
        n_servers = int(n_servers)
        return cls([1.0 / n_servers] * n_servers, service_rate)

    @classmethod
    def hot_cold(
        cls,
        n_servers: int,
        service_rate: float,
        *,
        hottest_share: float,
    ) -> "ClusterModel":
        """One hot server with ``hottest_share``, the rest balanced.

        Mirrors the paper's Fig. 10 setup where ``p1`` sweeps from 0.3 to
        0.9 while the remaining load spreads over the other servers.
        """
        if int(n_servers) != n_servers or n_servers < 2:
            raise ValidationError(
                f"n_servers must be an integer >= 2, got {n_servers}"
            )
        n_servers = int(n_servers)
        if not 0.0 < hottest_share < 1.0:
            raise ValidationError(
                f"hottest_share must be in (0, 1), got {hottest_share}"
            )
        if hottest_share < 1.0 / n_servers - 1e-12:
            raise ValidationError(
                "hottest_share below the balanced share would not be hottest"
            )
        rest = (1.0 - hottest_share) / (n_servers - 1)
        return cls([hottest_share] + [rest] * (n_servers - 1), service_rate)

    @classmethod
    def from_key_popularity(
        cls,
        popularity: Sequence[float],
        server_of_key: Sequence[int],
        n_servers: int,
        service_rate: float,
    ) -> "ClusterModel":
        """Derive shares from per-key popularity and a key->server map.

        This is how the model connects to the executable substrate: hash
        each key with the cluster's ring, then aggregate popularity mass
        per server.
        """
        pop = np.asarray(popularity, dtype=float)
        servers = np.asarray(server_of_key, dtype=int)
        if pop.shape != servers.shape:
            raise ValidationError("popularity and server_of_key must align")
        if np.any(pop < 0):
            raise ValidationError("popularity must be non-negative")
        total = float(pop.sum())
        if total <= 0:
            raise ValidationError("popularity must have positive mass")
        if np.any((servers < 0) | (servers >= n_servers)):
            raise ValidationError("server indices out of range")
        shares = np.zeros(int(n_servers))
        np.add.at(shares, servers, pop)
        shares /= total
        if np.any(shares == 0):
            # A server with zero mass receives no keys; the model requires
            # positive shares, so drop it from the latency computation.
            shares = shares[shares > 0]
            shares /= shares.sum()
        return cls(shares.tolist(), service_rate)

    # ------------------------------------------------------------------

    @property
    def n_servers(self) -> int:
        return len(self.shares)

    @property
    def heaviest_share(self) -> float:
        """``p1`` — the largest load ratio (paper Table 2)."""
        return max(self.shares)

    @property
    def is_balanced(self) -> bool:
        """True when all shares are equal (within floating tolerance)."""
        first = self.shares[0]
        return all(math.isclose(s, first, rel_tol=1e-9) for s in self.shares)

    def imbalance_factor(self) -> float:
        """``p1 * M``: 1.0 when balanced, up to ``M`` when fully skewed."""
        return self.heaviest_share * self.n_servers

    def server_rates(self, total_key_rate: float) -> List[float]:
        """Per-server key rates for a total stream of ``total_key_rate``."""
        require_positive("total_key_rate", total_key_rate)
        return [share * total_key_rate for share in self.shares]

    def server_workloads(
        self, total_key_rate: float, pattern: WorkloadPattern
    ) -> List[WorkloadPattern]:
        """Split a total key stream into per-server workload patterns.

        Each server sees the same burst degree and concurrency as the
        aggregate pattern, at its share of the total rate — the paper's
        Fig. 10 construction.
        """
        return [
            pattern.with_rate(rate) for rate in self.server_rates(total_key_rate)
        ]

    def heaviest_workload(
        self, total_key_rate: float, pattern: WorkloadPattern
    ) -> WorkloadPattern:
        """The workload at the most loaded server (drives Prop. 1 bounds)."""
        return pattern.with_rate(self.heaviest_share * float(total_key_rate))

    def utilizations(self, total_key_rate: float) -> List[float]:
        """Per-server utilizations ``p_j * Lambda / muS``."""
        return [rate / self.service_rate for rate in self.server_rates(total_key_rate)]

    def max_utilization(self, total_key_rate: float) -> float:
        """Utilization of the heaviest server."""
        return self.heaviest_share * float(total_key_rate) / self.service_rate


@dataclasses.dataclass(frozen=True)
class HeterogeneousCluster:
    """A cluster whose servers differ in service rate (mixed hardware).

    The paper assumes a uniform ``muS``; real fleets mix generations.
    The latency-dominating server is then the one with the highest
    *utilization* ``p_j * Lambda / mu_j`` — not necessarily the one with
    the largest share — and Prop. 1's heaviest-server bounding carries
    over with that server in the heavy role.
    """

    shares: tuple
    service_rates: tuple

    def __init__(
        self, shares: Sequence[float], service_rates: Sequence[float]
    ) -> None:
        object.__setattr__(self, "shares", _normalize_shares(shares))
        rates = tuple(
            require_positive(f"service_rates[{i}]", rate)
            for i, rate in enumerate(service_rates)
        )
        if len(rates) != len(self.shares):
            raise ValidationError("shares and service_rates must align")
        object.__setattr__(self, "service_rates", rates)

    @property
    def n_servers(self) -> int:
        return len(self.shares)

    @property
    def total_capacity(self) -> float:
        """Aggregate service capacity (keys/second)."""
        return float(sum(self.service_rates))

    def utilizations(self, total_key_rate: float) -> List[float]:
        """Per-server utilizations ``p_j Lambda / mu_j``."""
        require_positive("total_key_rate", total_key_rate)
        return [
            share * total_key_rate / rate
            for share, rate in zip(self.shares, self.service_rates)
        ]

    def bottleneck_index(self, total_key_rate: float) -> int:
        """The server with the highest utilization."""
        utils = self.utilizations(total_key_rate)
        return max(range(len(utils)), key=utils.__getitem__)

    def max_utilization(self, total_key_rate: float) -> float:
        return max(self.utilizations(total_key_rate))

    def capacity_weighted_shares(self) -> List[float]:
        """Shares proportional to capacity — the balanced target.

        Routing ``p_j proportional to mu_j`` equalizes utilizations; a
        weighted hash ring (more virtual nodes on faster servers)
        implements it.
        """
        total = self.total_capacity
        return [rate / total for rate in self.service_rates]

    def bottleneck_stage(
        self, total_key_rate: float, pattern: WorkloadPattern
    ):
        """The ServerStage of the utilization-dominating server."""
        from .stages import ServerStage

        index = self.bottleneck_index(total_key_rate)
        workload = pattern.with_rate(self.shares[index] * float(total_key_rate))
        balanced = len(set(self.utilizations(total_key_rate))) == 1
        return ServerStage(
            workload,
            self.service_rates[index],
            heaviest_share=self.shares[index],
            balanced=balanced,
        )
