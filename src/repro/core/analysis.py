"""Quantitative analysis of the latency estimate (paper §5.2).

The paper turns Theorem 1 into scaling laws and sweeps; this module
implements both the sweeps (parameterized re-evaluation of the model)
and the law extraction used to verify them:

* ``E[TS(N)] = Theta(1/(1-q))`` in the concurrency (Fig. 5);
* cliff behaviour in ``lambda``/``muS`` (Figs. 7-9, Prop. 2);
* ``E[TS(N)] = Theta(log N)`` (Fig. 12);
* ``E[TD(N)] = Theta(r)`` small N / ``Theta(log r)`` large N (eq. (25),
  Fig. 11) and ``Theta(log N)`` (Fig. 13).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..errors import ValidationError
from .stages import DatabaseStage, ServerStage
from .workload import WorkloadPattern


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """One factor sweep: parameter values and per-value latency estimates."""

    parameter: str
    values: List[float]
    lower: List[float]
    upper: List[float]

    @property
    def midpoint(self) -> List[float]:
        return [0.5 * (lo + up) for lo, up in zip(self.lower, self.upper)]

    def as_rows(self) -> List[Dict[str, float]]:
        """Rows for tabular output (benches, CLI)."""
        return [
            {self.parameter: v, "lower": lo, "upper": up}
            for v, lo, up in zip(self.values, self.lower, self.upper)
        ]


def sweep_server_stage(
    parameter: str,
    values: Sequence[float],
    stage_factory: Callable[[float], ServerStage],
    n_keys: float,
) -> SweepResult:
    """Evaluate ``E[TS(N)]`` bounds across a parameter sweep."""
    lower: List[float] = []
    upper: List[float] = []
    for value in values:
        estimate = stage_factory(float(value)).mean_latency_bounds(n_keys)
        lower.append(estimate.lower)
        upper.append(estimate.upper)
    return SweepResult(parameter, [float(v) for v in values], lower, upper)


def sweep_database_stage(
    parameter: str,
    values: Sequence[float],
    stage_factory: Callable[[float], DatabaseStage],
    n_keys: float,
) -> SweepResult:
    """Evaluate ``E[TD(N)]`` across a parameter sweep (point estimate)."""
    points = [stage_factory(float(v)).mean_latency(n_keys) for v in values]
    return SweepResult(parameter, [float(v) for v in values], points, points)


# ----------------------------------------------------------------------
# Scaling-law extraction.
# ----------------------------------------------------------------------


def fit_linear_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``y`` on ``x``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.size < 2:
        raise ValidationError("need matching x/y with at least two points")
    sxx = float(((xs - xs.mean()) ** 2).sum())
    if sxx == 0:
        raise ValidationError("x values must not be all equal")
    return float(((xs - xs.mean()) * (ys - ys.mean())).sum() / sxx)


def fit_log_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Slope of ``y`` on ``log x`` — the Theta(log .) checks."""
    xs = np.asarray(xs, dtype=float)
    if np.any(xs <= 0):
        raise ValidationError("x values must be positive for a log fit")
    return fit_linear_slope(np.log(xs), ys)


def goodness_of_linear_fit(xs: Sequence[float], ys: Sequence[float]) -> float:
    """R^2 of the least-squares line of ``y`` on ``x``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    slope = fit_linear_slope(xs, ys)
    intercept = float(ys.mean() - slope * xs.mean())
    residuals = ys - (intercept + slope * xs)
    total = float(((ys - ys.mean()) ** 2).sum())
    if total == 0:
        return 1.0
    return 1.0 - float((residuals**2).sum()) / total


def concurrency_scaling_check(
    workload: WorkloadPattern,
    service_rate: float,
    n_keys: float,
    qs: Sequence[float],
) -> float:
    """R^2 of ``E[TS(N)]`` (upper bound) against ``1/(1-q)``.

    The paper claims Theta(1/(1-q)) growth (Fig. 5 discussion); a value
    near 1 confirms it on the chosen grid.
    """
    xs = [1.0 / (1.0 - q) for q in qs]
    ys = []
    for q in qs:
        stage = ServerStage(workload.with_q(float(q)), service_rate)
        ys.append(stage.mean_latency_bounds(n_keys).upper)
    return goodness_of_linear_fit(xs, ys)


def database_regime_boundary(miss_ratio: float) -> float:
    """The N at which ``E[TD(N)]`` switches regimes: ``N* = 1/r``.

    Below it, latency is ~linear in r (misses are rare events); above
    it, logarithmic (eq. (25)).
    """
    if not 0.0 < miss_ratio <= 1.0:
        raise ValidationError(f"miss_ratio must be in (0, 1], got {miss_ratio}")
    return 1.0 / miss_ratio


def marginal_benefit_fewer_keys(
    database: DatabaseStage, n_keys: float, *, factor: float = 2.0
) -> float:
    """Latency saved by cutting the key count by ``factor`` (seconds)."""
    if factor <= 1.0:
        raise ValidationError(f"factor must be > 1, got {factor}")
    return database.mean_latency(n_keys) - database.mean_latency(n_keys / factor)


def marginal_benefit_lower_miss_ratio(
    database: DatabaseStage, n_keys: float, *, factor: float = 2.0
) -> float:
    """Latency saved by cutting the miss ratio by ``factor`` (seconds)."""
    if factor <= 1.0:
        raise ValidationError(f"factor must be > 1, got {factor}")
    improved = database.with_miss_ratio(database.miss_ratio / factor)
    return database.mean_latency(n_keys) - improved.mean_latency(n_keys)
