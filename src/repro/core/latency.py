"""Theorem 1: the end-to-end latency estimate for Memcached.

:class:`LatencyModel` wires the three stages together and produces a
:class:`LatencyEstimate` implementing the paper's composition (eq. (1))::

    max{TN(N), TS(N), TD(N)}  <=  T(N)  <=  TN(N) + TS(N) + TD(N)

with the stage values themselves given by Theorem 1:

1. ``TN(N)`` constant;
2. ``E[TS(N)]`` bounded by eq. (14);
3. ``E[TD(N)]`` estimated by eq. (23).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..errors import ValidationError
from ..units import format_duration
from .cluster import ClusterModel
from .stages import DatabaseStage, NetworkStage, ServerStage, ServerStageEstimate
from .workload import WorkloadPattern


@dataclasses.dataclass(frozen=True)
class LatencyEstimate:
    """Theorem 1's output for one request size N.

    All times are in seconds. ``total_lower``/``total_upper`` are the
    eq. (1) bounds assembled from per-stage estimates; note the database
    term is the paper's point *estimate* (eq. (23)), not a bound, so the
    totals inherit its approximation error exactly as in the paper.
    """

    n_keys: float
    network: float
    server: ServerStageEstimate
    database: float

    @property
    def total_lower(self) -> float:
        """``max{TN, TS_lower, TD}`` (eq. (1) left side)."""
        return max(self.network, self.server.lower, self.database)

    @property
    def total_upper(self) -> float:
        """``TN + TS_upper + TD`` (eq. (1) right side)."""
        return self.network + self.server.upper + self.database

    @property
    def total_midpoint(self) -> float:
        return 0.5 * (self.total_lower + self.total_upper)

    @property
    def dominant_stage(self) -> str:
        """Which stage contributes the most latency (by stage midpoint)."""
        stages = {
            "network": self.network,
            "servers": self.server.midpoint,
            "database": self.database,
        }
        return max(stages, key=stages.get)

    def breakdown(self) -> Dict[str, float]:
        """Per-stage point values (server stage at its midpoint)."""
        return {
            "network": self.network,
            "servers": self.server.midpoint,
            "database": self.database,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"T({self.n_keys:g}) in [{format_duration(self.total_lower)}, "
            f"{format_duration(self.total_upper)}] "
            f"(network {format_duration(self.network)}, "
            f"servers [{format_duration(self.server.lower)}, "
            f"{format_duration(self.server.upper)}], "
            f"database {format_duration(self.database)})"
        )


class LatencyModel:
    """The full Memcached latency model (Theorem 1).

    Parameters
    ----------
    server_stage:
        The Memcached-server stage (heaviest server's queue + shares).
    network_stage:
        Constant network stage; defaults to zero delay.
    database_stage:
        Database miss stage; defaults to no misses (r = 0), in which case
        the database contributes nothing.
    """

    def __init__(
        self,
        server_stage: ServerStage,
        *,
        network_stage: Optional[NetworkStage] = None,
        database_stage: Optional[DatabaseStage] = None,
    ) -> None:
        self._server = server_stage
        self._network = network_stage if network_stage is not None else NetworkStage(0.0)
        self._database = database_stage

    @classmethod
    def build(
        cls,
        *,
        workload: WorkloadPattern,
        service_rate: float,
        network_delay: float = 0.0,
        database_rate: Optional[float] = None,
        miss_ratio: float = 0.0,
        cluster: Optional[ClusterModel] = None,
        total_key_rate: Optional[float] = None,
    ) -> "LatencyModel":
        """Convenience constructor covering the paper's configurations.

        Balanced deployments pass ``workload`` as the *per-server*
        pattern (the paper's §5.1). Unbalanced deployments pass a
        ``cluster`` plus the *total* key rate, and ``workload`` supplies
        the burst/concurrency shape.
        """
        if cluster is not None:
            if total_key_rate is None:
                raise ValidationError(
                    "total_key_rate is required when a cluster is given"
                )
            server = ServerStage.from_cluster(cluster, total_key_rate, workload)
        else:
            server = ServerStage(workload, service_rate)
        database = None
        if miss_ratio > 0.0:
            if database_rate is None:
                raise ValidationError(
                    "database_rate is required when miss_ratio > 0"
                )
            database = DatabaseStage(database_rate, miss_ratio)
        return cls(
            server,
            network_stage=NetworkStage(network_delay),
            database_stage=database,
        )

    @property
    def server_stage(self) -> ServerStage:
        return self._server

    @property
    def network_stage(self) -> NetworkStage:
        return self._network

    @property
    def database_stage(self) -> Optional[DatabaseStage]:
        return self._database

    def estimate(self, n_keys: float) -> LatencyEstimate:
        """Theorem 1 for a request generating ``n_keys`` Memcached keys."""
        server = self._server.mean_latency_bounds(n_keys)
        database = (
            self._database.mean_latency(n_keys) if self._database is not None else 0.0
        )
        return LatencyEstimate(
            n_keys=float(n_keys),
            network=self._network.mean_latency(n_keys),
            server=server,
            database=database,
        )
