"""The three latency stages of Theorem 1 (paper §4).

* :class:`NetworkStage` — constant network latency (paper §4.2).
* :class:`ServerStage` — processing latency at Memcached servers: the
  GI^X/M/1 per-key law lifted to the max over N keys across M servers
  with shares ``{p_j}`` (paper §4.3, Proposition 1, eq. (14)).
* :class:`DatabaseStage` — processing latency at the database for missed
  keys (paper §4.4, eqs. (15)-(23)).
"""

from __future__ import annotations

import dataclasses
import math

from ..distributions import Exponential, require_positive, require_probability
from ..errors import ValidationError
from ..queueing import GIXM1Queue, expected_max_exact, quantile_level
from .cluster import ClusterModel
from .workload import WorkloadPattern


def _require_count(n: float) -> float:
    n = float(n)
    if n <= 0:
        raise ValidationError(f"key count must be > 0, got {n}")
    return n


class NetworkStage:
    """Constant network latency (paper eq. (2)).

    The paper measures network utilization below 10% and treats
    ``TN(N)`` as a constant: propagation plus transmission, no queueing.
    """

    def __init__(self, delay: float) -> None:
        delay = float(delay)
        if delay < 0:
            raise ValidationError(f"delay must be >= 0, got {delay}")
        self._delay = delay

    @property
    def delay(self) -> float:
        return self._delay

    def mean_latency(self, n_keys: float) -> float:
        """``TN(N)``: constant in N (eq. (2))."""
        _require_count(n_keys)
        return self._delay


@dataclasses.dataclass(frozen=True)
class ServerStageEstimate:
    """Bounds for ``E[TS(N)]`` (paper eq. (14))."""

    lower: float
    upper: float
    delta: float
    decay_rate: float
    quantile: float

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)

    @property
    def width(self) -> float:
        return self.upper - self.lower


class ServerStage:
    """Processing latency at the Memcached servers (paper §4.3).

    Built on the heaviest server's GI^X/M/1 queue. Proposition 1 bounds
    the mixture quantile across unbalanced servers by the heaviest
    server alone::

        (T_S1)_{k^{1/p1}}  <=  (T_S(1))_k  <=  (T_S1)_k

    and the per-key law is bounded by batch queueing/completion times
    (eq. (9)). When the cluster is balanced all servers are identical,
    the mixture CDF *equals* the per-server CDF, and the bounds tighten
    to the (TQ)_k / (TC)_k pair at ``k = N/(N+1)`` — this is the case
    behind the paper's Table 3.
    """

    def __init__(
        self,
        workload: WorkloadPattern,
        service_rate: float,
        *,
        heaviest_share: float = 1.0,
        balanced: bool = True,
    ) -> None:
        require_positive("service_rate", service_rate)
        heaviest_share = float(heaviest_share)
        if not 0.0 < heaviest_share <= 1.0:
            raise ValidationError(
                f"heaviest_share must be in (0, 1], got {heaviest_share}"
            )
        self._workload = workload
        self._service_rate = float(service_rate)
        self._p1 = heaviest_share
        self._balanced = bool(balanced)
        self._queue = GIXM1Queue(
            workload.batch_gap_distribution(), workload.q, self._service_rate
        )

    @classmethod
    def from_cluster(
        cls,
        cluster: ClusterModel,
        total_key_rate: float,
        pattern: WorkloadPattern,
    ) -> "ServerStage":
        """Build the stage for a cluster fed by a total key stream.

        Only the heaviest server matters for the bounds (Prop. 1), so a
        single queue at rate ``p1 * Lambda`` is constructed.
        """
        heaviest = cluster.heaviest_workload(total_key_rate, pattern)
        return cls(
            heaviest,
            cluster.service_rate,
            heaviest_share=cluster.heaviest_share,
            balanced=cluster.is_balanced,
        )

    # ------------------------------------------------------------------

    @property
    def workload(self) -> WorkloadPattern:
        """The heaviest server's workload."""
        return self._workload

    @property
    def queue(self) -> GIXM1Queue:
        """The heaviest server's GI^X/M/1 queue."""
        return self._queue

    @property
    def utilization(self) -> float:
        """Utilization of the heaviest server."""
        return self._queue.utilization

    @property
    def delta(self) -> float:
        return self._queue.delta

    @property
    def heaviest_share(self) -> float:
        return self._p1

    @property
    def is_balanced(self) -> bool:
        return self._balanced

    def per_key_quantile_bounds(self, k: float) -> tuple[float, float]:
        """Eq. (9): bounds on the k-th quantile of one key's latency."""
        return self._queue.key_latency_bounds(k)

    def mixture_quantile_bounds(self, k: float) -> tuple[float, float]:
        """Proposition 1 bounds on the k-th quantile of ``T_S(1)``.

        ``T_S(1)`` is the stochastic time whose CDF is the share-weighted
        product of per-server CDFs (paper eq. (11)).
        """
        require_probability("k", k, closed=False)
        if self._balanced:
            k_low = k
        else:
            k_low = k ** (1.0 / self._p1)
        lower = self._queue.queueing_quantile(k_low)
        upper = self._queue.completion_quantile(k)
        return lower, upper

    def mean_latency_bounds(self, n_keys: float) -> ServerStageEstimate:
        """Eq. (14): bounds on ``E[TS(N)]`` via the quantile rule.

        ``E[TS(N)] ~ (T_S(1))_{N/(N+1)}`` (maximal statistics), then
        Proposition 1 and eq. (9) bound that quantile from both sides.
        """
        n_keys = _require_count(n_keys)
        k = quantile_level(n_keys)
        lower, upper = self.mixture_quantile_bounds(k)
        return ServerStageEstimate(
            lower=lower,
            upper=upper,
            delta=self.delta,
            decay_rate=self._queue.decay_rate,
            quantile=k,
        )

    def mean_latency_upper_exact(self, n_keys: int) -> float:
        """Exact-integral refinement of the upper bound.

        Instead of the quantile rule, integrate ``E[max of N iid TC]``
        exactly; used by the quantile-rule ablation bench.
        """
        return expected_max_exact(self._queue.completion_distribution(), n_keys)


class DatabaseStage:
    """Processing latency at the database for missed keys (paper §4.4).

    Misses happen independently with probability ``r`` per key; each
    missed key visits an M/M/1 database with service rate ``muD`` whose
    load is negligible (``rho << 1``), so its sojourn is ~``Exp(muD)``
    (eq. (19)).
    """

    def __init__(
        self,
        service_rate: float,
        miss_ratio: float,
        *,
        utilization: float = 0.0,
    ) -> None:
        self._mu = require_positive("service_rate", service_rate)
        self._r = require_probability("miss_ratio", miss_ratio)
        utilization = float(utilization)
        if not 0.0 <= utilization < 1.0:
            raise ValidationError(
                f"utilization must be in [0, 1), got {utilization}"
            )
        self._rho = utilization

    @property
    def service_rate(self) -> float:
        return self._mu

    @property
    def miss_ratio(self) -> float:
        return self._r

    @property
    def effective_rate(self) -> float:
        """``(1 - rho) muD`` — the sojourn's exponential rate (eq. (19))."""
        return (1.0 - self._rho) * self._mu

    def sojourn_distribution(self) -> Exponential:
        """One missed key's database latency ``TD``."""
        return Exponential(self.effective_rate)

    def miss_probability(self, n_keys: float) -> float:
        """``P(K > 0) = 1 - (1 - r)^N`` (eq. (17))."""
        n_keys = _require_count(n_keys)
        if self._r == 0.0:
            return 0.0
        return -math.expm1(n_keys * math.log1p(-self._r))

    def expected_misses(self, n_keys: float) -> float:
        """``E[K] = N r``."""
        return _require_count(n_keys) * self._r

    def expected_misses_given_any(self, n_keys: float) -> float:
        """``E[K | K > 0] = N r / (1 - (1-r)^N)`` (eq. (18))."""
        p_any = self.miss_probability(n_keys)
        if p_any == 0.0:
            raise ValidationError("no misses are possible when r = 0")
        return self.expected_misses(n_keys) / p_any

    def mean_latency_given_any(self, n_keys: float) -> float:
        """``E[TD(N) | K > 0]`` (eq. (22))."""
        conditional = self.expected_misses_given_any(n_keys)
        return math.log(conditional + 1.0) / self.effective_rate

    def mean_latency(self, n_keys: float) -> float:
        """``E[TD(N)]`` (eq. (23) / Theorem 1 part 3)."""
        n_keys = _require_count(n_keys)
        if self._r == 0.0:
            return 0.0
        p_any = self.miss_probability(n_keys)
        conditional = self.expected_misses(n_keys) / p_any
        return p_any * math.log(conditional + 1.0) / self.effective_rate

    def mean_latency_asymptotic(self, n_keys: float) -> float:
        """Large-N limit ``ln(N r + 1) / muD`` (paper §5.2.4)."""
        n_keys = _require_count(n_keys)
        return math.log(n_keys * self._r + 1.0) / self.effective_rate

    def regime(self, n_keys: float) -> str:
        """Eq. (25): ``"linear"`` in r for small N, ``"logarithmic"`` else.

        The crossover is where multiple misses become likely; we use
        ``E[K] = N r >= 1`` as the boundary, matching the paper's
        small-N/large-N discussion.
        """
        return "logarithmic" if self.expected_misses(n_keys) >= 1.0 else "linear"

    def with_miss_ratio(self, miss_ratio: float) -> "DatabaseStage":
        """Copy with a different miss ratio (sweep helper)."""
        return DatabaseStage(self._mu, miss_ratio, utilization=self._rho)
