"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class. Each leaf
class corresponds to one failure domain (validation, numeric solving,
simulation, cache protocol), which keeps ``except`` clauses narrow.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """A parameter is outside its mathematically valid domain.

    Raised for inputs such as negative rates, probabilities outside
    ``[0, 1]``, or shape parameters for which a distribution is undefined.
    Subclasses :class:`ValueError` so generic callers behave sensibly.
    """


class StabilityError(ReproError):
    """A queueing system is unstable (utilization >= 1).

    Latency is unbounded for an unstable queue, so estimators raise this
    instead of returning a misleading number.
    """

    def __init__(self, utilization: float, message: str | None = None) -> None:
        self.utilization = float(utilization)
        if message is None:
            message = (
                f"queue is unstable: utilization {self.utilization:.4f} >= 1; "
                "latency diverges"
            )
        super().__init__(message)


class ConvergenceError(ReproError):
    """A numeric solver (fixed point, root finder, quadrature) failed.

    Attributes
    ----------
    last_value:
        The final iterate, useful for diagnosing near-misses.
    iterations:
        How many iterations ran before giving up.
    """

    def __init__(
        self,
        message: str,
        *,
        last_value: float | None = None,
        iterations: int | None = None,
    ) -> None:
        self.last_value = last_value
        self.iterations = iterations
        super().__init__(message)


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class CacheError(ReproError):
    """Base class for errors from the in-process memcached substrate."""


class CacheCapacityError(CacheError):
    """An item cannot fit in the cache even after evicting everything."""


class ProtocolError(CacheError):
    """A memcached text-protocol line could not be parsed."""


class ConfigError(ReproError):
    """An experiment configuration is inconsistent or incomplete."""
