"""Unit helpers and conversion constants.

Internally the library works in **seconds** for time and **events per
second** for rates. The paper reports rates in "Kps" (thousand keys per
second) and latencies in microseconds or milliseconds; these helpers keep
the conversions explicit at API boundaries instead of scattering magic
``1e-6`` factors through the code.
"""

from __future__ import annotations

#: One microsecond, in seconds.
MICROSECOND = 1e-6

#: One millisecond, in seconds.
MILLISECOND = 1e-3

#: One "Kps" (thousand events per second), in events per second.
KPS = 1e3


def usec(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICROSECOND


def msec(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MILLISECOND


def kps(value: float) -> float:
    """Convert thousand-per-second rates to per-second rates."""
    return value * KPS


def to_usec(seconds: float) -> float:
    """Convert seconds to microseconds (for reporting)."""
    return seconds / MICROSECOND


def to_msec(seconds: float) -> float:
    """Convert seconds to milliseconds (for reporting)."""
    return seconds / MILLISECOND


def to_kps(rate: float) -> float:
    """Convert a per-second rate to thousands per second (for reporting)."""
    return rate / KPS


def format_duration(seconds: float) -> str:
    """Render a duration with a human-friendly unit.

    >>> format_duration(3.66e-4)
    '366.0us'
    >>> format_duration(1.2e-3)
    '1.200ms'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds / MICROSECOND:.1f}us"
    if seconds < 1.0:
        return f"{seconds / MILLISECOND:.3f}ms"
    return f"{seconds:.3f}s"
