"""Slab allocator: memcached's size-class memory management.

Memory is carved into fixed-size *slab pages*; each page belongs to a
*slab class* whose chunk size grows geometrically (``factor`` of 1.25 in
stock memcached). An item is stored in the smallest class whose chunk
fits it; when no page is free the class evicts from its own LRU. This
is the mechanism behind the paper's §2.2 note that Facebook/Twitter tune
"slab class allocation to better adapt to varying item sizes".
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from ..errors import CacheCapacityError, ValidationError
from .lru import LRUList

#: Stock memcached defaults.
DEFAULT_PAGE_SIZE = 1 << 20  # 1 MiB
DEFAULT_MIN_CHUNK = 96
DEFAULT_GROWTH_FACTOR = 1.25


def build_chunk_sizes(
    min_chunk: int = DEFAULT_MIN_CHUNK,
    growth_factor: float = DEFAULT_GROWTH_FACTOR,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> List[int]:
    """The geometric chunk-size ladder, capped at the page size."""
    if min_chunk < 1:
        raise ValidationError(f"min_chunk must be >= 1, got {min_chunk}")
    if growth_factor <= 1.0:
        raise ValidationError(f"growth_factor must be > 1, got {growth_factor}")
    if page_size < min_chunk:
        raise ValidationError("page_size must be >= min_chunk")
    sizes: List[int] = []
    size = float(min_chunk)
    while size < page_size:
        chunk = int(math.ceil(size))
        # Align to 8 bytes like memcached does.
        chunk = (chunk + 7) & ~7
        if not sizes or chunk > sizes[-1]:
            sizes.append(chunk)
        size *= growth_factor
    if sizes[-1] != page_size:
        sizes.append(page_size)
    return sizes


@dataclasses.dataclass
class SlabClassStats:
    """Occupancy counters for one slab class."""

    chunk_size: int
    chunks_per_page: int
    pages: int = 0
    used_chunks: int = 0
    evictions: int = 0

    @property
    def total_chunks(self) -> int:
        return self.pages * self.chunks_per_page


class _SlabClass:
    def __init__(self, chunk_size: int, page_size: int) -> None:
        self.chunk_size = chunk_size
        self.chunks_per_page = max(1, page_size // chunk_size)
        self.pages = 0
        self.free_chunks = 0
        self.used_chunks = 0
        self.evictions = 0
        self.lru = LRUList()

    def stats(self) -> SlabClassStats:
        return SlabClassStats(
            chunk_size=self.chunk_size,
            chunks_per_page=self.chunks_per_page,
            pages=self.pages,
            used_chunks=self.used_chunks,
            evictions=self.evictions,
        )


class SlabAllocator:
    """Page-based slab allocation with per-class LRU eviction.

    ``store(key, nbytes)`` returns the key evicted to make room (or
    None); ``free(key)`` releases a chunk. The allocator only manages
    *placement*; the item payloads live in :class:`~repro.memcached.store.CacheStore`.
    """

    def __init__(
        self,
        capacity_bytes: int,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        min_chunk: int = DEFAULT_MIN_CHUNK,
        growth_factor: float = DEFAULT_GROWTH_FACTOR,
    ) -> None:
        if capacity_bytes < page_size:
            raise ValidationError(
                f"capacity {capacity_bytes} smaller than one page {page_size}"
            )
        self._page_size = int(page_size)
        self._total_pages = capacity_bytes // page_size
        self._free_pages = self._total_pages
        self._chunk_sizes = build_chunk_sizes(min_chunk, growth_factor, page_size)
        self._classes = [_SlabClass(size, page_size) for size in self._chunk_sizes]
        self._class_of_key: Dict[str, int] = {}

    # ------------------------------------------------------------------

    @property
    def chunk_sizes(self) -> List[int]:
        return list(self._chunk_sizes)

    @property
    def total_pages(self) -> int:
        return self._total_pages

    @property
    def free_pages(self) -> int:
        return self._free_pages

    def class_index_for(self, nbytes: int) -> int:
        """Smallest class whose chunk holds ``nbytes``."""
        if nbytes < 1:
            raise ValidationError(f"nbytes must be >= 1, got {nbytes}")
        for index, size in enumerate(self._chunk_sizes):
            if nbytes <= size:
                return index
        raise CacheCapacityError(
            f"item of {nbytes} bytes exceeds the largest chunk "
            f"({self._chunk_sizes[-1]} bytes)"
        )

    def store(self, key: str, nbytes: int) -> Optional[str]:
        """Allocate a chunk for ``key``; returns an evicted key or None.

        Mirrors memcached: grab a free chunk in the right class, else a
        fresh page, else evict that class's LRU item.
        """
        if key in self._class_of_key:
            raise ValidationError(f"key already allocated: {key!r}")
        index = self.class_index_for(nbytes)
        slab = self._classes[index]
        evicted: Optional[str] = None
        if slab.free_chunks == 0:
            if self._free_pages > 0:
                self._free_pages -= 1
                slab.pages += 1
                slab.free_chunks += slab.chunks_per_page
            else:
                if len(slab.lru) == 0:
                    raise CacheCapacityError(
                        f"no memory for class {slab.chunk_size}B and nothing "
                        "to evict in it (slab calcification)"
                    )
                evicted = slab.lru.evict_lru()
                del self._class_of_key[evicted]
                slab.used_chunks -= 1
                slab.free_chunks += 1
                slab.evictions += 1
        slab.free_chunks -= 1
        slab.used_chunks += 1
        slab.lru.insert(key)
        self._class_of_key[key] = index
        return evicted

    def touch(self, key: str) -> None:
        """Record an access (moves the key up its class LRU)."""
        index = self._class_of_key.get(key)
        if index is None:
            raise KeyError(key)
        self._classes[index].lru.touch(key)

    def free(self, key: str) -> None:
        """Release the chunk held by ``key``."""
        index = self._class_of_key.pop(key, None)
        if index is None:
            raise KeyError(key)
        slab = self._classes[index]
        slab.lru.remove(key)
        slab.used_chunks -= 1
        slab.free_chunks += 1

    def stats(self) -> List[SlabClassStats]:
        """Per-class occupancy (only classes with pages)."""
        return [slab.stats() for slab in self._classes if slab.pages > 0]

    # ------------------------------------------------------------------
    # Page reassignment (memcached's slab automover).
    # ------------------------------------------------------------------

    def reassign_page(self, from_class: int, to_class: int) -> List[str]:
        """Move one page from one slab class to another.

        Evicts enough LRU items of the source class to free a page's
        worth of chunks, returns the evicted keys (the caller — the
        store — must drop their payloads), and hands the page to the
        destination class. This is the manual ``slabs reassign``; the
        cure for slab calcification.
        """
        n_classes = len(self._classes)
        if not 0 <= from_class < n_classes or not 0 <= to_class < n_classes:
            raise ValidationError("slab class index out of range")
        if from_class == to_class:
            raise ValidationError("source and destination classes are equal")
        src = self._classes[from_class]
        dst = self._classes[to_class]
        if src.pages == 0:
            raise CacheCapacityError(
                f"class {src.chunk_size}B has no pages to give"
            )
        evicted: List[str] = []
        # Free one page's worth of chunks, evicting LRU items as needed.
        while src.free_chunks < src.chunks_per_page:
            if len(src.lru) == 0:  # pragma: no cover - accounting invariant
                raise CacheCapacityError("source class accounting corrupt")
            key = src.lru.evict_lru()
            del self._class_of_key[key]
            src.used_chunks -= 1
            src.free_chunks += 1
            src.evictions += 1
            evicted.append(key)
        src.pages -= 1
        src.free_chunks -= src.chunks_per_page
        dst.pages += 1
        dst.free_chunks += dst.chunks_per_page
        return evicted

    def eviction_pressure(self) -> List[int]:
        """Evictions per class since start — the automover's signal."""
        return [slab.evictions for slab in self._classes]

    def suggest_reassignment(self) -> Optional[tuple[int, int]]:
        """The automover policy: (from_class, to_class) or None.

        Give a page to the class with the most evictions, taken from a
        multi-page class with the most free chunks. Returns None when no
        sensible move exists (nothing evicting, or no donor).
        """
        pressures = self.eviction_pressure()
        to_class = max(range(len(pressures)), key=pressures.__getitem__)
        if pressures[to_class] == 0:
            return None
        donors = [
            (slab.free_chunks / max(slab.pages * slab.chunks_per_page, 1), i)
            for i, slab in enumerate(self._classes)
            if slab.pages > 1 and i != to_class
        ]
        if not donors:
            return None
        _, from_class = max(donors)
        return from_class, to_class

    def __contains__(self, key: str) -> bool:
        return key in self._class_of_key

    def __len__(self) -> int:
        return len(self._class_of_key)
