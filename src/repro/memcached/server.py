"""In-process Memcached server: protocol front end over a cache store."""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import ProtocolError, ValidationError
from .protocol import (
    ArithCommand,
    Command,
    DeleteCommand,
    FlushCommand,
    GetCommand,
    SetCommand,
    StatsCommand,
    StoreVariantCommand,
    TouchCommand,
    VersionCommand,
    parse_command,
    render_arith,
    render_deleted,
    render_error,
    render_get_response,
    render_not_stored,
    render_ok,
    render_stats,
    render_stored,
    render_touched,
)
from .store import CacheStore

SERVER_VERSION = "repro-memcached 1.0.0"


class MemcachedServer:
    """One cache node: executes protocol commands against its store."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        *,
        clock: Optional[Callable[[], float]] = None,
        **store_kwargs: object,
    ) -> None:
        self.name = name
        self.store = CacheStore(capacity_bytes, clock=clock, **store_kwargs)

    # ------------------------------------------------------------------
    # Typed API (what the simulator and cluster client use).
    # ------------------------------------------------------------------

    def execute(self, command: Command) -> str:
        """Run a parsed command, returning the wire response."""
        if isinstance(command, GetCommand):
            hits = []
            for key in command.keys:
                item = self.store.get(key)
                if item is not None:
                    hits.append((item.key, item.flags, item.value, item.cas))
            return render_get_response(hits, with_cas=command.with_cas)
        if isinstance(command, SetCommand):
            ttl = command.exptime if command.exptime > 0 else None
            self.store.set(
                command.key, command.value, flags=command.flags, ttl=ttl
            )
            return "" if command.noreply else render_stored()
        if isinstance(command, StoreVariantCommand):
            ttl = command.exptime if command.exptime > 0 else None
            if command.verb == "add":
                stored = self.store.add(
                    command.key, command.value, flags=command.flags, ttl=ttl
                )
            elif command.verb == "replace":
                stored = self.store.replace(
                    command.key, command.value, flags=command.flags, ttl=ttl
                )
            elif command.verb == "append":
                stored = self.store.append(command.key, command.value)
            else:  # prepend
                stored = self.store.prepend(command.key, command.value)
            if command.noreply:
                return ""
            return render_stored() if stored else render_not_stored()
        if isinstance(command, ArithCommand):
            try:
                if command.verb == "incr":
                    result = self.store.incr(command.key, command.delta)
                else:
                    result = self.store.decr(command.key, command.delta)
            except ValidationError as exc:
                return "" if command.noreply else render_error(str(exc))
            return "" if command.noreply else render_arith(result)
        if isinstance(command, TouchCommand):
            ttl = command.exptime if command.exptime > 0 else None
            found = self.store.touch(command.key, ttl)
            return "" if command.noreply else render_touched(found)
        if isinstance(command, DeleteCommand):
            found = self.store.delete(command.key)
            return "" if command.noreply else render_deleted(found)
        if isinstance(command, FlushCommand):
            self.store.flush_all()
            return "" if command.noreply else render_ok()
        if isinstance(command, StatsCommand):
            stats = self.store.stats
            return render_stats(
                [
                    ("cmd_get", stats.gets),
                    ("cmd_set", stats.sets),
                    ("get_hits", stats.hits),
                    ("get_misses", stats.misses),
                    ("evictions", stats.evictions),
                    ("expired_unfetched", stats.expired),
                    ("curr_items", len(self.store)),
                    ("bytes", self.store.bytes_used()),
                ]
            )
        if isinstance(command, VersionCommand):
            return f"VERSION {SERVER_VERSION}\r\n"
        raise ProtocolError(f"unhandled command type: {type(command).__name__}")

    # ------------------------------------------------------------------
    # Wire API.
    # ------------------------------------------------------------------

    def handle_line(self, line: str, data: Optional[bytes] = None) -> str:
        """Parse and execute one wire command; errors become responses."""
        try:
            return self.execute(parse_command(line, data))
        except ProtocolError as exc:
            return render_error(str(exc))

    @property
    def miss_ratio(self) -> float:
        """Measured miss ratio of this node."""
        return self.store.miss_ratio()
