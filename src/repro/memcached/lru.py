"""O(1) LRU list used by the cache store and slab classes.

A doubly-linked list with a dict index: ``touch`` moves a key to the MRU
end, ``evict_lru`` pops the LRU end. Memcached maintains one such list
per slab class; :class:`LRUList` is that building block.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..errors import ValidationError


class _Node:
    __slots__ = ("key", "prev", "next")

    def __init__(self, key: str) -> None:
        self.key = key
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class LRUList:
    """Doubly-linked LRU order over string keys, all operations O(1)."""

    def __init__(self) -> None:
        self._index: Dict[str, _Node] = {}
        self._head: Optional[_Node] = None  # MRU
        self._tail: Optional[_Node] = None  # LRU

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None

    def _push_front(self, node: _Node) -> None:
        node.next = self._head
        node.prev = None
        if self._head is not None:
            self._head.prev = node
        self._head = node
        if self._tail is None:
            self._tail = node

    def insert(self, key: str) -> None:
        """Add ``key`` as MRU; error if present."""
        if key in self._index:
            raise ValidationError(f"key already tracked: {key!r}")
        node = _Node(key)
        self._index[key] = node
        self._push_front(node)

    def touch(self, key: str) -> None:
        """Move ``key`` to the MRU end."""
        node = self._index.get(key)
        if node is None:
            raise KeyError(key)
        if node is self._head:
            return
        self._unlink(node)
        self._push_front(node)

    def remove(self, key: str) -> None:
        """Drop ``key`` from the order."""
        node = self._index.pop(key, None)
        if node is None:
            raise KeyError(key)
        self._unlink(node)

    def evict_lru(self) -> str:
        """Pop and return the least-recently-used key."""
        if self._tail is None:
            raise ValidationError("cannot evict from an empty LRU list")
        key = self._tail.key
        self.remove(key)
        return key

    def peek_lru(self) -> Optional[str]:
        """The LRU key without removing it (None when empty)."""
        return self._tail.key if self._tail is not None else None

    def peek_mru(self) -> Optional[str]:
        """The MRU key without removing it (None when empty)."""
        return self._head.key if self._head is not None else None

    def __iter__(self) -> Iterator[str]:
        """Iterate keys MRU -> LRU."""
        node = self._head
        while node is not None:
            yield node.key
            node = node.next
