"""Memcached cluster client: a ring of in-process servers.

This is the client-side view from the paper's Fig. 1: a multi-get fans a
request's keys across servers via the consistent-hash ring; per-server
hit/miss statistics aggregate into the cluster miss ratio ``r`` and the
empirical load shares ``{p_j}`` that feed the analytic model.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ValidationError
from .hashring import HashRing
from .server import MemcachedServer
from .store import Item


class MemcachedCluster:
    """A set of servers behind a consistent-hash ring."""

    def __init__(
        self,
        n_servers: int,
        capacity_bytes: int,
        *,
        replicas: int = 128,
        clock: Optional[Callable[[], float]] = None,
        **store_kwargs: object,
    ) -> None:
        if n_servers < 1:
            raise ValidationError(f"n_servers must be >= 1, got {n_servers}")
        names = [f"mc{j}" for j in range(int(n_servers))]
        self.servers: List[MemcachedServer] = [
            MemcachedServer(name, capacity_bytes, clock=clock, **store_kwargs)
            for name in names
        ]
        self.ring = HashRing(names, replicas=replicas)
        self._index_of = {name: j for j, name in enumerate(names)}

    # ------------------------------------------------------------------

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    def server_for(self, key: str) -> MemcachedServer:
        """The server owning ``key`` per the ring."""
        return self.servers[self.server_index_for(key)]

    def server_index_for(self, key: str) -> int:
        return self._index_of[self.ring.node_for(key)]

    # ------------------------------------------------------------------
    # Membership changes (failure injection / scale-out).
    # ------------------------------------------------------------------

    def remove_server(self, index: int) -> MemcachedServer:
        """Take a server out of the ring (crash / decommission).

        Its cached items are lost; keys it owned remap to ring
        successors, which will miss until demand-filled — the classic
        failure-induced miss storm. Returns the removed server object.
        """
        if not 0 <= index < len(self.servers):
            raise ValidationError(f"server index out of range: {index}")
        if len(self.servers) == 1:
            raise ValidationError("cannot remove the last server")
        server = self.servers.pop(index)
        self.ring.remove_node(server.name)
        self._index_of = {s.name: j for j, s in enumerate(self.servers)}
        return server

    def add_server(
        self,
        capacity_bytes: int,
        *,
        clock=None,
        **store_kwargs: object,
    ) -> MemcachedServer:
        """Add a fresh (cold) server to the ring (scale-out).

        ~1/M of the key space remaps to it; those keys miss until
        demand-filled.
        """
        seq = 0
        existing = {s.name for s in self.servers}
        while f"mc{seq}" in existing:
            seq += 1
        server = MemcachedServer(
            f"mc{seq}", capacity_bytes, clock=clock, **store_kwargs
        )
        self.servers.append(server)
        self.ring.add_node(server.name)
        self._index_of = {s.name: j for j, s in enumerate(self.servers)}
        return server

    # ------------------------------------------------------------------
    # Client operations.
    # ------------------------------------------------------------------

    def set(self, key: str, value: bytes, *, flags: int = 0, ttl: Optional[float] = None) -> Item:
        """Store one item on its ring owner."""
        return self.server_for(key).store.set(key, value, flags=flags, ttl=ttl)

    def get(self, key: str) -> Optional[Item]:
        """Fetch one item from its ring owner (counts hit/miss)."""
        return self.server_for(key).store.get(key)

    def delete(self, key: str) -> bool:
        return self.server_for(key).store.delete(key)

    def multi_get(self, keys: Sequence[str]) -> Dict[str, Optional[Item]]:
        """The request path of the paper: one request, many keys.

        Returns a mapping with ``None`` for misses; the caller (web
        server) is responsible for fetching misses from the database and
        back-filling with :meth:`set`.
        """
        return {key: self.get(key) for key in keys}

    def flush_all(self) -> None:
        for server in self.servers:
            server.store.flush_all()

    # ------------------------------------------------------------------
    # Measurements feeding the analytic model.
    # ------------------------------------------------------------------

    def miss_ratio(self) -> float:
        """Aggregate measured miss ratio (the model's ``r``)."""
        gets = sum(s.store.stats.gets for s in self.servers)
        if gets == 0:
            return 0.0
        misses = sum(s.store.stats.misses for s in self.servers)
        return misses / gets

    def access_shares(self) -> List[float]:
        """Observed load shares ``{p_j}`` from per-server get counts."""
        gets = np.array([s.store.stats.gets for s in self.servers], dtype=float)
        total = gets.sum()
        if total <= 0:
            raise ValidationError("no accesses recorded yet")
        return (gets / total).tolist()

    def predicted_shares(
        self, keys: Sequence[str], weights: Optional[Sequence[float]] = None
    ) -> List[float]:
        """Shares a key population would induce (before running traffic)."""
        return self.ring.load_shares(keys, weights)
