"""The key-value store of one Memcached server.

Combines the hash table, the slab allocator (placement + LRU eviction)
and item metadata (flags, expiry, CAS). This is the component whose
hit/miss behaviour grounds the model's miss ratio ``r`` in an actual
executable cache instead of a Bernoulli coin.

Time is injected (``clock``) rather than read from the wall, so the
store can run inside the discrete-event simulator.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Optional

from ..errors import ValidationError
from .slab import (
    DEFAULT_GROWTH_FACTOR,
    DEFAULT_MIN_CHUNK,
    DEFAULT_PAGE_SIZE,
    SlabAllocator,
    SlabClassStats,
)

#: Overhead bytes memcached charges per item (struct + pointers, approx).
ITEM_OVERHEAD = 48


@dataclasses.dataclass
class Item:
    """One cached item."""

    key: str
    value: bytes
    flags: int = 0
    expires_at: Optional[float] = None
    cas: int = 0

    @property
    def nbytes(self) -> int:
        """Bytes charged against the cache (key + value + overhead)."""
        return len(self.key) + len(self.value) + ITEM_OVERHEAD

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


@dataclasses.dataclass
class StoreStats:
    """Counters in the spirit of memcached's ``stats`` command."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    sets: int = 0
    deletes: int = 0
    evictions: int = 0
    expired: int = 0

    @property
    def hit_ratio(self) -> float:
        if self.gets == 0:
            return 0.0
        return self.hits / self.gets

    @property
    def miss_ratio(self) -> float:
        """The model's ``r``: fraction of gets that missed."""
        if self.gets == 0:
            return 0.0
        return self.misses / self.gets


class CacheStore:
    """A single server's cache: hash table + slab LRU + expirations."""

    def __init__(
        self,
        capacity_bytes: int,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        min_chunk: int = DEFAULT_MIN_CHUNK,
        growth_factor: float = DEFAULT_GROWTH_FACTOR,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._slabs = SlabAllocator(
            capacity_bytes,
            page_size=page_size,
            min_chunk=min_chunk,
            growth_factor=growth_factor,
        )
        self._items: Dict[str, Item] = {}
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._next_cas = 1
        self.stats = StoreStats()

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        item = self._items.get(key)
        return item is not None and not item.expired(self._clock())

    def get(self, key: str) -> Optional[Item]:
        """Fetch an item; counts a hit or miss like the real server."""
        self.stats.gets += 1
        item = self._items.get(key)
        if item is None:
            self.stats.misses += 1
            return None
        if item.expired(self._clock()):
            self._remove(key)
            self.stats.expired += 1
            self.stats.misses += 1
            return None
        self._slabs.touch(key)
        self.stats.hits += 1
        return item

    def set(
        self,
        key: str,
        value: bytes,
        *,
        flags: int = 0,
        ttl: Optional[float] = None,
    ) -> Item:
        """Store (or replace) an item, evicting LRU items as needed."""
        if not key:
            raise ValidationError("key must be non-empty")
        if key in self._items:
            self._remove(key)
        expires_at = None if ttl is None else self._clock() + float(ttl)
        item = Item(
            key=key,
            value=bytes(value),
            flags=int(flags),
            expires_at=expires_at,
            cas=self._next_cas,
        )
        self._next_cas += 1
        evicted = self._slabs.store(key, item.nbytes)
        if evicted is not None:
            del self._items[evicted]
            self.stats.evictions += 1
        self._items[key] = item
        self.stats.sets += 1
        return item

    def add(
        self,
        key: str,
        value: bytes,
        *,
        flags: int = 0,
        ttl: Optional[float] = None,
    ) -> bool:
        """Store only if the key is absent (memcached ``add``)."""
        if key in self:
            return False
        self.set(key, value, flags=flags, ttl=ttl)
        return True

    def replace(
        self,
        key: str,
        value: bytes,
        *,
        flags: int = 0,
        ttl: Optional[float] = None,
    ) -> bool:
        """Store only if the key is present (memcached ``replace``)."""
        if key not in self:
            return False
        self.set(key, value, flags=flags, ttl=ttl)
        return True

    def append(self, key: str, suffix: bytes) -> bool:
        """Concatenate after the existing value (memcached ``append``)."""
        return self._concat(key, suffix, after=True)

    def prepend(self, key: str, prefix: bytes) -> bool:
        """Concatenate before the existing value (memcached ``prepend``)."""
        return self._concat(key, prefix, after=False)

    def _concat(self, key: str, data: bytes, *, after: bool) -> bool:
        item = self._items.get(key)
        if item is None or item.expired(self._clock()):
            return False
        new_value = item.value + bytes(data) if after else bytes(data) + item.value
        self.set(key, new_value, flags=item.flags)
        # Preserve the original expiry (set() reset it).
        self._items[key].expires_at = item.expires_at
        return True

    def incr(self, key: str, delta: int = 1) -> Optional[int]:
        """Increment a decimal-string value (memcached ``incr``).

        Returns the new value, or None if the key is absent. Raises
        :class:`ValidationError` when the stored value is not an
        unsigned decimal, matching the server's CLIENT_ERROR.
        """
        return self._arith(key, int(delta))

    def decr(self, key: str, delta: int = 1) -> Optional[int]:
        """Decrement, clamped at zero like the real server."""
        return self._arith(key, -int(delta))

    def _arith(self, key: str, delta: int) -> Optional[int]:
        item = self._items.get(key)
        if item is None or item.expired(self._clock()):
            return None
        try:
            current = int(item.value.decode("ascii"))
            if current < 0:
                raise ValueError
        except (UnicodeDecodeError, ValueError):
            raise ValidationError(
                "cannot increment or decrement non-numeric value"
            ) from None
        new_value = max(0, current + delta)
        expires_at = item.expires_at
        self.set(key, str(new_value).encode("ascii"), flags=item.flags)
        self._items[key].expires_at = expires_at
        return new_value

    def touch(self, key: str, ttl: Optional[float]) -> bool:
        """Update an item's expiry without rewriting it (memcached ``touch``)."""
        item = self._items.get(key)
        if item is None or item.expired(self._clock()):
            return False
        item.expires_at = None if ttl is None else self._clock() + float(ttl)
        return True

    def delete(self, key: str) -> bool:
        """Remove an item; True when it existed."""
        if key not in self._items:
            return False
        self._remove(key)
        self.stats.deletes += 1
        return True

    def flush_all(self) -> None:
        """Drop every item (memcached's ``flush_all``)."""
        for key in list(self._items):
            self._remove(key)

    def _remove(self, key: str) -> None:
        del self._items[key]
        self._slabs.free(key)

    # ------------------------------------------------------------------

    def reassign_slab_page(self, from_class: int, to_class: int) -> int:
        """Move a slab page between classes, dropping evicted payloads.

        Returns the number of items evicted to free the page. Exposes
        memcached's ``slabs reassign`` at the store level.
        """
        evicted = self._slabs.reassign_page(from_class, to_class)
        for key in evicted:
            del self._items[key]
            self.stats.evictions += 1
        return len(evicted)

    def auto_rebalance(self) -> bool:
        """One automover step: move a page toward the evicting class.

        Returns True when a reassignment happened.
        """
        suggestion = self._slabs.suggest_reassignment()
        if suggestion is None:
            return False
        self.reassign_slab_page(*suggestion)
        return True

    def slab_class_index_for(self, nbytes: int) -> int:
        """The slab class an item of ``nbytes`` would land in."""
        return self._slabs.class_index_for(nbytes)

    def keys(self) -> Iterable[str]:
        """Snapshot of the stored keys."""
        return list(self._items.keys())

    def bytes_used(self) -> int:
        """Sum of item footprints currently stored."""
        return sum(item.nbytes for item in self._items.values())

    def slab_stats(self) -> list[SlabClassStats]:
        return self._slabs.stats()

    def miss_ratio(self) -> float:
        """Measured ``r`` so far."""
        return self.stats.miss_ratio
