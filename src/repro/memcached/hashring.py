"""Consistent-hash ring: the key-to-server mapping (paper §2.1).

Memcached clients pick a server per key with a hash; production clients
(ketama) use a consistent-hash ring with virtual nodes so that adding or
removing a server only remaps a ``1/M`` fraction of keys. The ring is
also where load imbalance enters the system: hot keys land on whichever
server owns their hash point.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence

from ..errors import ValidationError


def stable_hash(data: str) -> int:
    """64-bit stable hash (md5-based; NOT for security, for placement).

    Python's builtin ``hash`` is salted per process, which would make
    placements irreproducible across runs; md5 is stable everywhere.
    """
    digest = hashlib.md5(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Parameters
    ----------
    nodes:
        Server names (unique).
    replicas:
        Virtual nodes per server; more replicas → smoother shares.
    """

    def __init__(self, nodes: Sequence[str], *, replicas: int = 128) -> None:
        if replicas < 1:
            raise ValidationError(f"replicas must be >= 1, got {replicas}")
        self._replicas = int(replicas)
        self._ring: List[int] = []
        self._owner: Dict[int, str] = {}
        self._nodes: List[str] = []
        seen = set()
        for node in nodes:
            if node in seen:
                raise ValidationError(f"duplicate node name: {node!r}")
            seen.add(node)
            self._insert(node)

    def _insert(self, node: str) -> None:
        for replica in range(self._replicas):
            point = stable_hash(f"{node}#{replica}")
            if point in self._owner:
                # Astronomically unlikely 64-bit collision; perturb.
                point = stable_hash(f"{node}#{replica}#salt")
            index = bisect.bisect(self._ring, point)
            self._ring.insert(index, point)
            self._owner[point] = node
        self._nodes.append(node)

    # ------------------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """Current server names, in insertion order."""
        return list(self._nodes)

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def add_node(self, node: str) -> None:
        """Add a server; only ~1/M of keys remap."""
        if node in self._nodes:
            raise ValidationError(f"node already present: {node!r}")
        self._insert(node)

    def remove_node(self, node: str) -> None:
        """Remove a server; its keys spill to ring successors."""
        if node not in self._nodes:
            raise ValidationError(f"unknown node: {node!r}")
        self._nodes.remove(node)
        points = [p for p, owner in self._owner.items() if owner == node]
        for point in points:
            del self._owner[point]
            index = bisect.bisect_left(self._ring, point)
            self._ring.pop(index)

    def node_for(self, key: str) -> str:
        """The server owning ``key``."""
        if not self._ring:
            raise ValidationError("ring has no nodes")
        point = stable_hash(key)
        index = bisect.bisect(self._ring, point)
        if index == len(self._ring):
            index = 0
        return self._owner[self._ring[index]]

    def index_for(self, key: str) -> int:
        """The server's index in :attr:`nodes` (for array-based callers)."""
        return self._nodes.index(self.node_for(key))

    def load_shares(self, keys: Sequence[str], weights: Optional[Sequence[float]] = None) -> List[float]:
        """Empirical load shares ``{p_j}`` induced by a key population.

        With ``weights`` (e.g. Zipf popularity) the shares are weighted
        by access frequency — exactly the model's ``p_j``: the
        probability that a random *access* lands on server ``j``.
        """
        if weights is not None and len(weights) != len(keys):
            raise ValidationError("weights must match keys")
        totals = {node: 0.0 for node in self._nodes}
        for i, key in enumerate(keys):
            weight = 1.0 if weights is None else float(weights[i])
            if weight < 0:
                raise ValidationError("weights must be non-negative")
            totals[self.node_for(key)] += weight
        grand = sum(totals.values())
        if grand <= 0:
            raise ValidationError("total weight must be positive")
        return [totals[node] / grand for node in self._nodes]


class ModuloRouter:
    """Naive ``hash(key) % M`` placement — the non-consistent baseline.

    Kept for comparisons: on resize it remaps nearly all keys, which is
    why production systems use the ring.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
        self._n = int(n_nodes)

    @property
    def n_nodes(self) -> int:
        return self._n

    def index_for(self, key: str) -> int:
        return stable_hash(key) % self._n

    def remap_fraction(self, new_size: int, sample_keys: Sequence[str]) -> float:
        """Fraction of sampled keys that move when resizing to ``new_size``."""
        if new_size < 1:
            raise ValidationError(f"new_size must be >= 1, got {new_size}")
        if not sample_keys:
            raise ValidationError("need at least one sample key")
        moved = sum(
            1
            for key in sample_keys
            if stable_hash(key) % self._n != stable_hash(key) % new_size
        )
        return moved / len(sample_keys)
