"""Executable Memcached substrate: stores, slabs, ring, protocol.

A faithful in-process reimplementation of the cache layer the paper's
testbed ran: consistent hashing (:class:`HashRing`), slab-class memory
management (:class:`SlabAllocator`), per-class LRU eviction, item
expiry, the ASCII protocol subset, and a cluster client
(:class:`MemcachedCluster`) whose measured miss ratios and load shares
feed the analytic model.
"""

from .adapter import SimulatedCacheBackend
from .cluster import MemcachedCluster
from .hashring import HashRing, ModuloRouter, stable_hash
from .hitrate import (
    capacity_for_miss_ratio,
    che_characteristic_time,
    items_per_capacity_bytes,
    lru_hit_ratio,
    lru_miss_ratio,
    miss_ratio_curve,
    zipf_miss_ratio,
)
from .lru import LRUList
from .protocol import (
    ArithCommand,
    Command,
    DeleteCommand,
    FlushCommand,
    GetCommand,
    SetCommand,
    StatsCommand,
    StoreVariantCommand,
    TouchCommand,
    VersionCommand,
    parse_command,
    render_get_response,
    render_stats,
)
from .server import MemcachedServer
from .slab import (
    DEFAULT_GROWTH_FACTOR,
    DEFAULT_MIN_CHUNK,
    DEFAULT_PAGE_SIZE,
    SlabAllocator,
    SlabClassStats,
    build_chunk_sizes,
)
from .store import ITEM_OVERHEAD, CacheStore, Item, StoreStats

__all__ = [
    "ArithCommand",
    "Command",
    "StoreVariantCommand",
    "TouchCommand",
    "CacheStore",
    "DEFAULT_GROWTH_FACTOR",
    "DEFAULT_MIN_CHUNK",
    "DEFAULT_PAGE_SIZE",
    "DeleteCommand",
    "FlushCommand",
    "GetCommand",
    "HashRing",
    "ITEM_OVERHEAD",
    "Item",
    "LRUList",
    "MemcachedCluster",
    "MemcachedServer",
    "ModuloRouter",
    "SetCommand",
    "SimulatedCacheBackend",
    "SlabAllocator",
    "SlabClassStats",
    "StatsCommand",
    "StoreStats",
    "VersionCommand",
    "build_chunk_sizes",
    "capacity_for_miss_ratio",
    "che_characteristic_time",
    "items_per_capacity_bytes",
    "lru_hit_ratio",
    "lru_miss_ratio",
    "miss_ratio_curve",
    "parse_command",
    "zipf_miss_ratio",
    "render_get_response",
    "render_stats",
    "stable_hash",
]
