"""Bridges between the executable cache and the simulator/model.

:class:`SimulatedCacheBackend` plugs a real :class:`MemcachedCluster`
into :class:`~repro.simulation.system.MemcachedSystemSimulator`: each
simulated key performs an actual ``get`` against the store (demand-
filling on miss), so the system's miss ratio *emerges* from cache size,
population and popularity skew instead of being assumed.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..distributions import Zipf
from ..errors import ValidationError
from .cluster import MemcachedCluster


class SimulatedCacheBackend:
    """CacheBackend over a real cluster with a Zipf-popular key catalog.

    The simulator supplies synthetic per-request key names; those are
    remapped onto a fixed catalog of ``n_items`` keys with Zipf
    popularity, because miss behaviour depends on re-reference patterns,
    not on the simulator's unique IDs.
    """

    def __init__(
        self,
        cluster: MemcachedCluster,
        *,
        n_items: int,
        zipf_s: float = 0.9,
        value_size: int = 512,
        rng: Optional[np.random.Generator] = None,
        demand_fill: bool = True,
    ) -> None:
        if n_items < 1:
            raise ValidationError(f"n_items must be >= 1, got {n_items}")
        if value_size < 1:
            raise ValidationError(f"value_size must be >= 1, got {value_size}")
        self._cluster = cluster
        self._popularity = Zipf(n_items, zipf_s)
        self._value = bytes(value_size)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._demand_fill = demand_fill
        self.lookups = 0
        self.misses = 0

    def catalog_key(self, rank: int) -> str:
        """Stable key name for a catalog rank."""
        return f"item:{rank}"

    def lookup(self, server_index: int, key: str) -> bool:
        """Simulate one access: draw a catalog key, hit the real cache.

        ``server_index`` from the simulator is ignored; the *ring*
        decides placement, which is the point of the integration — the
        measured shares come from real hashing.
        """
        rank = int(self._popularity.sample(self._rng))
        name = self.catalog_key(rank)
        self.lookups += 1
        item = self._cluster.get(name)
        if item is not None:
            return True
        self.misses += 1
        if self._demand_fill:
            self._cluster.set(name, self._value)
        return False

    @property
    def measured_miss_ratio(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.misses / self.lookups

    def warm(self, fraction: float = 1.0) -> int:
        """Pre-load the most popular ``fraction`` of the catalog.

        Returns how many items were inserted. Warming the head of the
        popularity law gives a realistic steady-state starting point.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValidationError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, int(self._popularity.n_items * fraction))
        for rank in range(1, count + 1):
            self._cluster.set(self.catalog_key(rank), self._value)
        return count

    def model_shares(self, sample_ranks: int = 2000) -> Sequence[float]:
        """Popularity-weighted shares ``{p_j}`` induced by the ring."""
        count = min(sample_ranks, self._popularity.n_items)
        keys = [self.catalog_key(rank) for rank in range(1, count + 1)]
        weights = self._popularity.probabilities[:count]
        return self._cluster.ring.load_shares(keys, weights)
