"""LRU hit-rate theory: the Che approximation and cache sizing.

The paper's §2.2 surveys systems (Cliffhanger, Dynacache, Mimir, ...)
that tune cache allocations from *hit-rate curves*. This module provides
those curves analytically for LRU under the independent reference model:

* :func:`che_characteristic_time` — the Che approximation's ``T_C``,
  the unique root of ``sum_i (1 - exp(-p_i T)) = C``;
* :func:`lru_hit_ratio` — hit ratio of an LRU cache of ``C`` items;
* :func:`miss_ratio_curve` — the full miss-ratio-vs-capacity curve;
* :func:`capacity_for_miss_ratio` — invert the curve: how many items
  must fit to reach a target ``r``.

This closes the loop between the executable cache and the latency
model: capacity -> (Che) -> miss ratio ``r`` -> (Theorem 1 part 3) ->
database latency.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np
from scipy import optimize

from ..distributions import Zipf
from ..errors import ValidationError


def _validate_popularity(popularity: Sequence[float]) -> np.ndarray:
    probs = np.asarray(popularity, dtype=float)
    if probs.ndim != 1 or probs.size == 0:
        raise ValidationError("popularity must be a non-empty 1-D sequence")
    if np.any(probs < 0):
        raise ValidationError("popularity must be non-negative")
    total = float(probs.sum())
    if not math.isclose(total, 1.0, rel_tol=1e-6):
        raise ValidationError(f"popularity must sum to 1, got {total}")
    return probs


def che_characteristic_time(
    popularity: Sequence[float], capacity_items: float
) -> float:
    """The Che characteristic time ``T_C`` (in units of requests).

    Solves ``sum_i (1 - exp(-p_i T)) = C``. An item is in the cache iff
    it was referenced within the last ``T_C`` requests.
    """
    probs = _validate_popularity(popularity)
    n = probs.size
    if not 0 < capacity_items < n:
        raise ValidationError(
            f"capacity must be in (0, {n}) items, got {capacity_items}"
        )

    def occupied(t: float) -> float:
        return float(np.sum(-np.expm1(-probs * t))) - capacity_items

    # Bracket: at T = C the sum is < C (since 1 - e^-x < x); grow until
    # the occupied mass exceeds the capacity.
    lo = float(capacity_items)
    hi = lo
    for _ in range(200):
        hi *= 2.0
        if occupied(hi) > 0:
            break
    else:
        raise ValidationError("failed to bracket the Che fixed point")
    return float(optimize.brentq(occupied, lo, hi, xtol=1e-9, rtol=1e-12))


def lru_hit_ratio(popularity: Sequence[float], capacity_items: float) -> float:
    """Che-approximation hit ratio of an LRU cache of ``capacity_items``."""
    probs = _validate_popularity(popularity)
    if capacity_items >= probs.size:
        return 1.0
    t_c = che_characteristic_time(probs, capacity_items)
    return float(np.sum(probs * -np.expm1(-probs * t_c)))


def lru_miss_ratio(popularity: Sequence[float], capacity_items: float) -> float:
    """``r = 1 - hit ratio`` — the model's miss ratio from first principles."""
    return 1.0 - lru_hit_ratio(popularity, capacity_items)


def miss_ratio_curve(
    popularity: Sequence[float], capacities: Sequence[float]
) -> List[float]:
    """Miss ratio at each capacity — the Cliffhanger-style curve."""
    return [lru_miss_ratio(popularity, float(c)) for c in capacities]


def capacity_for_miss_ratio(
    popularity: Sequence[float], target_miss_ratio: float
) -> float:
    """Smallest capacity (items) achieving ``r <= target_miss_ratio``.

    Inverts the (monotone) Che curve by bisection on the capacity.
    """
    probs = _validate_popularity(popularity)
    if not 0.0 < target_miss_ratio < 1.0:
        raise ValidationError(
            f"target_miss_ratio must be in (0, 1), got {target_miss_ratio}"
        )
    n = probs.size
    if lru_miss_ratio(probs, n - 1e-9) > target_miss_ratio:
        raise ValidationError(
            "target miss ratio unreachable: even caching every item "
            "leaves compulsory misses above the target"
        )
    lo, hi = 1e-9 * n, float(n) - 1e-9
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if lru_miss_ratio(probs, mid) <= target_miss_ratio:
            hi = mid
        else:
            lo = mid
        if hi - lo < 1e-6 * n:
            break
    return hi


def zipf_miss_ratio(n_items: int, zipf_s: float, capacity_items: float) -> float:
    """Convenience: miss ratio of an LRU cache for a Zipf catalog."""
    return lru_miss_ratio(Zipf(n_items, zipf_s).probabilities, capacity_items)


def items_per_capacity_bytes(
    capacity_bytes: int, mean_item_bytes: float, *, overhead_bytes: float = 48.0
) -> float:
    """Approximate item capacity of a byte budget (slab overhead included)."""
    if capacity_bytes <= 0:
        raise ValidationError(f"capacity_bytes must be > 0, got {capacity_bytes}")
    if mean_item_bytes <= 0:
        raise ValidationError(f"mean_item_bytes must be > 0, got {mean_item_bytes}")
    return capacity_bytes / (mean_item_bytes + overhead_bytes)
