"""Memcached text-protocol subset: parsing and rendering.

Implements the classic ASCII commands the paper's workload exercises —
``get``/``gets`` (multi-key), ``set``, ``delete``, ``flush_all``,
``stats``, ``version`` — as pure functions between wire lines and typed
command/response objects. The in-process server speaks this dialect so
examples can demonstrate a realistic request path without sockets.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

from ..errors import ProtocolError

MAX_KEY_LENGTH = 250


def _validate_key(key: str) -> str:
    if not key or len(key) > MAX_KEY_LENGTH:
        raise ProtocolError(f"invalid key length: {len(key)}")
    if any(c in key for c in (" ", "\r", "\n", "\t")):
        raise ProtocolError(f"key contains whitespace/control characters: {key!r}")
    return key


@dataclasses.dataclass(frozen=True)
class GetCommand:
    """``get <key>+`` — multi-key fetch (one request, many keys)."""

    keys: tuple
    with_cas: bool = False


@dataclasses.dataclass(frozen=True)
class SetCommand:
    """``set <key> <flags> <exptime> <bytes>`` + data block."""

    key: str
    flags: int
    exptime: float
    value: bytes
    noreply: bool = False


@dataclasses.dataclass(frozen=True)
class StoreVariantCommand:
    """``add|replace|append|prepend <key> <flags> <exptime> <bytes>``."""

    verb: str
    key: str
    flags: int
    exptime: float
    value: bytes
    noreply: bool = False


@dataclasses.dataclass(frozen=True)
class ArithCommand:
    """``incr|decr <key> <delta>``."""

    verb: str
    key: str
    delta: int
    noreply: bool = False


@dataclasses.dataclass(frozen=True)
class TouchCommand:
    """``touch <key> <exptime>``."""

    key: str
    exptime: float
    noreply: bool = False


@dataclasses.dataclass(frozen=True)
class DeleteCommand:
    """``delete <key>``."""

    key: str
    noreply: bool = False


@dataclasses.dataclass(frozen=True)
class FlushCommand:
    """``flush_all``."""

    noreply: bool = False


@dataclasses.dataclass(frozen=True)
class StatsCommand:
    """``stats``."""


@dataclasses.dataclass(frozen=True)
class VersionCommand:
    """``version``."""


Command = Union[
    GetCommand,
    SetCommand,
    StoreVariantCommand,
    ArithCommand,
    TouchCommand,
    DeleteCommand,
    FlushCommand,
    StatsCommand,
    VersionCommand,
]

STORE_VARIANTS = ("add", "replace", "append", "prepend")


def parse_command(line: str, data: Optional[bytes] = None) -> Command:
    """Parse one request line (plus ``data`` block for storage commands)."""
    line = line.rstrip("\r\n")
    if not line:
        raise ProtocolError("empty command line")
    parts = line.split(" ")
    verb = parts[0].lower()

    if verb in ("get", "gets"):
        if len(parts) < 2:
            raise ProtocolError("get requires at least one key")
        keys = tuple(_validate_key(k) for k in parts[1:])
        return GetCommand(keys=keys, with_cas=(verb == "gets"))

    if verb == "set":
        if len(parts) not in (5, 6):
            raise ProtocolError(f"set expects 4 or 5 arguments, got {len(parts) - 1}")
        key = _validate_key(parts[1])
        try:
            flags = int(parts[2])
            exptime = float(parts[3])
            nbytes = int(parts[4])
        except ValueError as exc:
            raise ProtocolError(f"bad set arguments: {line!r}") from exc
        noreply = len(parts) == 6
        if noreply and parts[5] != "noreply":
            raise ProtocolError(f"unexpected trailing token: {parts[5]!r}")
        if data is None:
            raise ProtocolError("set requires a data block")
        if len(data) != nbytes:
            raise ProtocolError(
                f"data block length {len(data)} != declared {nbytes}"
            )
        return SetCommand(
            key=key, flags=flags, exptime=exptime, value=bytes(data), noreply=noreply
        )

    if verb in STORE_VARIANTS:
        if len(parts) not in (5, 6):
            raise ProtocolError(
                f"{verb} expects 4 or 5 arguments, got {len(parts) - 1}"
            )
        key = _validate_key(parts[1])
        try:
            flags = int(parts[2])
            exptime = float(parts[3])
            nbytes = int(parts[4])
        except ValueError as exc:
            raise ProtocolError(f"bad {verb} arguments: {line!r}") from exc
        noreply = len(parts) == 6
        if noreply and parts[5] != "noreply":
            raise ProtocolError(f"unexpected trailing token: {parts[5]!r}")
        if data is None:
            raise ProtocolError(f"{verb} requires a data block")
        if len(data) != nbytes:
            raise ProtocolError(
                f"data block length {len(data)} != declared {nbytes}"
            )
        return StoreVariantCommand(
            verb=verb, key=key, flags=flags, exptime=exptime,
            value=bytes(data), noreply=noreply,
        )

    if verb in ("incr", "decr"):
        if len(parts) not in (3, 4):
            raise ProtocolError(f"{verb} expects a key and a delta")
        noreply = len(parts) == 4
        if noreply and parts[3] != "noreply":
            raise ProtocolError(f"unexpected trailing token: {parts[3]!r}")
        try:
            delta = int(parts[2])
        except ValueError as exc:
            raise ProtocolError(f"bad delta: {parts[2]!r}") from exc
        if delta < 0:
            raise ProtocolError("delta must be unsigned")
        return ArithCommand(
            verb=verb, key=_validate_key(parts[1]), delta=delta, noreply=noreply
        )

    if verb == "touch":
        if len(parts) not in (3, 4):
            raise ProtocolError("touch expects a key and an exptime")
        noreply = len(parts) == 4
        if noreply and parts[3] != "noreply":
            raise ProtocolError(f"unexpected trailing token: {parts[3]!r}")
        try:
            exptime = float(parts[2])
        except ValueError as exc:
            raise ProtocolError(f"bad exptime: {parts[2]!r}") from exc
        return TouchCommand(
            key=_validate_key(parts[1]), exptime=exptime, noreply=noreply
        )

    if verb == "delete":
        if len(parts) not in (2, 3):
            raise ProtocolError("delete expects one key")
        noreply = len(parts) == 3
        if noreply and parts[2] != "noreply":
            raise ProtocolError(f"unexpected trailing token: {parts[2]!r}")
        return DeleteCommand(key=_validate_key(parts[1]), noreply=noreply)

    if verb == "flush_all":
        noreply = len(parts) == 2 and parts[1] == "noreply"
        if len(parts) > 2 or (len(parts) == 2 and not noreply):
            raise ProtocolError(f"bad flush_all arguments: {line!r}")
        return FlushCommand(noreply=noreply)

    if verb == "stats":
        return StatsCommand()

    if verb == "version":
        return VersionCommand()

    raise ProtocolError(f"unknown command: {verb!r}")


# ----------------------------------------------------------------------
# Response rendering.
# ----------------------------------------------------------------------


def render_value(key: str, flags: int, value: bytes, cas: Optional[int] = None) -> str:
    """One ``VALUE`` block of a get response."""
    suffix = f" {cas}" if cas is not None else ""
    return f"VALUE {key} {flags} {len(value)}{suffix}\r\n" + value.decode(
        "latin-1"
    ) + "\r\n"


def render_get_response(
    items: Sequence[tuple], *, with_cas: bool = False
) -> str:
    """Full get response: VALUE blocks then END.

    ``items`` are ``(key, flags, value, cas)`` tuples for the hits.
    """
    blocks: List[str] = []
    for key, flags, value, cas in items:
        blocks.append(render_value(key, flags, value, cas if with_cas else None))
    blocks.append("END\r\n")
    return "".join(blocks)


def render_stored() -> str:
    return "STORED\r\n"


def render_not_stored() -> str:
    return "NOT_STORED\r\n"


def render_touched(found: bool) -> str:
    return "TOUCHED\r\n" if found else "NOT_FOUND\r\n"


def render_arith(result: Optional[int]) -> str:
    """incr/decr response: the new value, or NOT_FOUND."""
    if result is None:
        return "NOT_FOUND\r\n"
    return f"{result}\r\n"


def render_deleted(found: bool) -> str:
    return "DELETED\r\n" if found else "NOT_FOUND\r\n"


def render_ok() -> str:
    return "OK\r\n"


def render_error(message: str) -> str:
    return f"CLIENT_ERROR {message}\r\n"


def render_stats(pairs: Sequence[tuple]) -> str:
    """``STAT name value`` lines then END."""
    lines = [f"STAT {name} {value}\r\n" for name, value in pairs]
    lines.append("END\r\n")
    return "".join(lines)
