"""Per-request span trees with bounded retention.

Answers the question the aggregate recorders cannot: *which key on
which server pushed this request past the 99th percentile*. Each
completed request leaves a tree of spans (request → key → network /
queue / service / database) stamped in simulated time, with attributes
such as the server index, hit/miss, and the queue depth seen at
enqueue. Retention is bounded two ways so tracing can stay on for
arbitrarily long runs: a ring buffer of the most recent roots and a
min-heap of the slowest-K requests ever observed.
"""

from __future__ import annotations

import collections
import heapq
import itertools
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ValidationError


class Span:
    """One timed operation; spans nest into a tree."""

    __slots__ = ("name", "start", "end", "attributes", "children")

    def __init__(
        self,
        name: str,
        start: float,
        *,
        end: Optional[float] = None,
        **attributes: object,
    ) -> None:
        self.name = name
        self.start = float(start)
        self.end = float(end) if end is not None else None
        self.attributes: Dict[str, object] = dict(attributes)
        self.children: List["Span"] = []

    def child(
        self,
        name: str,
        start: float,
        *,
        end: Optional[float] = None,
        **attributes: object,
    ) -> "Span":
        """Create, attach, and return a child span."""
        span = Span(name, start, end=end, **attributes)
        self.children.append(span)
        return span

    def finish(self, end: float) -> None:
        if end < self.start:
            raise ValidationError(
                f"span {self.name!r} cannot end at {end} before start {self.start}"
            )
        self.end = float(end)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValidationError(f"span {self.name!r} has not finished")
        return self.end - self.start

    def walk(self) -> List["Span"]:
        """This span and all descendants, depth first."""
        out = [self]
        for child in self.children:
            out.extend(child.walk())
        return out

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Span":
        span = cls(
            str(payload["name"]),
            float(payload["start"]),
            end=payload.get("end"),
            **dict(payload.get("attributes", {})),
        )
        for child in payload.get("children", []):
            span.children.append(cls.from_dict(child))
        return span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        end = f"{self.end:.6g}" if self.end is not None else "?"
        return f"Span({self.name!r}, [{self.start:.6g}, {end}], {len(self.children)} children)"


class Tracer:
    """Collects finished request roots under two retention policies.

    ``capacity`` bounds the ring buffer of recent requests;
    ``slowest_k`` bounds the all-time slowest set. Both are O(log K)
    per finished request and O(1) memory, so tracing every request of a
    multi-hour run is safe.
    """

    def __init__(self, *, capacity: int = 1024, slowest_k: int = 10) -> None:
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        if slowest_k < 1:
            raise ValidationError(f"slowest_k must be >= 1, got {slowest_k}")
        self._capacity = capacity
        self._slowest_k = slowest_k
        self._recent: Deque[Span] = collections.deque(maxlen=capacity)
        # Min-heap of (duration, seq, span): the root is the *fastest*
        # of the retained slow set and is evicted first.
        self._slow: List[Tuple[float, int, Span]] = []
        self._seq = itertools.count()
        self._started = 0
        self._finished = 0

    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def slowest_k(self) -> int:
        return self._slowest_k

    @property
    def started(self) -> int:
        """Root spans handed out."""
        return self._started

    @property
    def finished(self) -> int:
        """Root spans completed (may exceed what is retained)."""
        return self._finished

    def start_request(self, name: str, start: float, **attributes: object) -> Span:
        """Open a new root span."""
        self._started += 1
        return Span(name, start, **attributes)

    def finish_request(self, span: Span, end: Optional[float] = None) -> None:
        """Close a root span and fold it into both retention sets."""
        if end is not None:
            span.finish(end)
        if not span.finished:
            raise ValidationError(f"root span {span.name!r} has no end time")
        self._finished += 1
        self._recent.append(span)
        entry = (span.duration, next(self._seq), span)
        if len(self._slow) < self._slowest_k:
            heapq.heappush(self._slow, entry)
        elif entry[0] > self._slow[0][0]:
            heapq.heapreplace(self._slow, entry)

    # ------------------------------------------------------------------

    def recent(self) -> List[Span]:
        """The ring buffer, oldest first."""
        return list(self._recent)

    def slowest(self, k: Optional[int] = None) -> List[Span]:
        """The retained slowest requests, slowest first."""
        ranked = sorted(self._slow, key=lambda entry: (-entry[0], entry[1]))
        spans = [span for _, _, span in ranked]
        if k is not None:
            spans = spans[:k]
        return spans

    def reset(self) -> None:
        """Drop retained spans (counters restart too)."""
        self._recent.clear()
        self._slow.clear()
        self._started = 0
        self._finished = 0
