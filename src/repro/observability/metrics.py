"""Cheap always-on metric primitives: histograms, counters, gauges.

The paper's analysis decomposes latency per stage; validating that
decomposition on a live run needs per-stage distributions that are cheap
to record (O(1) per observation, no sample storage). :class:`Histogram`
is an HDR-style log-bucketed histogram — fixed relative error per
bucket, quantiles by interpolation — and :class:`MetricsRegistry` is the
namespace the simulator components publish into. Exact-moment paths
(Table 3 confidence intervals) keep using
:class:`~repro.simulation.metrics.LatencyRecorder`; these primitives
cover everything else.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ValidationError


class Histogram:
    """Log-bucketed histogram with bounded relative error.

    Bucket ``i`` covers ``[min_value * g**i, min_value * g**(i+1))`` with
    ``g = 10 ** (1 / buckets_per_decade)``, so every recorded value is
    off by at most a factor ``g`` (~4.7% at the default resolution).
    Zero is tracked in a dedicated bucket; sub-``min_value`` positives
    clamp into bucket 0. Storage is a sparse dict, so wide dynamic
    ranges (nanoseconds to seconds) stay small.
    """

    def __init__(
        self,
        *,
        min_value: float = 1e-9,
        buckets_per_decade: int = 50,
    ) -> None:
        if min_value <= 0:
            raise ValidationError(f"min_value must be > 0, got {min_value}")
        if buckets_per_decade < 1:
            raise ValidationError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self._min_value = float(min_value)
        self._bpd = int(buckets_per_decade)
        self._log_min = math.log10(self._min_value)
        self._counts: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def record(self, value: float) -> None:
        """Add one observation (must be finite and >= 0)."""
        value = float(value)
        if not math.isfinite(value):
            raise ValidationError(f"observation must be finite, got {value}")
        if value < 0:
            raise ValidationError(f"observation must be >= 0, got {value}")
        self._count += 1
        self._sum += value
        self._sumsq += value * value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if value == 0.0:
            self._zero += 1
            return
        index = self.bucket_index(value)
        self._counts[index] = self._counts.get(index, 0) + 1

    def record_many(self, values: Sequence[float]) -> None:
        """Add a batch of observations (vectorized).

        Produces bit-identical state to calling :meth:`record` per value
        — the numpy bucket computation reproduces the scalar boundary
        nudge — but runs as array operations, so windowed telemetry can
        bulk-load thousands of latencies without a per-event Python
        loop.
        """
        import numpy as np

        array = np.asarray(values, dtype=float).ravel()
        if array.size == 0:
            return
        if not np.isfinite(array).all():
            bad = array[~np.isfinite(array)][0]
            raise ValidationError(f"observation must be finite, got {bad}")
        if (array < 0).any():
            bad = array[array < 0][0]
            raise ValidationError(f"observation must be >= 0, got {bad}")
        self._count += int(array.size)
        self._sum += float(array.sum())
        self._sumsq += float(np.square(array).sum())
        self._min = min(self._min, float(array.min()))
        self._max = max(self._max, float(array.max()))
        positive = array[array > 0.0]
        self._zero += int(array.size - positive.size)
        if positive.size == 0:
            return
        clamped = positive <= self._min_value
        index = np.zeros(positive.size, dtype=np.int64)
        free = ~clamped
        if free.any():
            vals = positive[free]
            idx = np.floor((np.log10(vals) - self._log_min) * self._bpd).astype(
                np.int64
            )
            # Same float-boundary nudge as the scalar bucket_index.
            lower = 10.0 ** (self._log_min + idx / self._bpd)
            upper = 10.0 ** (self._log_min + (idx + 1) / self._bpd)
            down = vals < lower
            up = (~down) & (vals >= upper)
            index[free] = idx - down.astype(np.int64) + up.astype(np.int64)
        uniques, counts = np.unique(index, return_counts=True)
        for bucket, count in zip(uniques.tolist(), counts.tolist()):
            self._counts[bucket] = self._counts.get(bucket, 0) + count

    # ------------------------------------------------------------------
    # Bucket geometry.
    # ------------------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """Index of the bucket holding ``value`` (clamped at 0)."""
        if value <= self._min_value:
            return 0
        index = int(math.floor((math.log10(value) - self._log_min) * self._bpd))
        # Guard the float boundary: log10 rounding can land a value one
        # bucket high or low; nudge so bounds contain the value.
        lo, hi = self.bucket_bounds(index)
        if value < lo:
            return index - 1
        if value >= hi:
            return index + 1
        return index

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """``[lower, upper)`` value bounds of bucket ``index``."""
        lower = 10.0 ** (self._log_min + index / self._bpd)
        upper = 10.0 ** (self._log_min + (index + 1) / self._bpd)
        return lower, upper

    def buckets(self) -> List[Tuple[float, float, int]]:
        """Sorted non-empty ``(lower, upper, count)`` triples (zeros first)."""
        out: List[Tuple[float, float, int]] = []
        if self._zero:
            out.append((0.0, 0.0, self._zero))
        for index in sorted(self._counts):
            lower, upper = self.bucket_bounds(index)
            out.append((lower, upper, self._counts[index]))
        return out

    # ------------------------------------------------------------------
    # Statistics.
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValidationError("no observations recorded")
        return self._sum / self._count

    @property
    def std(self) -> float:
        if self._count < 2:
            return 0.0
        mean = self._sum / self._count
        var = max(0.0, (self._sumsq - self._count * mean * mean) / (self._count - 1))
        return math.sqrt(var)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValidationError("no observations recorded")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValidationError("no observations recorded")
        return self._max

    def quantile(self, k: float) -> float:
        """Approximate k-th quantile by within-bucket interpolation."""
        if not 0.0 <= k <= 1.0:
            raise ValidationError(f"quantile level must be in [0, 1]: {k}")
        if self._count == 0:
            raise ValidationError("no observations recorded")
        rank = k * self._count
        seen = 0.0
        for lower, upper, count in self.buckets():
            if seen + count >= rank:
                if upper == 0.0:  # the zero bucket
                    return 0.0
                fraction = (rank - seen) / count
                value = lower + (upper - lower) * fraction
                return min(max(value, self._min), self._max)
            seen += count
        return self._max

    def quantiles(self, ks: Sequence[float]) -> List[float]:
        return [self.quantile(float(k)) for k in ks]

    def count_above(self, threshold: float) -> float:
        """Observations exceeding ``threshold``, at bucket resolution.

        The bucket straddling the threshold contributes a linearly
        interpolated fraction, mirroring :meth:`quantile`; the result is
        therefore a float. This powers burn-rate SLO rules (fraction of
        requests over the latency objective) without storing samples.
        """
        threshold = float(threshold)
        if not math.isfinite(threshold):
            raise ValidationError(f"threshold must be finite, got {threshold}")
        total = 0.0
        for lower, upper, count in self.buckets():
            if upper <= threshold:
                continue
            if lower >= threshold:
                total += count
            else:
                total += count * (upper - threshold) / (upper - lower)
        return total

    def summary(self) -> Dict[str, float]:
        """JSON-ready summary (count, moments, standard percentiles)."""
        if self._count == 0:
            return {"count": 0}
        return {
            "count": self._count,
            "mean": self.mean,
            "std": self.std,
            "min": self._min,
            "max": self._max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    # ------------------------------------------------------------------
    # Lifecycle / persistence.
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Drop all observations (bucket geometry is kept)."""
        self._counts.clear()
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._min = math.inf
        self._max = -math.inf

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same geometry) into this one."""
        if (other._min_value, other._bpd) != (self._min_value, self._bpd):
            raise ValidationError("cannot merge histograms with different buckets")
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self._zero += other._zero
        self._count += other._count
        self._sum += other._sum
        self._sumsq += other._sumsq
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "min_value": self._min_value,
            "buckets_per_decade": self._bpd,
            "zero": self._zero,
            "counts": {str(index): count for index, count in sorted(self._counts.items())},
            "count": self._count,
            "sum": self._sum,
            "sumsq": self._sumsq,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Histogram":
        hist = cls(
            min_value=float(payload["min_value"]),
            buckets_per_decade=int(payload["buckets_per_decade"]),
        )
        hist._zero = int(payload["zero"])
        hist._counts = {
            int(index): int(count)
            for index, count in dict(payload["counts"]).items()
        }
        hist._count = int(payload["count"])
        hist._sum = float(payload["sum"])
        hist._sumsq = float(payload["sumsq"])
        hist._min = float(payload["min"]) if payload.get("min") is not None else math.inf
        hist._max = float(payload["max"]) if payload.get("max") is not None else -math.inf
        return hist


class Counter:
    """Monotonic event counter."""

    def __init__(self) -> None:
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValidationError(f"counter increments must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def merge(self, other: "Counter") -> None:
        """Fold another counter into this one (sum of totals)."""
        self._value += other._value

    def to_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Point-in-time level that also tracks min/max/mean of its samples."""

    def __init__(self) -> None:
        self._value = 0.0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def set(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValidationError(f"gauge value must be finite, got {value}")
        self._value = value
        self._count += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def value(self) -> float:
        return self._value

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValidationError("gauge never set")
        return self._max

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValidationError("gauge never set")
        return self._min

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValidationError("gauge never set")
        return self._sum / self._count

    def reset(self) -> None:
        self.__init__()

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge's sample history into this one.

        The point-in-time ``value`` keeps the other gauge's last set
        when it has samples (merge order models observation order).
        """
        if other._count:
            self._value = other._value
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def to_dict(self) -> Dict[str, object]:
        if self._count == 0:
            return {"type": "gauge", "samples": 0}
        return {
            "type": "gauge",
            "value": self._value,
            "samples": self._count,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create namespace for the simulator's metrics.

    Components ask for a metric by dotted name (``server.0.wait``);
    re-asking returns the same object, so wiring does not need a central
    construction site. :meth:`snapshot` serializes everything for
    :class:`~repro.observability.report.RunReport`.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, **kwargs: object):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValidationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = kind(**kwargs)
        self._metrics[name] = metric
        return metric

    def histogram(self, name: str, **kwargs: object) -> Histogram:
        return self._get_or_create(name, Histogram, **kwargs)

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def get(self, name: str):
        if name not in self._metrics:
            raise ValidationError(f"unknown metric: {name!r}")
        return self._metrics[name]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def reset_all(self) -> None:
        """Reset every metric in place (references stay valid)."""
        for metric in self._metrics.values():
            metric.reset()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one, metric by metric.

        Names absent here are created with the other metric's geometry;
        names present in both must have the same kind (and, for
        histograms, the same bucket layout). This is the per-worker
        aggregation path: N workers record into private registries and
        the parent merges them exactly.
        """
        for name in other.names():
            theirs = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                if isinstance(theirs, Histogram):
                    mine = Histogram(
                        min_value=theirs._min_value,
                        buckets_per_decade=theirs._bpd,
                    )
                else:
                    mine = type(theirs)()
                self._metrics[name] = mine
            elif type(mine) is not type(theirs):
                raise ValidationError(
                    f"cannot merge metric {name!r}: "
                    f"{type(mine).__name__} vs {type(theirs).__name__}"
                )
            mine.merge(theirs)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Serializable view: histograms as summaries, plus raw state."""
        out: Dict[str, Dict[str, object]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            payload = metric.to_dict()
            if isinstance(metric, Histogram):
                payload["summary"] = metric.summary()
            out[name] = payload
        return out
