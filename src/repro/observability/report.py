"""Structured run reports: one JSON artifact per simulation run.

A :class:`RunReport` bundles what a human (or a regression harness)
needs to audit a run after the fact: the configuration, exact per-stage
summaries from the :class:`~repro.simulation.metrics.LatencyRecorder`s,
the metrics-registry snapshot, the event-loop profile, and the span
trees of the slowest requests. It round-trips through JSON and flattens
to CSV, and its serializer (:func:`to_jsonable`) is shared by the CLI's
``--json`` mode and the benchmark artifact writer so every surface emits
the same shapes.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import math
import os
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .._version import __version__
from ..errors import ConfigError, ValidationError
from .tracing import Span

#: Quantile levels reported for every stage.
STAGE_QUANTILES = (0.50, 0.90, 0.95, 0.99)

#: Environment override for the artifact git SHA (CI containers often
#: build from an export without a .git directory).
GIT_SHA_ENV = "REPRO_GIT_SHA"

_git_sha_cache: Dict[str, Optional[str]] = {}


def git_sha() -> Optional[str]:
    """The repository HEAD SHA, or ``None`` outside a git checkout.

    Checks :data:`GIT_SHA_ENV` first (uncached), then asks git once per
    process from the package directory.
    """
    override = os.environ.get(GIT_SHA_ENV)
    if override:
        return override.strip()
    if "sha" not in _git_sha_cache:
        _git_sha_cache["sha"] = _read_git_sha()
    return _git_sha_cache["sha"]


def _read_git_sha() -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def provenance() -> Dict[str, object]:
    """Version stamp written into every JSON artifact.

    Run reports, experiment checkpoints, timeline exports and benchmark
    artifacts all carry this block, so a perf or telemetry number can
    always be traced to the exact code that produced it. Beyond the
    code version, it records the engine-speed knobs in effect — the
    resolved scheduler backend (and whether it is the pure-python or
    compiled implementation) and the RNG pre-draw window size — so perf
    numbers are comparable across artifacts. Both knobs leave seeded
    results bit-identical.
    """
    from ..distributions import DEFAULT_RNG_WINDOW
    from ..simulation.scheduler import resolve_scheduler_name

    backend = resolve_scheduler_name(None)
    return {
        "repro_version": __version__,
        "git_sha": git_sha(),
        "scheduler_backend": backend,
        "scheduler_kind": "compiled" if backend == "compiled" else "python",
        "rng_window": DEFAULT_RNG_WINDOW,
    }


def provenance_comment() -> str:
    """The :func:`provenance` stamp as one ``#``-comment CSV header line.

    Every CSV artifact (timeline exports, run-report flattenings, the
    ``explain`` stage table) leads with this line so the spreadsheet can
    be traced to the code that produced it, mirroring the ``provenance``
    block in the JSON artifacts.
    """
    stamp = provenance()
    body = " ".join(f"{key}={stamp[key]}" for key in sorted(stamp))
    return f"# provenance: {body}"


def to_jsonable(obj: object) -> object:
    """Lower arbitrary result objects to JSON-safe structures.

    Handles dataclasses, numpy scalars/arrays, mappings, sequences, and
    non-finite floats (mapped to ``None`` so the output stays strict
    JSON). Objects exposing ``to_dict`` use it.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return to_jsonable(to_dict())
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(item) for item in obj]
    # numpy scalars/arrays without importing numpy here.
    item = getattr(obj, "item", None)
    if callable(item) and getattr(obj, "shape", None) == ():
        return to_jsonable(item())
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return to_jsonable(tolist())
    return str(obj)


def json_dumps(payload: object, *, indent: Optional[int] = 2) -> str:
    """Serialize through :func:`to_jsonable` (the CLI's ``--json`` path)."""
    return json.dumps(to_jsonable(payload), indent=indent, sort_keys=True)


def recorder_summary(recorder) -> Dict[str, float]:
    """Exact per-stage summary from a ``LatencyRecorder``."""
    if recorder.count == 0:
        return {"count": 0}
    out: Dict[str, float] = {
        "count": recorder.count,
        "mean": recorder.mean,
        "std": recorder.std,
        "min": recorder.minimum,
        "max": recorder.maximum,
    }
    for level in STAGE_QUANTILES:
        out[f"p{level * 100:g}".replace(".", "_")] = recorder.quantile(level)
    return out


@dataclasses.dataclass
class RunReport:
    """Everything one simulation run leaves behind."""

    config: Dict[str, object] = dataclasses.field(default_factory=dict)
    stages: Dict[str, Dict[str, float]] = dataclasses.field(default_factory=dict)
    metrics: Dict[str, Dict[str, object]] = dataclasses.field(default_factory=dict)
    profile: Optional[Dict[str, object]] = None
    slowest: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)
    #: Windowed telemetry payload (a serialized Timeline), when the run
    #: recorded one.
    timeline: Optional[Dict[str, object]] = None

    KIND = "repro-run-report"
    VERSION = 1

    # ------------------------------------------------------------------
    # Construction from a live run.
    # ------------------------------------------------------------------

    @classmethod
    def from_simulation(
        cls,
        results,
        observability=None,
        *,
        config: Optional[Dict[str, object]] = None,
    ) -> "RunReport":
        """Build a report from ``SystemResults`` (+ optional observability).

        ``results`` is duck-typed so the fast-path validation harness can
        reuse the shape with its own recorder bundle.
        """
        stages = {
            "total": recorder_summary(results.total),
            "server_stage": recorder_summary(results.server_stage),
            "database_stage": recorder_summary(results.database_stage),
            "network_stage": recorder_summary(results.network_stage),
            "per_key_server": recorder_summary(results.per_key_server),
        }
        meta: Dict[str, object] = {
            "requests_completed": results.requests_completed,
            "keys_processed": results.keys_processed,
            "misses": results.misses,
            "measured_miss_ratio": results.measured_miss_ratio,
            "server_utilizations": list(results.server_utilizations),
        }
        metrics: Dict[str, Dict[str, object]] = {}
        profile: Optional[Dict[str, object]] = None
        slowest: List[Dict[str, object]] = []
        if observability is not None:
            if observability.registry is not None:
                metrics = observability.registry.snapshot()
            if observability.profiler is not None:
                profile = observability.profiler.stats()
            if observability.tracer is not None:
                slowest = [span.to_dict() for span in observability.tracer.slowest()]
                meta["traces_finished"] = observability.tracer.finished
        run_timeline = getattr(results, "timeline", None)
        return cls(
            config=dict(config or {}),
            stages=stages,
            metrics=metrics,
            profile=profile,
            slowest=slowest,
            meta=meta,
            timeline=(
                run_timeline.to_dict() if run_timeline is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # Views.
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Stable digest used for round-trip checks and quick prints."""
        return to_jsonable(
            {
                "config": self.config,
                "stages": self.stages,
                "meta": self.meta,
                "n_metrics": len(self.metrics),
                "n_slowest": len(self.slowest),
            }
        )

    def slowest_spans(self) -> List[Span]:
        """The retained slowest requests as :class:`Span` trees."""
        return [Span.from_dict(payload) for payload in self.slowest]

    def stage_rows(self) -> List[List[object]]:
        """Rows (stage, count, mean, p50, p95, p99) for table printers."""
        rows: List[List[object]] = []
        for stage, summary in self.stages.items():
            if summary.get("count", 0) == 0:
                continue
            rows.append(
                [
                    stage,
                    summary["count"],
                    summary["mean"],
                    summary.get("p50"),
                    summary.get("p95"),
                    summary.get("p99"),
                ]
            )
        return rows

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.KIND,
            "version": self.VERSION,
            "config": to_jsonable(self.config),
            "stages": to_jsonable(self.stages),
            "metrics": to_jsonable(self.metrics),
            "profile": to_jsonable(self.profile),
            "slowest": to_jsonable(self.slowest),
            "meta": to_jsonable(self.meta),
            "timeline": to_jsonable(self.timeline),
            "provenance": provenance(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunReport":
        if not isinstance(payload, dict):
            raise ConfigError("run report must be a JSON object")
        if payload.get("kind") != cls.KIND:
            raise ConfigError(
                f"not a run report (kind={payload.get('kind')!r})"
            )
        version = payload.get("version")
        if version != cls.VERSION:
            raise ConfigError(f"unsupported run-report version: {version!r}")
        return cls(
            config=dict(payload.get("config") or {}),
            stages=dict(payload.get("stages") or {}),
            metrics=dict(payload.get("metrics") or {}),
            profile=payload.get("profile"),
            slowest=list(payload.get("slowest") or []),
            meta=dict(payload.get("meta") or {}),
            timeline=payload.get("timeline"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid run-report JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunReport":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ConfigError(f"cannot read run report {path}: {exc}") from exc
        return cls.from_json(text)

    def save_csv(self, path: Union[str, Path]) -> None:
        """Flatten stage + metric summaries to one CSV (name, stat columns)."""
        columns = ["name", "kind", "count", "mean", "p50", "p95", "p99", "min", "max"]
        with open(path, "w", newline="") as handle:
            handle.write(provenance_comment() + "\r\n")
            writer = csv.writer(handle)
            writer.writerow(columns)
            for stage, summary in self.stages.items():
                writer.writerow(_csv_row(f"stage.{stage}", "stage", summary))
            for name, payload in self.metrics.items():
                if payload.get("type") == "histogram":
                    writer.writerow(
                        _csv_row(name, "histogram", payload.get("summary", {}))
                    )
                elif payload.get("type") == "counter":
                    writer.writerow(
                        [name, "counter", payload.get("value"), "", "", "", "", "", ""]
                    )
                elif payload.get("type") == "gauge":
                    writer.writerow(
                        [
                            name,
                            "gauge",
                            payload.get("samples"),
                            payload.get("mean"),
                            "",
                            "",
                            "",
                            payload.get("min"),
                            payload.get("max"),
                        ]
                    )


def _csv_row(name: str, kind: str, summary: Dict[str, object]) -> List[object]:
    return [
        name,
        kind,
        summary.get("count"),
        summary.get("mean"),
        summary.get("p50"),
        summary.get("p95"),
        summary.get("p99"),
        summary.get("min"),
        summary.get("max"),
    ]
