"""Windowed time-series telemetry: the same schema from every backend.

The paper's interesting behaviors are *transients* — the §5.1
overloaded-database climb, fault windows, recovery drains — which
cumulative end-of-run aggregates cannot show. A :class:`Timeline` slices
one run into fixed-width windows and keeps, per window:

* request **arrival/completion counts** (→ rates),
* **in-flight request-seconds** (→ time-average occupancy ``L``, the
  left side of Little's law),
* a log-bucketed latency :class:`~repro.observability.metrics.Histogram`
  of the requests *completing* in that window (→ windowed quantiles),
* per-stage :class:`StageSeries` (busy/wait job-seconds and counts →
  utilization and queue depth for each server and the database).

Everything stored is a raw *accumulable* (counts and time integrals),
so :meth:`Timeline.merge` is exact bucket-wise addition — cross-worker
and cross-shard aggregation loses nothing. Construction is vectorized:
:func:`time_in_windows` resolves interval/window overlaps with sorted
prefix sums (``O((n + K) log n)``, no per-event Python loop and no
``n x K`` matrix), which is how the numpy backends
(:mod:`~repro.simulation.fastpath`,
:mod:`~repro.simulation.fastpath_system`) afford telemetry at millions
of keys per second. The event engine records through the lightweight
:class:`TimelineBuilder` hooks and builds the same schema at run end.

The built-in consistency check is Little's law: per window,
``L = inflight_time / width`` must track ``lambda * W`` (arrival rate
times mean latency) — :meth:`Timeline.littles_law` reports the
residuals so telemetry validates itself against the queueing invariant
it is supposed to measure.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigError, ValidationError
from .metrics import Histogram
from .report import provenance, provenance_comment

__all__ = [
    "DEFAULT_WINDOWS",
    "StageSeries",
    "Timeline",
    "TimelineBuilder",
    "TimelineSpec",
    "time_in_windows",
]

#: Window count used when neither a width nor a count is requested.
DEFAULT_WINDOWS = 60

TIMELINE_KIND = "repro-timeline"
TIMELINE_VERSION = 1


@dataclasses.dataclass(frozen=True)
class TimelineSpec:
    """How to slice a run into windows: a fixed width *or* a count.

    ``window`` is a width in seconds; ``n_windows`` divides the run span
    evenly. Exactly one may be set; with neither, :data:`DEFAULT_WINDOWS`
    equal windows are used.
    """

    window: Optional[float] = None
    n_windows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window is not None and self.n_windows is not None:
            raise ValidationError("set window or n_windows, not both")
        if self.window is not None and self.window <= 0:
            raise ValidationError(f"window must be > 0, got {self.window}")
        if self.n_windows is not None and self.n_windows < 1:
            raise ValidationError(
                f"n_windows must be >= 1, got {self.n_windows}"
            )

    @classmethod
    def coerce(cls, value: object) -> Optional["TimelineSpec"]:
        """Normalize the ``timeline=`` option every backend accepts.

        ``None``/``False`` → off; ``True`` → defaults; an ``int`` is a
        window count; a ``float`` is a window width in seconds; a spec
        passes through.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, TimelineSpec):
            return value
        if isinstance(value, bool):  # pragma: no cover - caught above
            return cls()
        if isinstance(value, int):
            return cls(n_windows=value)
        if isinstance(value, float):
            return cls(window=value)
        raise ValidationError(
            f"timeline spec must be bool, int, float or TimelineSpec, "
            f"got {type(value).__name__}"
        )


def _resolve_windows(
    start: float, end: float, spec: Optional[TimelineSpec]
) -> Tuple[float, float, int]:
    """(start, width, count) covering ``[start, end]`` per the spec."""
    start = float(start)
    end = float(end)
    if not math.isfinite(start) or not math.isfinite(end):
        raise ValidationError("timeline span must be finite")
    if end <= start:
        # Degenerate span (e.g. a single completion): one tiny window.
        end = start + max(abs(start), 1.0) * 1e-9
    spec = spec or TimelineSpec()
    if spec.window is not None:
        width = float(spec.window)
        count = max(1, int(math.ceil((end - start) / width - 1e-12)))
    else:
        count = int(spec.n_windows or DEFAULT_WINDOWS)
        width = (end - start) / count
    return start, width, count


def time_in_windows(
    starts: np.ndarray, ends: np.ndarray, edges: np.ndarray
) -> np.ndarray:
    """Total overlap of the intervals ``[starts_i, ends_i)`` per window.

    Uses the prefix-integral identity
    ``F(t) = sum_i min(t, ends_i) - sum_i min(t, starts_i)``
    (the cumulative interval-time before ``t``): the per-window overlap
    is ``F(e_{k+1}) - F(e_k)``. Two sorts plus searchsorted at the
    ``K + 1`` edges — no interval-by-window matrix.
    """
    starts = np.asarray(starts, dtype=float)
    ends = np.maximum(np.asarray(ends, dtype=float), starts)
    edges = np.asarray(edges, dtype=float)

    def cumulative(points: np.ndarray) -> np.ndarray:
        ordered = np.sort(points)
        prefix = np.concatenate(([0.0], np.cumsum(ordered)))
        below = np.searchsorted(ordered, edges, side="right")
        return prefix[below] + edges * (ordered.size - below)

    return np.diff(cumulative(ends) - cumulative(starts))


def _counts(times: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Events per window (last window closed on the right, like run end)."""
    counts, _ = np.histogram(np.asarray(times, dtype=float), bins=edges)
    return counts.astype(float)


@dataclasses.dataclass
class StageSeries:
    """Per-window accumulables of one service stage (a server or the DB).

    All four arrays have one entry per window: ``arrivals`` and
    ``completions`` are job counts, ``busy_time`` is in-service
    job-seconds (→ utilization), ``wait_time`` is queued job-seconds
    (→ time-average queue depth via Little).
    """

    arrivals: np.ndarray
    completions: np.ndarray
    busy_time: np.ndarray
    wait_time: np.ndarray

    @classmethod
    def zeros(cls, n_windows: int) -> "StageSeries":
        return cls(
            arrivals=np.zeros(n_windows),
            completions=np.zeros(n_windows),
            busy_time=np.zeros(n_windows),
            wait_time=np.zeros(n_windows),
        )

    @classmethod
    def from_jobs(
        cls,
        arrival: np.ndarray,
        start: np.ndarray,
        finish: np.ndarray,
        edges: np.ndarray,
    ) -> "StageSeries":
        """Vectorized construction from per-job (arrival, start, finish)."""
        return cls(
            arrivals=_counts(arrival, edges),
            completions=_counts(finish, edges),
            busy_time=time_in_windows(start, finish, edges),
            wait_time=time_in_windows(arrival, start, edges),
        )

    def merge(self, other: "StageSeries") -> None:
        self.arrivals = self.arrivals + other.arrivals
        self.completions = self.completions + other.completions
        self.busy_time = self.busy_time + other.busy_time
        self.wait_time = self.wait_time + other.wait_time

    def to_dict(self) -> Dict[str, object]:
        return {
            "arrivals": self.arrivals.tolist(),
            "completions": self.completions.tolist(),
            "busy_time": self.busy_time.tolist(),
            "wait_time": self.wait_time.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StageSeries":
        try:
            return cls(
                arrivals=np.asarray(payload["arrivals"], dtype=float),
                completions=np.asarray(payload["completions"], dtype=float),
                busy_time=np.asarray(payload["busy_time"], dtype=float),
                wait_time=np.asarray(payload["wait_time"], dtype=float),
            )
        except KeyError as exc:
            raise ConfigError(f"stage series missing key: {exc}") from exc


@dataclasses.dataclass
class Timeline:
    """One run's windowed telemetry (every backend emits this schema)."""

    start: float
    window: float
    n_windows: int
    arrivals: np.ndarray
    completions: np.ndarray
    inflight_time: np.ndarray
    latency: List[Histogram]
    stages: Dict[str, StageSeries] = dataclasses.field(default_factory=dict)
    shards: int = 1
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def empty(
        cls, start: float, window: float, n_windows: int
    ) -> "Timeline":
        return cls(
            start=float(start),
            window=float(window),
            n_windows=int(n_windows),
            arrivals=np.zeros(n_windows),
            completions=np.zeros(n_windows),
            inflight_time=np.zeros(n_windows),
            latency=[Histogram() for _ in range(n_windows)],
        )

    @classmethod
    def from_events(
        cls,
        *,
        start: float,
        end: float,
        request_born: np.ndarray,
        request_completed: np.ndarray,
        request_total: Optional[np.ndarray] = None,
        stages: Optional[
            Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]]
        ] = None,
        spec: Optional[TimelineSpec] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> "Timeline":
        """Vectorized construction from raw event arrays.

        ``request_born``/``request_completed`` are per-request instants;
        ``request_total`` defaults to their difference (the end-to-end
        latency). ``stages`` maps a stage name to per-job
        ``(arrival, service_start, finish)`` arrays. Events outside
        ``[start, end]`` are clipped or dropped exactly as the engine's
        warmup reset would: counts outside the span vanish, interval
        time is clipped at the span edges.
        """
        born = np.asarray(request_born, dtype=float).ravel()
        completed = np.asarray(request_completed, dtype=float).ravel()
        if born.shape != completed.shape:
            raise ValidationError("born/completed arrays must match")
        if request_total is None:
            totals = completed - born
        else:
            totals = np.asarray(request_total, dtype=float).ravel()
            if totals.shape != completed.shape:
                raise ValidationError("total array must match completions")

        t0, width, count = _resolve_windows(start, end, spec)
        timeline = cls.empty(t0, width, count)
        edges = timeline.edges
        timeline.arrivals = _counts(born, edges)
        timeline.completions = _counts(completed, edges)
        timeline.inflight_time = time_in_windows(born, completed, edges)

        in_range = (completed >= edges[0]) & (completed <= edges[-1])
        if in_range.any():
            window_of = np.minimum(
                np.searchsorted(edges, completed[in_range], side="right") - 1,
                count - 1,
            )
            order = np.argsort(window_of, kind="stable")
            window_sorted = window_of[order]
            totals_sorted = totals[in_range][order]
            bounds = np.searchsorted(window_sorted, np.arange(count + 1))
            for k in range(count):
                lo, hi = bounds[k], bounds[k + 1]
                if hi > lo:
                    timeline.latency[k].record_many(totals_sorted[lo:hi])

        for name, (arrival, svc_start, finish) in (stages or {}).items():
            timeline.stages[str(name)] = StageSeries.from_jobs(
                np.asarray(arrival, dtype=float),
                np.asarray(svc_start, dtype=float),
                np.asarray(finish, dtype=float),
                edges,
            )
        if meta:
            timeline.meta.update(meta)
        return timeline

    # ------------------------------------------------------------------
    # Geometry.
    # ------------------------------------------------------------------

    @property
    def edges(self) -> np.ndarray:
        """The ``n_windows + 1`` window edges."""
        return self.start + self.window * np.arange(self.n_windows + 1)

    @property
    def midpoints(self) -> np.ndarray:
        return self.start + self.window * (np.arange(self.n_windows) + 0.5)

    @property
    def duration(self) -> float:
        return self.window * self.n_windows

    @property
    def stage_names(self) -> List[str]:
        return sorted(self.stages)

    # ------------------------------------------------------------------
    # Derived series (one value per window; NaN where undefined).
    # ------------------------------------------------------------------

    def arrival_rate(self) -> np.ndarray:
        """Aggregate request arrivals per second, per window."""
        return self.arrivals / self.window

    def completion_rate(self) -> np.ndarray:
        return self.completions / self.window

    def occupancy(self) -> np.ndarray:
        """Time-average in-flight requests ``L`` per window."""
        return self.inflight_time / self.window

    def mean_latency(self) -> np.ndarray:
        return np.array(
            [h.mean if h.count else math.nan for h in self.latency]
        )

    def quantile_series(self, level: float) -> np.ndarray:
        """The ``level`` latency quantile of each window's completions."""
        return np.array(
            [h.quantile(level) if h.count else math.nan for h in self.latency]
        )

    def bad_fraction(self, threshold: float) -> np.ndarray:
        """Fraction of completions slower than ``threshold`` per window."""
        return np.array(
            [
                h.count_above(threshold) / h.count if h.count else math.nan
                for h in self.latency
            ]
        )

    def utilization(self, stage: str) -> np.ndarray:
        """Busy fraction of one stage per window (shard-normalized)."""
        return self._stage(stage).busy_time / (self.window * self.shards)

    def queue_depth(self, stage: str) -> np.ndarray:
        """Time-average queued jobs at one stage per window."""
        return self._stage(stage).wait_time / (self.window * self.shards)

    def _stage(self, name: str) -> StageSeries:
        if name not in self.stages:
            raise ConfigError(
                f"unknown stage {name!r} (have {self.stage_names})"
            )
        return self.stages[name]

    def overall_latency(self) -> Histogram:
        """All windows' latency histograms merged into one."""
        merged = Histogram()
        for hist in self.latency:
            merged.merge(hist)
        return merged

    # ------------------------------------------------------------------
    # Consistency: Little's law per window.
    # ------------------------------------------------------------------

    def littles_law(self, *, min_count: int = 10) -> Dict[str, object]:
        """Per-window check of ``L = lambda * W``.

        ``L`` is the measured time-average occupancy, ``lambda`` the
        arrival rate and ``W`` the mean latency of the window's
        completions. Windows with fewer than ``min_count`` arrivals or
        completions are excluded from the aggregate (the law is an
        expectation — tiny windows are all noise). Returns the raw
        series plus ``max_relative_error``/``mean_relative_error`` over
        the valid windows.
        """
        lam = self.arrival_rate()
        mean_w = self.mean_latency()
        occupancy = self.occupancy()
        expected = lam * mean_w
        scale = np.maximum(np.maximum(occupancy, np.abs(expected)), 1e-12)
        relative = np.abs(occupancy - expected) / scale
        valid = (
            (self.arrivals >= min_count)
            & (self.completions >= min_count)
            & np.isfinite(mean_w)
        )
        if valid.any():
            max_err = float(np.max(relative[valid]))
            mean_err = float(np.mean(relative[valid]))
        else:
            max_err = math.nan
            mean_err = math.nan
        return {
            "lambda": lam,
            "W": mean_w,
            "L": occupancy,
            "relative_error": relative,
            "valid": valid,
            "n_valid": int(valid.sum()),
            "max_relative_error": max_err,
            "mean_relative_error": mean_err,
        }

    # ------------------------------------------------------------------
    # Aggregation.
    # ------------------------------------------------------------------

    def merge(self, other: "Timeline") -> None:
        """Fold another timeline over the same windows into this one.

        Exact: every stored field is an additive accumulable and the
        latency histograms merge bucket-wise. Requires identical window
        geometry. ``shards`` adds up, so utilization and queue depth
        stay per-replica averages.
        """
        if other.n_windows != self.n_windows:
            raise ValidationError(
                "cannot merge timelines with different window counts "
                f"({self.n_windows} vs {other.n_windows})"
            )
        tolerance = 1e-9 * max(1.0, abs(self.window))
        if (
            abs(other.start - self.start) > tolerance
            or abs(other.window - self.window) > tolerance
        ):
            raise ValidationError(
                "cannot merge timelines with different window geometry"
            )
        self.arrivals = self.arrivals + other.arrivals
        self.completions = self.completions + other.completions
        self.inflight_time = self.inflight_time + other.inflight_time
        for mine, theirs in zip(self.latency, other.latency):
            mine.merge(theirs)
        for name, series in other.stages.items():
            if name in self.stages:
                self.stages[name].merge(series)
            else:
                fresh = StageSeries.zeros(self.n_windows)
                fresh.merge(series)
                self.stages[name] = fresh
        self.shards += other.shards

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Small digest for reports and CLI footers."""
        overall = self.overall_latency()
        out: Dict[str, object] = {
            "start": self.start,
            "window": self.window,
            "n_windows": self.n_windows,
            "shards": self.shards,
            "requests": int(round(float(self.completions.sum()))),
            "stages": self.stage_names,
        }
        if overall.count:
            out["p50"] = overall.quantile(0.50)
            out["p99"] = overall.quantile(0.99)
        law = self.littles_law()
        out["littles_law_max_rel_err"] = law["max_relative_error"]
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": TIMELINE_KIND,
            "version": TIMELINE_VERSION,
            "start": self.start,
            "window": self.window,
            "n_windows": self.n_windows,
            "shards": self.shards,
            "arrivals": self.arrivals.tolist(),
            "completions": self.completions.tolist(),
            "inflight_time": self.inflight_time.tolist(),
            "latency": [hist.to_dict() for hist in self.latency],
            "stages": {
                name: series.to_dict()
                for name, series in sorted(self.stages.items())
            },
            "meta": dict(self.meta),
            "provenance": provenance(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Timeline":
        if not isinstance(payload, dict) or payload.get("kind") != TIMELINE_KIND:
            raise ConfigError(
                f"not a timeline payload (kind={payload.get('kind')!r})"
                if isinstance(payload, dict)
                else "timeline payload must be a JSON object"
            )
        if payload.get("version") != TIMELINE_VERSION:
            raise ConfigError(
                f"unsupported timeline version: {payload.get('version')!r}"
            )
        try:
            timeline = cls(
                start=float(payload["start"]),
                window=float(payload["window"]),
                n_windows=int(payload["n_windows"]),
                arrivals=np.asarray(payload["arrivals"], dtype=float),
                completions=np.asarray(payload["completions"], dtype=float),
                inflight_time=np.asarray(payload["inflight_time"], dtype=float),
                latency=[
                    Histogram.from_dict(item) for item in payload["latency"]
                ],
                stages={
                    str(name): StageSeries.from_dict(series)
                    for name, series in dict(payload.get("stages") or {}).items()
                },
                shards=int(payload.get("shards", 1)),
                meta=dict(payload.get("meta") or {}),
            )
        except KeyError as exc:
            raise ConfigError(f"timeline missing key: {exc}") from exc
        if len(timeline.latency) != timeline.n_windows:
            raise ConfigError("timeline latency list does not match windows")
        return timeline

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Timeline":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read timeline {path}: {exc}") from exc
        return cls.from_dict(payload)

    def to_csv(self, path: Union[str, Path]) -> None:
        """Flatten the derived series into one row per window."""
        import csv

        names = self.stage_names
        header = (
            ["window", "t_start", "t_end", "arrivals", "completions"]
            + ["arrival_rate", "completion_rate", "occupancy"]
            + ["mean", "p50", "p95", "p99"]
            + [f"util:{name}" for name in names]
            + [f"depth:{name}" for name in names]
        )
        mean = self.mean_latency()
        p50 = self.quantile_series(0.50)
        p95 = self.quantile_series(0.95)
        p99 = self.quantile_series(0.99)
        utils = {name: self.utilization(name) for name in names}
        depths = {name: self.queue_depth(name) for name in names}
        edges = self.edges

        def cell(value: float) -> object:
            return "" if not math.isfinite(float(value)) else float(value)


        with open(path, "w", newline="") as handle:
            handle.write(provenance_comment() + "\r\n")
            writer = csv.writer(handle)
            writer.writerow(header)
            for k in range(self.n_windows):
                writer.writerow(
                    [
                        k,
                        float(edges[k]),
                        float(edges[k + 1]),
                        float(self.arrivals[k]),
                        float(self.completions[k]),
                        cell(self.arrival_rate()[k]),
                        cell(self.completion_rate()[k]),
                        cell(self.occupancy()[k]),
                        cell(mean[k]),
                        cell(p50[k]),
                        cell(p95[k]),
                        cell(p99[k]),
                    ]
                    + [cell(utils[name][k]) for name in names]
                    + [cell(depths[name][k]) for name in names]
                )


def _columns(rows: Sequence[Tuple[float, ...]], width: int) -> Tuple[np.ndarray, ...]:
    """Tuple list -> column arrays, via one flat ``fromiter`` pass.

    Several times faster than ``np.asarray`` on a large list of tuples,
    which matters because this conversion is the bulk of the engine's
    end-of-run timeline cost.
    """
    if not rows:
        empty = np.empty(0)
        return (empty,) * width
    flat = np.fromiter(
        (value for row in rows for value in row),
        dtype=float,
        count=len(rows) * width,
    )
    table = flat.reshape(len(rows), width)
    return tuple(table[:, k] for k in range(width))


class TimelineBuilder:
    """The event engine's recording half of the timeline layer.

    Hot-path cost is one tuple append per finished job / completed
    request (components hold a bound ``list.append``-able sink, no
    method dispatch); all window math happens once at :meth:`build`,
    vectorized, matching the telemetry-overhead budget the benchmarks
    enforce.
    """

    def __init__(self, spec: Optional[TimelineSpec] = None) -> None:
        self.spec = spec or TimelineSpec()
        self.origin = 0.0
        self._requests: List[Tuple[float, float]] = []
        self._stages: Dict[str, List[Tuple[float, float, float]]] = {}

    def request_sink(self) -> List[Tuple[float, float]]:
        """The list the system appends ``(born, completed)`` tuples to."""
        return self._requests

    def stage_sink(self, name: str) -> List[Tuple[float, float, float]]:
        """Per-stage list of ``(arrival, service_start, finish)`` tuples."""
        return self._stages.setdefault(str(name), [])

    def reset(self) -> None:
        """Drop recorded events in place (sink references stay valid)."""
        self._requests.clear()
        for sink in self._stages.values():
            sink.clear()
        self.origin = 0.0

    def build(
        self, *, end: float, meta: Optional[Dict[str, object]] = None
    ) -> Timeline:
        """Materialize the run's :class:`Timeline` over ``[origin, end]``."""
        born, completed = _columns(self._requests, 2)
        stages = {
            name: _columns(sink, 3) for name, sink in self._stages.items()
        }
        return Timeline.from_events(
            start=self.origin,
            end=end,
            request_born=born,
            request_completed=completed,
            stages=stages,
            spec=self.spec,
            meta=meta,
        )
