"""SLO monitoring over windowed telemetry: rules, alerts, validation.

An :class:`SLOMonitor` evaluates a set of rules against a
:class:`~repro.observability.timeline.Timeline` and coalesces the
violating windows into :class:`AlertWindow` spans — the time-resolved
"the p99 objective was burning from t=1.2s to t=1.8s" statement the
cumulative recorders cannot make. Two rule families:

* :class:`SLORule` — threshold rules on any derived series (windowed
  quantiles, mean, rates, occupancy, per-stage utilization and queue
  depth);
* :class:`BurnRateRule` — error-budget rules: a request is *bad* when
  slower than ``latency_threshold``; the window burns at
  ``bad_fraction / (1 - objective)`` and alerts at ``factor`` or above,
  the multiwindow-burn-rate construction from SRE practice, computed
  here from the histogram's :meth:`count_above` without storing samples.

Validation is built in: :func:`detection_scores` matches alert windows
against injected :class:`~repro.faults.FaultSchedule` windows and
reports precision/recall (the tests assert both >= 0.8 on the §5.1-style
scenarios), and :meth:`SLOReport.littles_law` carries the per-window
``L = lambda * W`` residuals as a telemetry self-check.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, ValidationError
from .timeline import Timeline

__all__ = [
    "AlertWindow",
    "BurnRateRule",
    "SLOMonitor",
    "SLOReport",
    "SLORule",
    "detection_scores",
]

#: Threshold-rule metrics that need no stage qualifier.
_SCALAR_METRICS = (
    "p50",
    "p95",
    "p99",
    "mean",
    "arrival_rate",
    "completion_rate",
    "occupancy",
)
#: Stage-qualified metrics, written ``utilization:server.0``.
_STAGE_METRICS = ("utilization", "queue_depth")


@dataclasses.dataclass(frozen=True)
class SLORule:
    """Threshold rule: fire when a windowed series crosses a level.

    ``metric`` is one of the latency series (``p50``/``p95``/``p99``/
    ``mean``, in seconds), the request series (``arrival_rate``/
    ``completion_rate`` per second, ``occupancy`` in requests), or a
    stage series ``utilization:<stage>`` / ``queue_depth:<stage>``.
    Windows with fewer than ``min_count`` completions never fire a
    latency rule (a two-request window's p99 is noise, not an outage).
    """

    name: str
    metric: str
    threshold: float
    comparison: str = ">"
    min_count: int = 1

    def __post_init__(self) -> None:
        if self.comparison not in (">", "<"):
            raise ValidationError(
                f"comparison must be '>' or '<', got {self.comparison!r}"
            )
        if self.min_count < 1:
            raise ValidationError(
                f"min_count must be >= 1, got {self.min_count}"
            )
        base, _, stage = self.metric.partition(":")
        if stage:
            if base not in _STAGE_METRICS:
                raise ValidationError(
                    f"unknown stage metric {base!r} "
                    f"(have {list(_STAGE_METRICS)})"
                )
        elif base not in _SCALAR_METRICS:
            raise ValidationError(
                f"unknown metric {base!r} (have {list(_SCALAR_METRICS)} "
                f"or '<stage-metric>:<stage>')"
            )

    @property
    def _latency_based(self) -> bool:
        return self.metric in ("p50", "p95", "p99", "mean")

    def series(self, timeline: Timeline) -> np.ndarray:
        """The windowed series this rule evaluates."""
        base, _, stage = self.metric.partition(":")
        if stage:
            if base == "utilization":
                return timeline.utilization(stage)
            return timeline.queue_depth(stage)
        if base == "mean":
            return timeline.mean_latency()
        if base.startswith("p"):
            return timeline.quantile_series(float(base[1:]) / 100.0)
        if base == "arrival_rate":
            return timeline.arrival_rate()
        if base == "completion_rate":
            return timeline.completion_rate()
        return timeline.occupancy()

    def violations(self, timeline: Timeline) -> np.ndarray:
        """Boolean mask of violating windows (NaN never violates)."""
        values = self.series(timeline)
        with np.errstate(invalid="ignore"):
            if self.comparison == ">":
                mask = values > self.threshold
            else:
                mask = values < self.threshold
        mask &= np.isfinite(values)
        if self._latency_based and self.min_count > 1:
            mask &= timeline.completions >= self.min_count
        return mask


@dataclasses.dataclass(frozen=True)
class BurnRateRule:
    """Error-budget burn rule on the windowed latency histograms.

    The SLO is "a fraction ``objective`` of requests completes within
    ``latency_threshold``"; a window's burn rate is its bad fraction
    divided by the budget ``1 - objective``. ``factor`` 1.0 alerts on
    any budget overrun in the window; higher factors demand faster
    burns (the classic 14.4x/6x paging tiers).
    """

    name: str
    latency_threshold: float
    objective: float = 0.99
    factor: float = 1.0
    min_count: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValidationError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.latency_threshold <= 0:
            raise ValidationError(
                f"latency_threshold must be > 0, got {self.latency_threshold}"
            )
        if self.factor <= 0:
            raise ValidationError(f"factor must be > 0, got {self.factor}")
        if self.min_count < 1:
            raise ValidationError(
                f"min_count must be >= 1, got {self.min_count}"
            )

    def series(self, timeline: Timeline) -> np.ndarray:
        """Burn rate per window (NaN where the window saw no requests)."""
        return timeline.bad_fraction(self.latency_threshold) / (
            1.0 - self.objective
        )

    def violations(self, timeline: Timeline) -> np.ndarray:
        values = self.series(timeline)
        with np.errstate(invalid="ignore"):
            mask = values >= self.factor
        mask &= np.isfinite(values)
        if self.min_count > 1:
            mask &= timeline.completions >= self.min_count
        return mask


@dataclasses.dataclass(frozen=True)
class AlertWindow:
    """A maximal run of consecutive violating windows for one rule."""

    rule: str
    start: float
    end: float
    peak: float
    n_windows: int

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, start: float, end: float) -> bool:
        """Open-interval overlap with ``[start, end]``."""
        return self.start < end and start < self.end

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AlertWindow":
        try:
            return cls(
                rule=str(payload["rule"]),
                start=float(payload["start"]),
                end=float(payload["end"]),
                peak=float(payload["peak"]),
                n_windows=int(payload["n_windows"]),
            )
        except KeyError as exc:
            raise ConfigError(f"alert window missing key: {exc}") from exc


@dataclasses.dataclass
class SLOReport:
    """One monitor evaluation: alerts, per-rule attainment, consistency."""

    alerts: List[AlertWindow]
    attainment: Dict[str, float]
    series: Dict[str, np.ndarray]
    violations: Dict[str, np.ndarray]
    littles_law: Dict[str, object]

    @property
    def ok(self) -> bool:
        return not self.alerts

    def alerts_for(self, rule: str) -> List[AlertWindow]:
        return [alert for alert in self.alerts if alert.rule == rule]

    def verdict(self) -> Dict[str, object]:
        """Machine-readable pass/fail summary for CI and capacity probes.

        Unlike :meth:`to_dict`, which carries the full window series,
        this is the compact object a pipeline branches on: overall
        ``ok``, the first breach window (the alert with the earliest
        start), and per-rule attainment / violating-window counts /
        peak series value (for a burn-rate rule the peak *is* the
        worst burn rate observed).
        """
        rules: Dict[str, object] = {}
        for name, values in self.series.items():
            finite = values[np.isfinite(values)]
            att = self.attainment.get(name, math.nan)
            rules[name] = {
                "attainment": float(att) if math.isfinite(att) else None,
                "violating_windows": int(self.violations[name].sum()),
                "peak": float(finite.max()) if finite.size else None,
            }
        return {
            "ok": self.ok,
            "n_alerts": len(self.alerts),
            "first_breach": (
                self.alerts[0].to_dict() if self.alerts else None
            ),
            "rules": rules,
        }

    def to_dict(self) -> Dict[str, object]:
        def clean(values: np.ndarray) -> List[Optional[float]]:
            return [
                float(v) if math.isfinite(float(v)) else None for v in values
            ]

        law = self.littles_law
        max_err = float(law["max_relative_error"])
        return {
            "kind": "repro-slo-report",
            "alerts": [alert.to_dict() for alert in self.alerts],
            "attainment": {k: float(v) for k, v in self.attainment.items()},
            "series": {name: clean(vals) for name, vals in self.series.items()},
            "violations": {
                name: [bool(v) for v in vals]
                for name, vals in self.violations.items()
            },
            "littles_law": {
                "n_valid": int(law["n_valid"]),
                "max_relative_error": (
                    max_err if math.isfinite(max_err) else None
                ),
                "mean_relative_error": (
                    float(law["mean_relative_error"])
                    if math.isfinite(float(law["mean_relative_error"]))
                    else None
                ),
            },
        }


class SLOMonitor:
    """Evaluate threshold + burn-rate rules against a timeline."""

    def __init__(
        self, rules: Sequence[object], *, littles_law_min_count: int = 10
    ) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate rule names: {sorted(names)}")
        if not rules:
            raise ValidationError("SLOMonitor needs at least one rule")
        self.rules = list(rules)
        self._law_min_count = int(littles_law_min_count)

    @classmethod
    def latency_slo(
        cls,
        *,
        p99: Optional[float] = None,
        burn_threshold: Optional[float] = None,
        objective: float = 0.99,
        factor: float = 1.0,
        min_count: int = 1,
    ) -> "SLOMonitor":
        """Convenience monitor: a p99 threshold and/or a burn-rate rule."""
        rules: List[object] = []
        if p99 is not None:
            rules.append(
                SLORule(
                    name="p99-threshold",
                    metric="p99",
                    threshold=float(p99),
                    min_count=min_count,
                )
            )
        if burn_threshold is not None:
            rules.append(
                BurnRateRule(
                    name="burn-rate",
                    latency_threshold=float(burn_threshold),
                    objective=objective,
                    factor=factor,
                    min_count=min_count,
                )
            )
        return cls(rules)

    def evaluate(self, timeline: Timeline) -> SLOReport:
        """Run every rule; coalesce violations into alert windows."""
        edges = timeline.edges
        alerts: List[AlertWindow] = []
        attainment: Dict[str, float] = {}
        series: Dict[str, np.ndarray] = {}
        violations: Dict[str, np.ndarray] = {}
        for rule in self.rules:
            values = rule.series(timeline)
            mask = rule.violations(timeline)
            series[rule.name] = values
            violations[rule.name] = mask
            evaluated = np.isfinite(values)
            n_eval = int(evaluated.sum())
            attainment[rule.name] = (
                1.0 - int(mask.sum()) / n_eval if n_eval else math.nan
            )
            alerts.extend(self._coalesce(rule.name, mask, values, edges))
        alerts.sort(key=lambda alert: (alert.start, alert.rule))
        return SLOReport(
            alerts=alerts,
            attainment=attainment,
            series=series,
            violations=violations,
            littles_law=timeline.littles_law(min_count=self._law_min_count),
        )

    @staticmethod
    def _coalesce(
        rule: str, mask: np.ndarray, values: np.ndarray, edges: np.ndarray
    ) -> List[AlertWindow]:
        alerts: List[AlertWindow] = []
        run_start: Optional[int] = None
        for k in range(mask.size + 1):
            firing = k < mask.size and bool(mask[k])
            if firing and run_start is None:
                run_start = k
            elif not firing and run_start is not None:
                span = values[run_start:k]
                finite = span[np.isfinite(span)]
                alerts.append(
                    AlertWindow(
                        rule=rule,
                        start=float(edges[run_start]),
                        end=float(edges[k]),
                        peak=float(finite.max()) if finite.size else math.nan,
                        n_windows=k - run_start,
                    )
                )
                run_start = None
        return alerts


def _fault_spans(faults: object) -> List[Tuple[float, float]]:
    """(start, end) spans from a FaultSchedule, window list, or tuples."""
    windows = getattr(faults, "windows", faults)
    spans: List[Tuple[float, float]] = []
    for window in windows:
        if isinstance(window, (tuple, list)) and len(window) == 2:
            spans.append((float(window[0]), float(window[1])))
        else:
            spans.append((float(window.start), float(window.end)))
    return spans


def detection_scores(
    alerts: Sequence[AlertWindow],
    faults: object,
    *,
    slack: float = 0.0,
) -> Dict[str, float]:
    """Precision/recall of alert windows against injected fault windows.

    An alert is a true positive when it overlaps any fault window padded
    by ``slack`` on the right (queues drain *after* a fault lifts, so a
    trailing alert tail is correct detection, not a false positive); a
    fault is recalled when at least one alert overlaps it. ``faults``
    may be a :class:`~repro.faults.FaultSchedule`, its window list, or
    plain ``(start, end)`` pairs.
    """
    if slack < 0:
        raise ValidationError(f"slack must be >= 0, got {slack}")
    spans = _fault_spans(faults)
    true_positives = sum(
        1
        for alert in alerts
        if any(alert.overlaps(start, end + slack) for start, end in spans)
    )
    recalled = sum(
        1
        for start, end in spans
        if any(alert.overlaps(start, end + slack) for alert in alerts)
    )
    precision = true_positives / len(alerts) if alerts else math.nan
    recall = recalled / len(spans) if spans else math.nan
    return {
        "precision": precision,
        "recall": recall,
        "alerts": float(len(alerts)),
        "faults": float(len(spans)),
        "true_positive_alerts": float(true_positives),
        "recalled_faults": float(recalled),
    }
