"""End-to-end observability for the simulator.

The paper's contribution is *measuring* where latency lives; this
package gives the simulator the same property:

* :mod:`~repro.observability.metrics` — log-bucketed
  :class:`Histogram`, :class:`Counter`, :class:`Gauge`, and the
  :class:`MetricsRegistry` components publish into;
* :mod:`~repro.observability.tracing` — per-request :class:`Span` trees
  with bounded retention (:class:`Tracer`);
* :mod:`~repro.observability.profiler` — :class:`EngineProfiler`
  wall-time accounting on the event loop;
* :mod:`~repro.observability.report` — :class:`RunReport` JSON/CSV
  artifacts plus the shared ``--json`` serializer.

:class:`Observability` bundles the three collectors so callers can flip
them on together::

    obs = Observability(trace=True, metrics=True, profile=True)
    system = MemcachedSystemSimulator(..., observability=obs)
    results = system.run(n_requests=10_000)
    RunReport.from_simulation(results, obs).save("run.json")
"""

from __future__ import annotations

from typing import Optional

from .attribution import (
    GROUPS,
    STAGES,
    AttributionRecord,
    AttributionSet,
    AttributionSink,
    TailAttribution,
    analytic_reference,
    residual_slack,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import EngineProfiler, callback_category
from .report import (
    GIT_SHA_ENV,
    STAGE_QUANTILES,
    RunReport,
    git_sha,
    json_dumps,
    provenance,
    provenance_comment,
    recorder_summary,
    to_jsonable,
)
from .slo import (
    AlertWindow,
    BurnRateRule,
    SLOMonitor,
    SLOReport,
    SLORule,
    detection_scores,
)
from .timeline import (
    StageSeries,
    Timeline,
    TimelineBuilder,
    TimelineSpec,
    time_in_windows,
)
from .tracing import Span, Tracer


class Observability:
    """A switchboard of collectors for one simulation run.

    Every collector is optional and independently toggled; components
    treat a ``None`` collector as "off" with a single attribute check,
    so a fully-disabled bundle (or no bundle at all) costs nothing on
    the hot path.
    """

    def __init__(
        self,
        *,
        trace: bool = True,
        metrics: bool = True,
        profile: bool = False,
        timeline: object = None,
        attribution: object = None,
        trace_capacity: int = 1024,
        slowest_k: int = 10,
    ) -> None:
        self.tracer: Optional[Tracer] = (
            Tracer(capacity=trace_capacity, slowest_k=slowest_k) if trace else None
        )
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )
        self.profiler: Optional[EngineProfiler] = (
            EngineProfiler() if profile else None
        )
        spec = TimelineSpec.coerce(timeline)
        self.timeline: Optional[TimelineBuilder] = (
            TimelineBuilder(spec) if spec is not None else None
        )
        # Per-request latency provenance: True -> default sink, an int
        # -> reservoir capacity, or a pre-built AttributionSink.
        if isinstance(attribution, AttributionSink):
            self.attribution: Optional[AttributionSink] = attribution
        elif isinstance(attribution, bool) or attribution is None:
            self.attribution = (
                AttributionSink(slowest_k=slowest_k) if attribution else None
            )
        elif isinstance(attribution, int):
            self.attribution = AttributionSink(
                max_records=attribution, slowest_k=slowest_k
            )
        else:
            raise TypeError(
                "attribution must be None, a bool, an int capacity, or an "
                f"AttributionSink, got {type(attribution).__name__}"
            )

    @property
    def enabled(self) -> bool:
        return any(
            collector is not None
            for collector in (
                self.tracer,
                self.registry,
                self.profiler,
                self.timeline,
                self.attribution,
            )
        )

    def reset(self) -> None:
        """Drop collected data in place (e.g. at the warmup boundary)."""
        if self.tracer is not None:
            self.tracer.reset()
        if self.registry is not None:
            self.registry.reset_all()
        if self.profiler is not None:
            self.profiler.reset()
        if self.timeline is not None:
            self.timeline.reset()
        if self.attribution is not None:
            self.attribution.reset()


__all__ = [
    "AlertWindow",
    "AttributionRecord",
    "AttributionSet",
    "AttributionSink",
    "BurnRateRule",
    "Counter",
    "GROUPS",
    "EngineProfiler",
    "GIT_SHA_ENV",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "RunReport",
    "STAGE_QUANTILES",
    "SLOMonitor",
    "SLOReport",
    "SLORule",
    "STAGES",
    "Span",
    "StageSeries",
    "TailAttribution",
    "Timeline",
    "TimelineBuilder",
    "TimelineSpec",
    "Tracer",
    "analytic_reference",
    "callback_category",
    "detection_scores",
    "git_sha",
    "json_dumps",
    "provenance",
    "provenance_comment",
    "recorder_summary",
    "residual_slack",
    "time_in_windows",
    "to_jsonable",
]
