"""Event-loop profiler for the discrete-event engine.

Attributes wall-clock time to callback *categories* (the scheduling
site's qualified name), counts events per second, and samples the live
event count — enough to see where a slow simulation spends real time
without a sampling profiler. The engine pays a single ``is None`` check
per event when profiling is off; the hot path is untouched.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Optional


def callback_category(callback: Callable[[], None]) -> str:
    """Stable category for a scheduled callback.

    Bound methods report their qualified name; lambdas and inner
    functions collapse onto the enclosing method (``ServerSim._start_next``
    for the service-completion lambda), which is the scheduling site we
    want to attribute time to.
    """
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        func = getattr(callback, "func", None)  # functools.partial
        if func is not None:
            return callback_category(func)
        return type(callback).__name__
    return qualname.replace(".<locals>", "").replace(".<lambda>", "")


class EngineProfiler:
    """Accumulates per-category wall time and event-loop gauges."""

    def __init__(self, *, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._counts: Dict[str, int] = {}
        self._wall: Dict[str, float] = {}
        self._events = 0
        self._wall_total = 0.0
        self._first_event: Optional[float] = None
        self._last_event: Optional[float] = None
        self._pending_sum = 0
        self._pending_max = 0

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    @property
    def events(self) -> int:
        return self._events

    def record(
        self,
        callback: Callable[[], None],
        wall_seconds: float,
        *,
        started_at: float,
        pending: int,
    ) -> None:
        """Account one fired event (called by the engine)."""
        category = callback_category(callback)
        self._counts[category] = self._counts.get(category, 0) + 1
        self._wall[category] = self._wall.get(category, 0.0) + wall_seconds
        self._events += 1
        self._wall_total += wall_seconds
        if self._first_event is None:
            self._first_event = started_at
        self._last_event = started_at + wall_seconds
        self._pending_sum += pending
        self._pending_max = max(self._pending_max, pending)

    # ------------------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        """Wall time spent inside event callbacks."""
        return self._wall_total

    @property
    def events_per_second(self) -> float:
        """Throughput over the first-to-last event window."""
        if self._first_event is None or self._last_event is None:
            return 0.0
        window = self._last_event - self._first_event
        if window <= 0.0:
            return math.inf if self._events else 0.0
        return self._events / window

    @property
    def mean_pending(self) -> float:
        if self._events == 0:
            return 0.0
        return self._pending_sum / self._events

    @property
    def max_pending(self) -> int:
        return self._pending_max

    def categories(self) -> Dict[str, Dict[str, float]]:
        """Per-category stats, heaviest wall time first."""
        out: Dict[str, Dict[str, float]] = {}
        for category in sorted(
            self._counts, key=lambda name: -self._wall.get(name, 0.0)
        ):
            count = self._counts[category]
            wall = self._wall[category]
            out[category] = {
                "count": count,
                "wall_seconds": wall,
                "mean_usec": (wall / count) * 1e6 if count else 0.0,
            }
        return out

    def stats(self) -> Dict[str, object]:
        """JSON-ready profile snapshot."""
        return {
            "events": self._events,
            "wall_seconds": self._wall_total,
            "events_per_second": self.events_per_second,
            "pending_mean": self.mean_pending,
            "pending_max": self._pending_max,
            "categories": self.categories(),
        }

    def reset(self) -> None:
        self._counts.clear()
        self._wall.clear()
        self._events = 0
        self._wall_total = 0.0
        self._first_event = None
        self._last_event = None
        self._pending_sum = 0
        self._pending_max = 0
