"""Per-request latency provenance: stage-attribution records.

The paper's central object is the fork-join composition ``T(N) = 2d +
max_i(s_i + d_i)`` — but a latency *number* does not say which stage
carried it. This module decomposes every completed request's sojourn
into the paper's pipeline stages and keeps the decomposition queryable:

``AttributionRecord``
    One request's decomposition over the :data:`STAGES` columns —
    arrival/routing, network round trip, the queue-wait/service split of
    the key attaining ``TS(N)``, the DB queue/service split of the key
    attaining ``TD(N)``, critical-path policy overhead (hedge/retry
    launch delay), and the fork-join ``join_slack`` residual.
``AttributionSink``
    The recording half. The hot path is one plain-list tuple append
    (the :class:`~repro.observability.timeline.TimelineBuilder` idiom);
    everything else — exact per-column sums over *every* record, a
    bounded reservoir of full-fidelity records, and the slowest-K set —
    is maintained in amortized vectorized flushes. The reservoir's
    replacement draws come from the sink's own deterministic generator,
    never the simulator's streams, so attaching a sink leaves seeded
    runs bit-identical.
``AttributionSet``
    The built, columnar (numpy) result: mean stage values/shares from
    the exact sums, :meth:`~AttributionSet.tail` conditional shares
    ("the p99 is 61% DB queueing"), slowest-K waterfall records, a JSON
    round trip, and the conservation law the tests pin down.
``TailAttribution``
    Stage contribution shares conditional on ``total > quantile(q)``.

Conservation contract
---------------------
Within one record the :data:`STAGES` columns, summed **left to right in
schema order**, reproduce ``total``. ``join_slack`` makes this hold by
construction: it is the residual ``total - sum(other columns)``,
refined so the float re-sum is bit-exact (see :func:`residual_slack`).
Its magnitude is the fork-join overlap — typically *negative*, since
``TS`` and ``TD`` overlap on the critical path rather than add — which
is exactly the slack Theorem 1's upper bound gives away.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError, ValidationError

__all__ = [
    "STAGES",
    "GROUPS",
    "AttributionRecord",
    "AttributionSink",
    "AttributionSet",
    "TailAttribution",
    "analytic_reference",
    "residual_slack",
]

#: Stage columns of one attribution record, in summation order. The
#: conservation law sums them left to right; ``join_slack`` (last) is
#: the residual that closes the sum against ``total``.
STAGES = (
    "routing",
    "network",
    "server_queue",
    "server_service",
    "db_queue",
    "db_service",
    "policy",
    "join_slack",
)

#: Coarse stage groups matching :meth:`LatencyEstimate.breakdown` — the
#: vocabulary the analytic reference speaks.
GROUPS = ("network", "server", "database", "policy", "join_slack")

_GROUP_MEMBERS: Dict[str, Tuple[str, ...]] = {
    "network": ("routing", "network"),
    "server": ("server_queue", "server_service"),
    "database": ("db_queue", "db_service"),
    "policy": ("policy",),
    "join_slack": ("join_slack",),
}

#: Hot-path row layout (what recorders append). ``routing`` is always
#: zero in both simulators (dispatch is instantaneous) and ``join_slack``
#: is derived, so neither travels through the hot path.
ROW_FIELDS = (
    "request_id",
    "born",
    "completed",
    "total",
    "network",
    "server_queue",
    "server_service",
    "db_queue",
    "db_service",
    "policy",
)
_ROW_WIDTH = len(ROW_FIELDS)

# Full (built) matrix layout: 4 meta columns then the 8 STAGES columns.
_META_WIDTH = 4
_COL_TOTAL = 3
_FULL_WIDTH = _META_WIDTH + len(STAGES)

#: Default bounded-reservoir capacity (full-fidelity records retained).
DEFAULT_MAX_RECORDS = 100_000

#: Pending rows buffered between vectorized flushes.
_FLUSH_CHUNK = 65_536


def residual_slack(total: np.ndarray, partial_sum: np.ndarray) -> np.ndarray:
    """``total - partial_sum``, refined until the float re-sum closes.

    When ``partial_sum/total`` is within ``[1/2, 2]`` the subtraction is
    exact (Sterbenz) and the re-sum ``fl(s + slack)`` hits ``total``
    bit-exactly with zero iterations. Outside that band the naive
    residual can miss by an ulp; the fixed-point corrections — subtract
    the re-sum's error from the slack — close the gap whenever a closing
    double exists (they cannot when ``|s|`` is so much larger than
    ``|total|`` that the sum's spacing exceeds ``total``'s ulp — a
    regime real stage decompositions never enter, since the serial stage
    sum is at most a few times the request latency).
    """
    total = np.asarray(total, dtype=float)
    s = np.asarray(partial_sum, dtype=float)
    slack = total - s
    for _ in range(4):
        err = (s + slack) - total
        if not np.any(err):
            break
        slack = slack - err
    return slack


def _ordered_sum(columns: Iterable[np.ndarray]) -> np.ndarray:
    """Left-to-right float sum — the documented conservation order."""
    iterator = iter(columns)
    acc = np.array(next(iterator), dtype=float, copy=True)
    for column in iterator:
        acc = acc + column
    return acc


def _row_matrix(rows: List[tuple]) -> np.ndarray:
    """Tuple rows -> ``n x ROW_WIDTH`` float matrix in one flat pass.

    ``chain.from_iterable`` flattens in C — ~35% faster per row than a
    nested generator expression, and this conversion dominates the
    amortized flush cost the speed bench's attr/sink floor enforces.
    """
    flat = np.fromiter(
        itertools.chain.from_iterable(rows),
        dtype=float,
        count=len(rows) * _ROW_WIDTH,
    )
    return flat.reshape(len(rows), _ROW_WIDTH)


@dataclasses.dataclass(frozen=True)
class AttributionRecord:
    """One request's latency decomposition over :data:`STAGES`."""

    request_id: int
    born: float
    completed: float
    total: float
    stages: Dict[str, float]

    def components_sum(self) -> float:
        """The stage columns summed in schema order (== ``total``)."""
        acc = 0.0
        for name in STAGES:
            acc = acc + self.stages[name]
        return acc

    def waterfall(self) -> List[Tuple[str, float]]:
        """Non-zero stages, largest first — the critical-path view."""
        items = [
            (name, self.stages[name])
            for name in STAGES
            if self.stages[name] != 0.0
        ]
        return sorted(items, key=lambda item: -abs(item[1]))

    def to_dict(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "born": self.born,
            "completed": self.completed,
            "total": self.total,
            "stages": dict(self.stages),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AttributionRecord":
        try:
            stages = dict(payload["stages"])
            return cls(
                request_id=int(payload["request_id"]),
                born=float(payload["born"]),
                completed=float(payload["completed"]),
                total=float(payload["total"]),
                stages={name: float(stages[name]) for name in STAGES},
            )
        except KeyError as exc:
            raise ConfigError(f"attribution record missing key: {exc}") from exc


@dataclasses.dataclass(frozen=True)
class TailAttribution:
    """Stage shares conditional on ``total >= quantile(q)``.

    ``shares[s]`` is ``sum(stage s over tail requests) / sum(total over
    tail requests)`` — the fraction of tail latency stage ``s`` carried.
    The positive stages sum to ``1 - shares['join_slack']`` (slack is
    typically negative: the fork-join overlap).
    """

    quantile: float
    threshold: float
    n_tail: int
    shares: Dict[str, float]
    means: Dict[str, float]

    @property
    def dominant(self) -> str:
        """The stage carrying the largest tail share (slack excluded)."""
        candidates = {
            name: share
            for name, share in self.shares.items()
            if name != "join_slack"
        }
        return max(candidates, key=candidates.get)

    def group_shares(self) -> Dict[str, float]:
        return {
            group: sum(self.shares[name] for name in members)
            for group, members in _GROUP_MEMBERS.items()
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "quantile": self.quantile,
            "threshold": self.threshold,
            "n_tail": self.n_tail,
            "shares": dict(self.shares),
            "means": dict(self.means),
            "dominant": self.dominant,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TailAttribution":
        try:
            return cls(
                quantile=float(payload["quantile"]),
                threshold=float(payload["threshold"]),
                n_tail=int(payload["n_tail"]),
                shares={k: float(v) for k, v in payload["shares"].items()},
                means={k: float(v) for k, v in payload["means"].items()},
            )
        except KeyError as exc:
            raise ConfigError(f"tail attribution missing key: {exc}") from exc


@dataclasses.dataclass(frozen=True, eq=False)
class AttributionSet:
    """Columnar per-request attribution built by an :class:`AttributionSink`.

    ``sums``/``sum_total``/``count`` cover *every* recorded request;
    the aligned arrays (``total`` + ``stages``) are the bounded
    reservoir — the full population when it fit, an unbiased uniform
    sample otherwise. ``slowest`` keeps the K worst requests at full
    fidelity regardless of sampling.
    """

    count: int
    sums: Dict[str, float]
    sum_total: float
    request_id: np.ndarray
    born: np.ndarray
    completed: np.ndarray
    total: np.ndarray
    stages: Dict[str, np.ndarray]
    slowest: Tuple[AttributionRecord, ...]
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)

    # -- population statistics (exact sums) -----------------------------

    @property
    def n_retained(self) -> int:
        return int(self.total.size)

    def mean_total(self) -> float:
        return self.sum_total / self.count if self.count else 0.0

    def means(self) -> Dict[str, float]:
        """Exact per-stage mean contribution (seconds)."""
        if not self.count:
            return {name: 0.0 for name in STAGES}
        return {name: self.sums[name] / self.count for name in STAGES}

    def mean_shares(self) -> Dict[str, float]:
        """Per-stage share of mean total latency (slack included)."""
        if self.sum_total == 0.0:
            return {name: 0.0 for name in STAGES}
        return {name: self.sums[name] / self.sum_total for name in STAGES}

    def group_means(self) -> Dict[str, float]:
        means = self.means()
        return {
            group: sum(means[name] for name in members)
            for group, members in _GROUP_MEMBERS.items()
        }

    def group_shares(self) -> Dict[str, float]:
        shares = self.mean_shares()
        return {
            group: sum(shares[name] for name in members)
            for group, members in _GROUP_MEMBERS.items()
        }

    # -- tail / record access -------------------------------------------

    def tail(self, quantile: float = 0.99) -> TailAttribution:
        """Stage shares over requests at or above the latency quantile."""
        if not 0.0 <= quantile < 1.0:
            raise ValidationError(
                f"quantile must be in [0, 1), got {quantile}"
            )
        if self.n_retained == 0:
            raise ValidationError("attribution set holds no records")
        threshold = float(np.quantile(self.total, quantile))
        mask = self.total >= threshold
        n_tail = int(mask.sum())
        tail_total = float(self.total[mask].sum())
        shares = {}
        means = {}
        for name in STAGES:
            stage_sum = float(self.stages[name][mask].sum())
            shares[name] = stage_sum / tail_total if tail_total else 0.0
            means[name] = stage_sum / n_tail
        return TailAttribution(
            quantile=quantile,
            threshold=threshold,
            n_tail=n_tail,
            shares=shares,
            means=means,
        )

    def record(self, index: int) -> AttributionRecord:
        """The ``index``-th retained record as a typed object."""
        return AttributionRecord(
            request_id=int(self.request_id[index]),
            born=float(self.born[index]),
            completed=float(self.completed[index]),
            total=float(self.total[index]),
            stages={
                name: float(self.stages[name][index]) for name in STAGES
            },
        )

    def conservation_residuals(self) -> np.ndarray:
        """``ordered stage sum - total`` per retained record.

        All-zero (bit-exact) for event-engine records; within float
        tolerance for the vectorized backend. This is *the* invariant
        the test suite pins.
        """
        return _ordered_sum(self.stages[name] for name in STAGES) - self.total

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "repro-attribution",
            "count": self.count,
            "sums": dict(self.sums),
            "sum_total": self.sum_total,
            "request_id": self.request_id.tolist(),
            "born": self.born.tolist(),
            "completed": self.completed.tolist(),
            "total": self.total.tolist(),
            "stages": {
                name: self.stages[name].tolist() for name in STAGES
            },
            "slowest": [record.to_dict() for record in self.slowest],
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AttributionSet":
        if not isinstance(payload, dict):
            raise ConfigError("attribution payload must be an object")
        if payload.get("kind") != "repro-attribution":
            raise ConfigError(
                f"not an attribution payload: kind={payload.get('kind')!r}"
            )
        try:
            return cls(
                count=int(payload["count"]),
                sums={k: float(v) for k, v in payload["sums"].items()},
                sum_total=float(payload["sum_total"]),
                request_id=np.asarray(payload["request_id"], dtype=float),
                born=np.asarray(payload["born"], dtype=float),
                completed=np.asarray(payload["completed"], dtype=float),
                total=np.asarray(payload["total"], dtype=float),
                stages={
                    name: np.asarray(payload["stages"][name], dtype=float)
                    for name in STAGES
                },
                slowest=tuple(
                    AttributionRecord.from_dict(item)
                    for item in payload["slowest"]
                ),
                meta=dict(payload.get("meta") or {}),
            )
        except KeyError as exc:
            raise ConfigError(f"attribution payload missing key: {exc}") from exc


class AttributionSink:
    """Recording half of the provenance layer (one simulation run).

    Hot path: ``sink.append(row)`` where ``append`` is a *bound plain
    list append* (grab it once, like the timeline sinks) and ``row`` is
    a :data:`ROW_FIELDS` tuple. Callers that complete work in larger
    units (the engine completes a request every dozen events) should
    call :meth:`maybe_flush` at that cadence so memory stays bounded;
    the flush itself is one vectorized pass per ~65k rows.

    ``max_records`` bounds the full-fidelity reservoir (algorithm R,
    uniform, driven by the sink's own ``default_rng(seed)`` — never a
    simulator stream). ``slowest_k`` bounds the always-kept worst set.
    """

    def __init__(
        self,
        *,
        max_records: int = DEFAULT_MAX_RECORDS,
        slowest_k: int = 10,
        seed: int = 0,
    ) -> None:
        if max_records < 1:
            raise ValidationError(
                f"max_records must be >= 1, got {max_records}"
            )
        if slowest_k < 1:
            raise ValidationError(f"slowest_k must be >= 1, got {slowest_k}")
        self._max_records = int(max_records)
        self._slowest_k = int(slowest_k)
        self._seed = int(seed)
        self._pending: List[tuple] = []
        #: Bound hot-path append — identity is stable across reset().
        self.append = self._pending.append
        self._reset_state()

    def _reset_state(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._count = 0
        self._sums = np.zeros(len(STAGES))
        self._sum_total = 0.0
        self._reservoir = np.empty((self._max_records, _FULL_WIDTH))
        self._filled = 0
        self._slow: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Drop everything in place (e.g. at the warmup boundary)."""
        self._pending.clear()
        self._reset_state()

    @property
    def count(self) -> int:
        return self._count + len(self._pending)

    def maybe_flush(self) -> None:
        """Vectorized flush once the pending buffer reaches the chunk."""
        if len(self._pending) >= _FLUSH_CHUNK:
            self.flush()

    def flush(self) -> None:
        if not self._pending:
            return
        mat = _row_matrix(self._pending)
        self._pending.clear()
        self._ingest(mat)

    def record_columns(
        self,
        *,
        request_id: np.ndarray,
        born: np.ndarray,
        completed: np.ndarray,
        total: np.ndarray,
        network: np.ndarray,
        server_queue: np.ndarray,
        server_service: np.ndarray,
        db_queue: np.ndarray,
        db_service: np.ndarray,
        policy: np.ndarray,
    ) -> None:
        """Bulk-record column arrays (the vectorized backend's path)."""
        self.flush()  # preserve arrival order against buffered rows
        mat = np.column_stack(
            [
                np.asarray(request_id, dtype=float),
                np.asarray(born, dtype=float),
                np.asarray(completed, dtype=float),
                np.asarray(total, dtype=float),
                np.asarray(network, dtype=float),
                np.asarray(server_queue, dtype=float),
                np.asarray(server_service, dtype=float),
                np.asarray(db_queue, dtype=float),
                np.asarray(db_service, dtype=float),
                np.asarray(policy, dtype=float),
            ]
        )
        if mat.shape[0]:
            self._ingest(mat)

    def _ingest(self, mat: np.ndarray) -> None:
        """One vectorized pass: derive columns, sums, reservoir, slowest."""
        n = mat.shape[0]
        full = np.empty((n, _FULL_WIDTH))
        full[:, :_META_WIDTH] = mat[:, :_META_WIDTH]
        full[:, _META_WIDTH] = 0.0  # routing (reserved)
        full[:, _META_WIDTH + 1 : _META_WIDTH + 7] = mat[:, 4:_ROW_WIDTH]
        partial = _ordered_sum(
            full[:, _META_WIDTH + k] for k in range(len(STAGES) - 1)
        )
        full[:, _META_WIDTH + 7] = residual_slack(full[:, _COL_TOTAL], partial)

        self._sums += full[:, _META_WIDTH:].sum(axis=0)
        self._sum_total += float(full[:, _COL_TOTAL].sum())
        start = self._count
        self._count += n

        # Reservoir (algorithm R, vectorized). While under capacity the
        # reservoir has kept every record, so the head of the chunk goes
        # straight in; the rest replace uniform slots.
        cap = self._max_records
        offset = 0
        if self._filled < cap:
            take = min(cap - self._filled, n)
            self._reservoir[self._filled : self._filled + take] = full[:take]
            self._filled += take
            offset = take
        if offset < n:
            global_index = np.arange(
                start + offset, start + n, dtype=np.float64
            )
            slots = (
                self._rng.random(n - offset) * (global_index + 1.0)
            ).astype(np.int64)
            keep = slots < cap
            self._reservoir[slots[keep]] = full[offset:][keep]

        pool = full if self._slow is None else np.vstack([self._slow, full])
        order = np.argsort(-pool[:, _COL_TOTAL], kind="stable")
        self._slow = pool[order[: self._slowest_k]].copy()

    def build(self, *, meta: Optional[Dict[str, object]] = None) -> AttributionSet:
        """Flush and assemble the columnar :class:`AttributionSet`."""
        self.flush()
        retained = self._reservoir[: self._filled]
        slow = self._slow if self._slow is not None else np.empty((0, _FULL_WIDTH))
        slowest = tuple(
            AttributionRecord(
                request_id=int(row[0]),
                born=float(row[1]),
                completed=float(row[2]),
                total=float(row[_COL_TOTAL]),
                stages={
                    name: float(row[_META_WIDTH + k])
                    for k, name in enumerate(STAGES)
                },
            )
            for row in slow
        )
        return AttributionSet(
            count=self._count,
            sums={
                name: float(self._sums[k]) for k, name in enumerate(STAGES)
            },
            sum_total=self._sum_total,
            request_id=retained[:, 0].copy(),
            born=retained[:, 1].copy(),
            completed=retained[:, 2].copy(),
            total=retained[:, _COL_TOTAL].copy(),
            stages={
                name: retained[:, _META_WIDTH + k].copy()
                for k, name in enumerate(STAGES)
            },
            slowest=slowest,
            meta=dict(meta or {}),
        )


def analytic_reference(estimate) -> Dict[str, float]:
    """The analytic per-group expectation (the ``estimate`` column).

    Maps a :class:`~repro.core.LatencyEstimate` onto the :data:`GROUPS`
    vocabulary: constant network ``TN``, the Theorem 1 server-stage
    midpoint for ``TS``, the eq. (23) database estimate for ``TD``,
    zero policy overhead (the analytic model has no retries), and the
    slack the eq. (1) midpoint leaves against the serial stage sum —
    the analytic twin of the simulated ``join_slack``.
    """
    network = float(estimate.network)
    server = float(estimate.server.midpoint)
    database = float(estimate.database)
    total = float(estimate.total_midpoint)
    return {
        "network": network,
        "server": server,
        "database": database,
        "policy": 0.0,
        "join_slack": total - (network + server + database),
        "total": total,
    }
