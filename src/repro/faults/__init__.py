"""Declarative fault injection for the simulators.

:class:`FaultSchedule` describes *when* the system degrades (server
slowdowns, GC-style pauses, database overloads, routing-share shifts);
:mod:`repro.faults.transient` analyzes *how* latency responds along the
simulated-time axis. Schedules are pure data: the same object drives the
event engine and the vectorized fast path, and round-trips through
experiment configs and JSON checkpoints.
"""

from .schedule import (
    DatabaseOverload,
    FaultSchedule,
    FaultWindow,
    ServerPause,
    ServerSlowdown,
    ShareShift,
)
from .transient import RequestRecord, TrajectoryPoint, trajectory, window_effect

__all__ = [
    "DatabaseOverload",
    "FaultSchedule",
    "FaultWindow",
    "RequestRecord",
    "ServerPause",
    "ServerSlowdown",
    "ShareShift",
    "TrajectoryPoint",
    "trajectory",
    "window_effect",
]
