"""Transient trajectory analysis for fault-window runs.

Steady-state recorders (mean, p99 over the whole run) smear a fault
window's effect over the fault-free majority of the run. To *see* the
§5.1-style overloaded-database transient — latency climbing inside the
window, draining after it closes — the simulator can keep a per-request
log (``keep_request_log=True``), and this module buckets that log along
the completion-time axis.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ValidationError

__all__ = ["RequestRecord", "TrajectoryPoint", "trajectory", "window_effect"]


@dataclasses.dataclass(frozen=True)
class RequestRecord:
    """One completed request on the simulated-time axis (seconds)."""

    born: float
    completed: float
    total: float
    server: float
    database: float
    network: float


@dataclasses.dataclass(frozen=True)
class TrajectoryPoint:
    """Aggregates over one completion-time bucket."""

    start: float
    end: float
    count: int
    mean_total: float
    mean_server: float
    mean_database: float
    p99_total: float

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.start + self.end)


def trajectory(
    log: Sequence[RequestRecord], *, n_buckets: int = 20
) -> List[TrajectoryPoint]:
    """Bucket a request log into ``n_buckets`` equal completion-time bins.

    Empty buckets are dropped (an overloaded window can starve
    completions), so consumers should read bucket ``start``/``end``
    rather than assuming uniform spacing.
    """
    if n_buckets < 1:
        raise ValidationError(f"n_buckets must be >= 1, got {n_buckets}")
    if not log:
        return []
    completed = np.asarray([record.completed for record in log])
    totals = np.asarray([record.total for record in log])
    servers = np.asarray([record.server for record in log])
    databases = np.asarray([record.database for record in log])
    lo = float(completed.min())
    hi = float(completed.max())
    if hi <= lo:
        hi = lo + 1e-12
    edges = np.linspace(lo, hi, n_buckets + 1)
    points: List[TrajectoryPoint] = []
    for i in range(n_buckets):
        if i == n_buckets - 1:
            mask = (completed >= edges[i]) & (completed <= edges[i + 1])
        else:
            mask = (completed >= edges[i]) & (completed < edges[i + 1])
        count = int(mask.sum())
        if count == 0:
            continue
        points.append(
            TrajectoryPoint(
                start=float(edges[i]),
                end=float(edges[i + 1]),
                count=count,
                mean_total=float(totals[mask].mean()),
                mean_server=float(servers[mask].mean()),
                mean_database=float(databases[mask].mean()),
                p99_total=float(np.quantile(totals[mask], 0.99)),
            )
        )
    return points


def window_effect(
    log: Sequence[RequestRecord],
    *,
    window_start: float,
    window_end: float,
    stage: str = "database",
    settle: float = 0.0,
) -> Dict[str, float]:
    """Mean stage latency before / during / after a fault window.

    ``during`` covers completions inside ``[window_start, window_end)``;
    ``after`` starts ``settle`` seconds past the window close, giving the
    backlog time to drain before recovery is measured. Phases with no
    completions report ``nan``.
    """
    if window_end <= window_start:
        raise ValidationError("window_end must be after window_start")
    if stage not in ("total", "server", "database", "network"):
        raise ValidationError(f"unknown stage {stage!r}")
    values = np.asarray([getattr(record, stage) for record in log])
    completed = np.asarray([record.completed for record in log])

    def phase_mean(mask: np.ndarray) -> float:
        return float(values[mask].mean()) if mask.any() else float("nan")

    return {
        "before": phase_mean(completed < window_start),
        "during": phase_mean(
            (completed >= window_start) & (completed < window_end)
        ),
        "after": phase_mean(completed >= window_end + settle),
    }
