"""Declarative fault schedules: time-windowed degradations of the system.

The paper's model (and our Theorem-1 pipeline) describes a fault-free
steady state; real Memcached deployments degrade — a server's effective
service rate drops while a neighbour rebuilds, a GC-style pause stalls
dequeues, the backing database saturates under a miss storm, a ring
change shifts routing shares. :class:`FaultSchedule` captures those
episodes as data: a tuple of time-windowed fault events that the
simulators consult, so the *same* schedule drives the event engine and
the vectorized fast path, serializes into experiment configs, and
round-trips through JSON checkpoints.

Four window kinds:

* :class:`ServerSlowdown` — multiply one server's (or every server's)
  service rate by ``factor`` in ``[start, start+duration)``;
* :class:`ServerPause` — GC-style stall: the server starts no new
  service during the window (in-flight service finishes);
* :class:`DatabaseOverload` — multiply the database service rate by
  ``factor`` during the window (the §5.1 overload transient);
* :class:`ShareShift` — replace the routing shares ``{p_j}`` during the
  window (load-imbalance episodes).

Windows compose: overlapping rate windows multiply, overlapping pauses
union, and the latest-starting active :class:`ShareShift` wins.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigError, ValidationError

__all__ = [
    "DatabaseOverload",
    "FaultSchedule",
    "FaultWindow",
    "ServerPause",
    "ServerSlowdown",
    "ShareShift",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


@dataclasses.dataclass(frozen=True)
class FaultWindow:
    """Base class: one fault active in ``[start, start + duration)``."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        _require(self.start >= 0.0, f"start must be >= 0, got {self.start}")
        _require(self.duration > 0.0, f"duration must be > 0, got {self.duration}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, t: float) -> bool:
        return self.start <= t < self.end

    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["kind"] = _KIND_OF[type(self)]
        if payload.get("shares") is not None:
            payload["shares"] = list(payload["shares"])
        return payload


@dataclasses.dataclass(frozen=True)
class ServerSlowdown(FaultWindow):
    """Service-rate degradation: ``muS -> factor * muS`` on one server.

    ``server=None`` degrades every server (e.g. a rack-wide thermal
    event); ``factor`` must be in ``(0, 1]`` — use the workload knobs,
    not a fault, to model *speedups*.
    """

    factor: float = 0.5
    server: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(
            0.0 < self.factor <= 1.0,
            f"slowdown factor must be in (0, 1], got {self.factor}",
        )
        _require(
            self.server is None or self.server >= 0,
            f"server index must be >= 0, got {self.server}",
        )


@dataclasses.dataclass(frozen=True)
class ServerPause(FaultWindow):
    """GC-style stall: the server starts no new service in the window.

    In-flight service completes (the thread already holds the item);
    queued keys wait until the pause lifts. ``server=None`` pauses the
    whole tier (stop-the-world across a co-scheduled fleet).
    """

    server: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(
            self.server is None or self.server >= 0,
            f"server index must be >= 0, got {self.server}",
        )


@dataclasses.dataclass(frozen=True)
class DatabaseOverload(FaultWindow):
    """Database-rate degradation: ``muD -> factor * muD`` in the window."""

    factor: float = 0.25

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(
            0.0 < self.factor <= 1.0,
            f"overload factor must be in (0, 1], got {self.factor}",
        )


@dataclasses.dataclass(frozen=True)
class ShareShift(FaultWindow):
    """Routing-share override: keys route by ``shares`` in the window."""

    shares: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.shares, tuple):
            object.__setattr__(self, "shares", tuple(self.shares))
        _require(len(self.shares) >= 1, "shares must be non-empty")
        _require(
            all(s >= 0.0 for s in self.shares), "shares must be non-negative"
        )
        _require(
            abs(sum(self.shares) - 1.0) < 1e-9,
            f"shares must sum to 1, got {sum(self.shares)}",
        )


_KIND_OF = {
    ServerSlowdown: "server-slowdown",
    ServerPause: "server-pause",
    DatabaseOverload: "database-overload",
    ShareShift: "share-shift",
}
_CLASS_OF = {kind: cls for cls, kind in _KIND_OF.items()}


def _window_from_dict(payload: Dict[str, object]) -> FaultWindow:
    if not isinstance(payload, dict):
        raise ConfigError("fault window payload must be an object")
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = _CLASS_OF.get(kind)
    if cls is None:
        raise ConfigError(
            f"unknown fault kind {kind!r} (have {sorted(_CLASS_OF)})"
        )
    known = {field.name for field in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(
            f"unknown keys for fault {kind!r}: {sorted(unknown)}"
        )
    if data.get("shares") is not None:
        data["shares"] = tuple(data["shares"])
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigError(f"incomplete fault {kind!r}: {exc}") from exc


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """An immutable, hashable set of fault windows.

    The schedule is pure data — simulators query it with the accessor
    methods below; nothing here touches an event loop. An empty schedule
    behaves exactly like no schedule at all.
    """

    windows: Tuple[FaultWindow, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.windows, tuple):
            object.__setattr__(self, "windows", tuple(self.windows))
        for window in self.windows:
            if not isinstance(window, FaultWindow):
                raise ValidationError(
                    f"windows must be FaultWindow instances, got {window!r}"
                )

    # ------------------------------------------------------------------
    # Structure queries (used to decide what to wire where).
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.windows

    @property
    def horizon(self) -> float:
        """Last instant any window is active (0 for an empty schedule)."""
        return max((w.end for w in self.windows), default=0.0)

    @property
    def has_server_slowdowns(self) -> bool:
        return any(isinstance(w, ServerSlowdown) for w in self.windows)

    @property
    def has_server_pauses(self) -> bool:
        return any(isinstance(w, ServerPause) for w in self.windows)

    @property
    def has_database_overloads(self) -> bool:
        return any(isinstance(w, DatabaseOverload) for w in self.windows)

    @property
    def has_share_shifts(self) -> bool:
        return any(isinstance(w, ShareShift) for w in self.windows)

    @property
    def is_vectorizable(self) -> bool:
        """True when the ``fastpath-system`` backend can apply every
        window — only rate-scaling windows (slowdowns and database
        overloads) vectorize; pauses and share shifts need the engine."""
        return all(
            isinstance(w, (ServerSlowdown, DatabaseOverload))
            for w in self.windows
        )

    def max_server_index(self) -> Optional[int]:
        """Largest explicit server index any window names, if any."""
        indexed = [
            w.server
            for w in self.windows
            if isinstance(w, (ServerSlowdown, ServerPause))
            and w.server is not None
        ]
        return max(indexed) if indexed else None

    def validate_for(self, n_servers: int) -> None:
        """Reject windows that name servers outside the cluster."""
        worst = self.max_server_index()
        if worst is not None and worst >= n_servers:
            raise ValidationError(
                f"fault schedule names server {worst} but the cluster has "
                f"{n_servers} servers"
            )
        for window in self.windows:
            if isinstance(window, ShareShift) and len(window.shares) != n_servers:
                raise ValidationError(
                    f"share shift has {len(window.shares)} shares for "
                    f"{n_servers} servers"
                )

    # ------------------------------------------------------------------
    # Point queries (the event engine's view).
    # ------------------------------------------------------------------

    def server_rate_factor(self, server: int, t: float) -> float:
        """Product of active slowdown factors touching ``server`` at ``t``."""
        factor = 1.0
        for window in self.windows:
            if (
                isinstance(window, ServerSlowdown)
                and (window.server is None or window.server == server)
                and window.active(t)
            ):
                factor *= window.factor
        return factor

    def database_rate_factor(self, t: float) -> float:
        """Product of active database-overload factors at ``t``."""
        factor = 1.0
        for window in self.windows:
            if isinstance(window, DatabaseOverload) and window.active(t):
                factor *= window.factor
        return factor

    def server_pause_end(self, server: int, t: float) -> float:
        """When the pause covering ``server`` at ``t`` lifts.

        Returns ``t`` itself when the server is not paused; chained
        overlapping pauses are followed to the final end.
        """
        end = t
        changed = True
        while changed:
            changed = False
            for window in self.windows:
                if (
                    isinstance(window, ServerPause)
                    and (window.server is None or window.server == server)
                    and window.active(end)
                    and window.end > end
                ):
                    end = window.end
                    changed = True
        return end

    def shares_at(self, t: float) -> Optional[Tuple[float, ...]]:
        """Routing shares in force at ``t`` (None = deployment default)."""
        best: Optional[ShareShift] = None
        for window in self.windows:
            if isinstance(window, ShareShift) and window.active(t):
                if best is None or window.start >= best.start:
                    best = window
        return best.shares if best is not None else None

    # ------------------------------------------------------------------
    # Vector queries (the fastpath-system view).
    # ------------------------------------------------------------------

    def server_rate_factors(
        self, server: int, times: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`server_rate_factor` over an array of times."""
        factors = np.ones_like(np.asarray(times, dtype=float))
        for window in self.windows:
            if isinstance(window, ServerSlowdown) and (
                window.server is None or window.server == server
            ):
                mask = (times >= window.start) & (times < window.end)
                factors[mask] *= window.factor
        return factors

    def database_rate_factors(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`database_rate_factor` over an array of times."""
        factors = np.ones_like(np.asarray(times, dtype=float))
        for window in self.windows:
            if isinstance(window, DatabaseOverload):
                mask = (times >= window.start) & (times < window.end)
                factors[mask] *= window.factor
        return factors

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"windows": [window.to_dict() for window in self.windows]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSchedule":
        if not isinstance(payload, dict):
            raise ConfigError("fault schedule payload must be an object")
        unknown = set(payload) - {"windows"}
        if unknown:
            raise ConfigError(f"unknown fault schedule keys: {sorted(unknown)}")
        windows = payload.get("windows", [])
        if not isinstance(windows, (list, tuple)):
            raise ConfigError("fault schedule 'windows' must be a list")
        return cls(tuple(_window_from_dict(w) for w in windows))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid fault schedule JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultSchedule":
        return cls.from_json(Path(path).read_text())

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    # ------------------------------------------------------------------
    # Conveniences.
    # ------------------------------------------------------------------

    def extended(self, *windows: FaultWindow) -> "FaultSchedule":
        """A new schedule with ``windows`` appended."""
        return FaultSchedule(self.windows + tuple(windows))

    @classmethod
    def single(cls, window: FaultWindow) -> "FaultSchedule":
        return cls((window,))
