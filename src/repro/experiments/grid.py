"""Grid/Suite expansion: factor axes x seed replications -> cells.

A :class:`Grid` crosses factor axes over a base :class:`Scenario` and
replicates each point ``seeds`` times; a :class:`Suite` names the grid
and fixes the evaluation backend. Expansion assigns every cell a seed
derived via ``np.random.SeedSequence(base.seed).spawn`` — a pure
function of (suite seed, cell index) — so results are bit-identical no
matter how many workers execute the cells or in which order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from .factors import get_factor
from .scenario import BACKENDS, Scenario


@dataclasses.dataclass(frozen=True)
class Cell:
    """One unit of experiment work: a scenario plus its grid coordinates."""

    index: int
    cell_id: str
    scenario: Scenario
    coords: Tuple[Tuple[str, float], ...]
    backend: str
    options: Tuple[Tuple[str, object], ...] = ()

    @property
    def coord_dict(self) -> Dict[str, float]:
        return dict(self.coords)

    @property
    def option_dict(self) -> Dict[str, object]:
        return dict(self.options)


def _cell_id(index: int, scenario: Scenario, backend: str, options) -> str:
    """Stable id: grid position + a digest of what the cell computes.

    The digest covers the scenario, backend, and options, so a resumed
    run refuses checkpoints from a different grid definition.
    """
    blob = json.dumps(
        {
            "scenario": scenario.to_dict(),
            "backend": backend,
            "options": {str(k): repr(v) for k, v in options},
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(blob.encode()).hexdigest()[:10]
    return f"cell-{index:04d}-{digest}"


class Grid:
    """Cross-product of factor axes over a base scenario.

    Parameters
    ----------
    base:
        The scenario every cell starts from; its ``seed`` is the
        suite-level master seed.
    axes:
        Mapping of factor *name* (see :mod:`repro.experiments.factors`)
        to the sequence of values to sweep. Later axes vary fastest.
    seeds:
        Independent replications per grid point (distinct derived
        seeds); replication varies fastest of all.
    """

    def __init__(
        self,
        base: Scenario,
        axes: Mapping[str, Sequence[float]],
        *,
        seeds: int = 1,
    ) -> None:
        if seeds < 1:
            raise ValidationError(f"seeds must be >= 1, got {seeds}")
        self.base = base
        self.axes: Tuple[Tuple[str, Tuple[float, ...]], ...] = tuple(
            (name, tuple(float(v) for v in values)) for name, values in axes.items()
        )
        for name, values in self.axes:
            get_factor(name)  # fail fast on unknown factors
            if not values:
                raise ValidationError(f"axis {name!r} has no values")
        self.seeds = int(seeds)

    @property
    def n_cells(self) -> int:
        n = self.seeds
        for _, values in self.axes:
            n *= len(values)
        return n

    def cells(self, backend: str = "estimate", **options: object) -> List[Cell]:
        """Expand to concrete cells with spawned per-cell seeds."""
        if backend not in BACKENDS:
            raise ValidationError(
                f"unknown backend {backend!r} (have {BACKENDS})"
            )
        option_items = tuple(sorted(options.items()))
        value_lists = [values for _, values in self.axes]
        children = np.random.SeedSequence(self.base.seed).spawn(self.n_cells)
        cells: List[Cell] = []
        index = 0
        for combo in itertools.product(*value_lists) if value_lists else [()]:
            scenario = self.base
            coords: List[Tuple[str, float]] = []
            for (name, _values), value in zip(self.axes, combo):
                factor = get_factor(name)
                scenario = factor.apply(scenario, value)
                coords.append((factor.label, float(value)))
            for replicate in range(self.seeds):
                cell_seed = int(children[index].generate_state(1, np.uint64)[0])
                cell_scenario = scenario.replace(seed=cell_seed)
                cell_coords = tuple(coords + [("replicate", float(replicate))])
                cells.append(
                    Cell(
                        index=index,
                        cell_id=_cell_id(
                            index, cell_scenario, backend, option_items
                        ),
                        scenario=cell_scenario,
                        coords=cell_coords,
                        backend=backend,
                        options=option_items,
                    )
                )
                index += 1
        return cells


@dataclasses.dataclass
class Suite:
    """A named grid bound to an evaluation backend."""

    name: str
    grid: Grid
    backend: str = "estimate"
    options: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def n_cells(self) -> int:
        return self.grid.n_cells

    @property
    def axes(self) -> Tuple[Tuple[str, Tuple[float, ...]], ...]:
        return self.grid.axes

    def cells(self) -> List[Cell]:
        return self.grid.cells(self.backend, **self.options)


def sweep_suite(
    base: Scenario,
    factor_name: str,
    values: Sequence[float],
    *,
    backend: str = "estimate",
    seeds: int = 1,
    name: Optional[str] = None,
    **options: object,
) -> Suite:
    """One-axis suite — the shape behind ``repro sweep``."""
    return Suite(
        name=name or f"sweep-{factor_name}",
        grid=Grid(base, {factor_name: values}, seeds=seeds),
        backend=backend,
        options=dict(options),
    )
