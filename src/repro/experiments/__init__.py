"""Declarative experiment subsystem: Scenario -> Grid/Suite -> Runner.

Quickstart::

    from repro.experiments import Scenario, Grid, Suite, run_suite

    base = Scenario.paper_section_5_1()
    suite = Suite(
        "tail-vs-n",
        Grid(base, {"n": [10, 50, 150], "q": [0.0, 0.1]}, seeds=3),
        backend="fastpath",
    )
    result = run_suite(suite, workers=8, checkpoint_dir="runs/tail-vs-n")
    print(result.aggregate("p99"))

Results are bit-identical for any worker count, and an interrupted run
resumes with ``resume=True`` against the same checkpoint directory.
"""

from .factors import Factor, factor_names, get_factor, register_factor
from .grid import Cell, Grid, Suite, sweep_suite
from .options import (
    BackendOption,
    backend_options,
    option_names,
    options_from_args,
    validate_options,
)
from .runner import CellResult, ExperimentRunner, SuiteResult, run_suite
from .scenario import BACKENDS, DEFAULT_POOL_SIZE, Scenario, cell_metrics

__all__ = [
    "BACKENDS",
    "BackendOption",
    "DEFAULT_POOL_SIZE",
    "Cell",
    "CellResult",
    "ExperimentRunner",
    "Factor",
    "Grid",
    "Scenario",
    "Suite",
    "SuiteResult",
    "backend_options",
    "cell_metrics",
    "factor_names",
    "get_factor",
    "option_names",
    "options_from_args",
    "register_factor",
    "run_suite",
    "sweep_suite",
    "validate_options",
]
