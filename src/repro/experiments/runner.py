"""Process-parallel experiment execution with resumable checkpoints.

:class:`ExperimentRunner` fans a suite's cells out over a
``concurrent.futures.ProcessPoolExecutor``. Because every cell's seed
was derived at expansion time (``SeedSequence.spawn``, see
:mod:`repro.experiments.grid`), a cell computes the same bits no matter
which worker runs it, in what order, or whether it runs at all in this
process — so 1-worker and 8-worker runs produce identical
:class:`SuiteResult`\\ s, and interrupted suites resume from their
checkpoint directory without re-running completed cells.

Checkpoints are one JSON file per cell (written through the
observability serializer) keyed by the cell id, which embeds a digest
of the scenario + backend + options: resuming against a *changed* grid
re-runs the changed cells instead of silently reusing stale results.
"""

from __future__ import annotations

import dataclasses
import json
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigError, ReproError, SimulationError
from ..observability import json_dumps, provenance
from ..observability.attribution import AttributionSet
from ..observability.timeline import Timeline
from .grid import Cell, Suite
from .scenario import Scenario, cell_metrics

CHECKPOINT_KIND = "repro-experiment-cell"
SUITE_KIND = "repro-experiment-suite"


@dataclasses.dataclass
class CellResult:
    """One completed cell: coordinates, scalar metrics, provenance.

    ``elapsed`` (worker wall-clock) and ``resumed`` are excluded from
    equality so worker-count-invariance and resume produce *equal*
    results.
    """

    index: int
    cell_id: str
    backend: str
    coords: Dict[str, float]
    scenario: Scenario
    metrics: Dict[str, float]
    error: Optional[str] = None
    elapsed: float = dataclasses.field(default=0.0, compare=False)
    resumed: bool = dataclasses.field(default=False, compare=False)
    #: Windowed telemetry (a Timeline) when the cell's backend recorded
    #: one. Excluded from equality like ``elapsed``: worker-count
    #: invariance is about the scalar metrics.
    timeline: Optional[object] = dataclasses.field(default=None, compare=False)
    #: Per-request stage attribution (an AttributionSet) when the cell's
    #: backend recorded one. Excluded from equality like ``timeline``.
    attribution: Optional[object] = dataclasses.field(
        default=None, compare=False
    )
    #: Capacity-search artifact (a CapacityResult) when the cell was
    #: executed by the capacity executor instead of a plain backend
    #: call. Excluded from equality like ``timeline``.
    capacity: Optional[object] = dataclasses.field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": CHECKPOINT_KIND,
            "index": self.index,
            "cell_id": self.cell_id,
            "backend": self.backend,
            "coords": dict(self.coords),
            "scenario": self.scenario.to_dict(),
            "metrics": dict(self.metrics),
            "error": self.error,
            "elapsed": self.elapsed,
            "timeline": (
                self.timeline.to_dict() if self.timeline is not None else None
            ),
            "attribution": (
                self.attribution.to_dict()
                if self.attribution is not None
                else None
            ),
            "capacity": (
                self.capacity.to_dict() if self.capacity is not None else None
            ),
            "provenance": provenance(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CellResult":
        if not isinstance(payload, dict) or payload.get("kind") != CHECKPOINT_KIND:
            raise ConfigError("not an experiment-cell checkpoint")
        return cls(
            index=int(payload["index"]),
            cell_id=str(payload["cell_id"]),
            backend=str(payload["backend"]),
            coords={str(k): float(v) for k, v in payload["coords"].items()},
            scenario=Scenario.from_dict(payload["scenario"]),
            metrics={str(k): float(v) for k, v in payload["metrics"].items()},
            error=payload.get("error"),
            elapsed=float(payload.get("elapsed", 0.0)),
            timeline=(
                Timeline.from_dict(payload["timeline"])
                if payload.get("timeline") is not None
                else None
            ),
            attribution=(
                AttributionSet.from_dict(payload["attribution"])
                if payload.get("attribution") is not None
                else None
            ),
            capacity=(
                _capacity_from_dict(payload["capacity"])
                if payload.get("capacity") is not None
                else None
            ),
        )


def _capacity_from_dict(payload: Dict[str, object]):
    # Imported lazily: repro.capacity builds on repro.experiments, so a
    # module-level import would be circular.
    from ..capacity import CapacityResult

    return CapacityResult.from_dict(payload)


@dataclasses.dataclass
class SuiteResult:
    """All cell results of one suite, in grid order."""

    name: str
    backend: str
    axes: Tuple[Tuple[str, Tuple[float, ...]], ...]
    cells: List[CellResult]
    executed: int = dataclasses.field(default=0, compare=False)
    resumed: int = dataclasses.field(default=0, compare=False)
    elapsed: float = dataclasses.field(default=0.0, compare=False)

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def series(self, metric: str) -> List[float]:
        """One metric across all cells, in grid order."""
        return [cell.metrics[metric] for cell in self.cells]

    def coordinates(self, label: str) -> List[float]:
        return [cell.coords[label] for cell in self.cells]

    def aggregate(self, metric: str) -> "Dict[Tuple[float, ...], float]":
        """Mean of ``metric`` over replicates, keyed by axis coordinates."""
        sums: Dict[Tuple[float, ...], List[float]] = {}
        for cell in self.cells:
            key = tuple(
                value for label, value in cell.coords.items() if label != "replicate"
            )
            sums.setdefault(key, []).append(cell.metrics[metric])
        return {key: sum(vals) / len(vals) for key, vals in sums.items()}

    def table(self) -> Tuple[List[str], List[List[float]]]:
        """(header, rows) across coords + metrics, for CLI/bench printers."""
        if not self.cells:
            return [], []
        coord_labels = list(self.cells[0].coords)
        metric_labels = sorted(self.cells[0].metrics)
        header = coord_labels + metric_labels
        rows = [
            [cell.coords[label] for label in coord_labels]
            + [cell.metrics[label] for label in metric_labels]
            for cell in self.cells
        ]
        return header, rows

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": SUITE_KIND,
            "name": self.name,
            "backend": self.backend,
            "axes": [[label, list(values)] for label, values in self.axes],
            "cells": [cell.to_dict() for cell in self.cells],
            "executed": self.executed,
            "resumed": self.resumed,
            "elapsed": self.elapsed,
            "provenance": provenance(),
        }

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json_dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SuiteResult":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read suite result {path}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("kind") != SUITE_KIND:
            raise ConfigError("not an experiment-suite result")
        return cls(
            name=str(payload["name"]),
            backend=str(payload["backend"]),
            axes=tuple(
                (str(label), tuple(float(v) for v in values))
                for label, values in payload["axes"]
            ),
            cells=[CellResult.from_dict(cell) for cell in payload["cells"]],
            executed=int(payload.get("executed", 0)),
            resumed=int(payload.get("resumed", 0)),
            elapsed=float(payload.get("elapsed", 0.0)),
        )


def _execute_cell(cell: Cell) -> CellResult:
    """Run one cell (possibly in a worker process).

    Errors are carried back as data: exception *instances* with custom
    constructors do not always survive pickling across the process
    boundary, and a failed cell should name its grid coordinates.
    """
    started = time.perf_counter()
    error: Optional[str] = None
    metrics: Dict[str, float] = {}
    timeline = None
    attribution = None
    try:
        outcome = cell.scenario.run(cell.backend, **cell.option_dict)
        metrics = cell_metrics(outcome)
        timeline = getattr(outcome, "timeline", None)
        attribution = getattr(outcome, "attribution", None)
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    return CellResult(
        index=cell.index,
        cell_id=cell.cell_id,
        backend=cell.backend,
        coords=cell.coord_dict,
        scenario=cell.scenario,
        metrics=metrics,
        error=error,
        elapsed=time.perf_counter() - started,
        timeline=timeline,
        attribution=attribution,
    )


class ExperimentRunner:
    """Execute a suite's cells, optionally in parallel, with checkpoints.

    Parameters
    ----------
    workers:
        Process count. ``None`` or ``1`` runs serially in-process (no
        executor, easiest to debug/profile); ``N > 1`` fans out over a
        ``ProcessPoolExecutor``.
    checkpoint_dir:
        Directory for per-cell JSON checkpoints. Created on demand.
        Without it nothing is persisted.
    resume:
        Load matching checkpoints from ``checkpoint_dir`` and run only
        the missing cells. Checkpoints whose cell id (a digest of
        scenario + backend + options) does not match the current grid
        are ignored and re-run.
    on_error:
        ``"raise"`` (default) raises a :class:`SimulationError` naming
        the first failed cell; ``"keep"`` returns failed cells in the
        :class:`SuiteResult` with their ``error`` set.
    on_progress:
        Optional callback ``(result, done_count, total)`` invoked in the
        *parent* process as each cell completes (including resumed
        cells, in completion order) — live progress for CLIs and
        dashboards. Exceptions it raises propagate and abort the run.
    executor:
        The per-cell work function ``Cell -> CellResult`` (default
        :func:`_execute_cell`, which dispatches through
        ``Scenario.run``). Must be picklable (a module-level function
        or ``functools.partial``) so the process-pool path can ship it
        to workers. The capacity knee curves use this hook to run a
        bisection search per cell while keeping the checkpoint/resume
        machinery.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        on_error: str = "raise",
        on_progress=None,
        executor=None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if on_error not in ("raise", "keep"):
            raise ConfigError(f"on_error must be 'raise' or 'keep', got {on_error!r}")
        if resume and checkpoint_dir is None:
            raise ConfigError("resume requires a checkpoint_dir")
        if on_progress is not None and not callable(on_progress):
            raise ConfigError("on_progress must be callable")
        if executor is not None and not callable(executor):
            raise ConfigError("executor must be callable")
        self.executor = executor or _execute_cell
        self.workers = workers
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.resume = resume
        self.on_error = on_error
        self.on_progress = on_progress
        self._total_cells = 0

    # ------------------------------------------------------------------

    def _checkpoint_path(self, cell: Cell) -> Path:
        return self.checkpoint_dir / f"{cell.cell_id}.json"

    def _load_checkpoint(self, cell: Cell) -> Optional[CellResult]:
        path = self._checkpoint_path(cell)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            result = CellResult.from_dict(payload)
        except (ConfigError, OSError, json.JSONDecodeError, KeyError, ValueError):
            return None  # corrupt or stale checkpoint: re-run the cell
        if result.cell_id != cell.cell_id or not result.ok:
            return None
        result.resumed = True
        return result

    def _save_checkpoint(self, result: CellResult) -> None:
        if self.checkpoint_dir is None or not result.ok:
            return
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        path = self.checkpoint_dir / f"{result.cell_id}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json_dumps(result.to_dict()))
        tmp.replace(path)  # atomic: a killed run never leaves torn JSON

    # ------------------------------------------------------------------

    def run(self, suite: Suite) -> SuiteResult:
        """Execute (or resume) every cell; aggregate in grid order."""
        started = time.perf_counter()
        cells = suite.cells()
        self._total_cells = len(cells)
        done: Dict[int, CellResult] = {}
        if self.resume:
            for cell in cells:
                loaded = self._load_checkpoint(cell)
                if loaded is not None:
                    done[cell.index] = loaded
                    self._emit_progress(loaded, len(done))
        pending = [cell for cell in cells if cell.index not in done]
        resumed = len(done)

        if self.workers is not None and self.workers > 1 and len(pending) > 1:
            executed = self._run_parallel(pending, done)
        else:
            executed = self._run_serial(pending, done)

        failed = [done[c.index] for c in cells if not done[c.index].ok]
        if failed and self.on_error == "raise":
            first = min(failed, key=lambda r: r.index)
            raise SimulationError(
                f"experiment cell {first.cell_id} ({first.coords}) failed: "
                f"{first.error}"
            )
        return SuiteResult(
            name=suite.name,
            backend=suite.backend,
            axes=suite.axes,
            cells=[done[cell.index] for cell in cells],
            executed=executed,
            resumed=resumed,
            elapsed=time.perf_counter() - started,
        )

    def _emit_progress(self, result: CellResult, done_count: int) -> None:
        if self.on_progress is not None:
            self.on_progress(result, done_count, self._total_cells)

    def _run_serial(self, pending: Sequence[Cell], done: Dict[int, CellResult]) -> int:
        for cell in pending:
            result = self.executor(cell)
            self._save_checkpoint(result)
            done[cell.index] = result
            self._emit_progress(result, len(done))
        return len(pending)

    def _run_parallel(
        self, pending: Sequence[Cell], done: Dict[int, CellResult]
    ) -> int:
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(self.executor, cell): cell for cell in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_EXCEPTION)
                for future in finished:
                    result = future.result()  # worker crashes propagate here
                    self._save_checkpoint(result)
                    done[result.index] = result
                    self._emit_progress(result, len(done))
        return len(pending)


def run_suite(
    suite: Suite,
    *,
    workers: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    on_error: str = "raise",
    on_progress=None,
    executor=None,
) -> SuiteResult:
    """One-call convenience wrapper around :class:`ExperimentRunner`."""
    return ExperimentRunner(
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        on_error=on_error,
        on_progress=on_progress,
        executor=executor,
    ).run(suite)
