"""Typed per-backend options registry for :meth:`Scenario.run`.

Before this module every backend rejected (or silently swallowed) its
options differently: ``estimate`` raised :class:`ConfigError`,
``simulate``/``fastpath`` crashed with a bare ``TypeError`` deep inside
the call, and ``fastpath-system`` hand-rolled a set difference. The
registry makes backend dispatch *introspectable* — ``backend_options``
answers "what can I pass to this backend?" — and uniform: every unknown
or invalid option raises the same :class:`ValidationError` shape, on
every backend, naming the option, the backend, and (for misdirected
options) which backends *do* accept it.

The :attr:`BackendOption.from_args` hook is how the CLI assembles
options without per-backend ``if`` chains: each option knows how to
read itself from an ``argparse`` namespace (returning :data:`ABSENT`
when its flag was not given), so ``options_from_args(backend, args)``
is one registry scan regardless of backend.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..errors import ConfigError, ReproError, ValidationError

__all__ = [
    "ABSENT",
    "BackendOption",
    "backend_options",
    "option_names",
    "options_from_args",
    "validate_options",
]

#: Sentinel returned by ``from_args`` hooks when a flag was not given.
ABSENT = object()


@dataclasses.dataclass(frozen=True)
class BackendOption:
    """One typed option a backend accepts.

    ``validate`` returns an error message (``str``) for a bad value and
    ``None`` for a good one; ``from_args`` reads the option from an
    argparse namespace, returning :data:`ABSENT` when the corresponding
    flag was not supplied.
    """

    name: str
    description: str
    validate: Optional[Callable[[object], Optional[str]]] = None
    from_args: Optional[Callable[[object], object]] = None

    def check(self, value: object) -> Optional[str]:
        if self.validate is None:
            return None
        return self.validate(value)


# ----------------------------------------------------------------------
# Per-option validators.
# ----------------------------------------------------------------------


def _validate_timeline(value: object) -> Optional[str]:
    from ..observability.timeline import TimelineSpec

    try:
        TimelineSpec.coerce(value)
    except ReproError as exc:
        return f"bad timeline spec: {exc}"
    return None


def _validate_attribution(value: object) -> Optional[str]:
    from ..observability import AttributionSink

    if isinstance(value, (bool, AttributionSink)):
        return None
    if isinstance(value, int):
        if value < 0:
            return f"attribution capacity must be >= 0, got {value}"
        return None
    if value is None:
        return None
    return (
        "attribution must be a bool, a reservoir capacity (int) or an "
        f"AttributionSink, got {type(value).__name__}"
    )


def _validate_pool_size(value: object) -> Optional[str]:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        return f"pool_size must be a positive int, got {value!r}"
    return None


def _validate_observability(value: object) -> Optional[str]:
    from ..observability import Observability

    if value is None or isinstance(value, Observability):
        return None
    return (
        f"observability must be an Observability bundle, got "
        f"{type(value).__name__}"
    )


def _validate_scheduler(value: object) -> Optional[str]:
    if value is None or isinstance(value, str):
        return None
    return f"scheduler must be a backend name (str), got {type(value).__name__}"


def _validate_rng_window(value: object) -> Optional[str]:
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        return f"rng_window must be a positive int, got {value!r}"
    return None


# ----------------------------------------------------------------------
# CLI assembly hooks (argparse namespaces, duck-typed via getattr).
# ----------------------------------------------------------------------


def _timeline_from_args(args: object) -> object:
    if getattr(args, "timeline", None) is None:
        return ABSENT
    return int(getattr(args, "timeline_windows", 60))


def _observability_from_args(args: object) -> object:
    """Engine instrumentation bundle — only when a flag asks for it."""
    trace = bool(getattr(args, "trace", False))
    profile = bool(getattr(args, "profile", False))
    report = getattr(args, "report", None) is not None
    if not (trace or profile or report):
        return ABSENT
    from ..observability import Observability

    return Observability(
        trace=trace,
        metrics=True,
        profile=profile or report,
        slowest_k=int(getattr(args, "slowest", 10)),
    )


def _pool_size_from_args(args: object) -> object:
    value = getattr(args, "pool_size", None)
    if value is None:
        return ABSENT
    return int(value)


# ----------------------------------------------------------------------
# The registry.
# ----------------------------------------------------------------------

_TIMELINE = BackendOption(
    "timeline",
    "windowed telemetry: True, a window count, or a TimelineSpec",
    validate=_validate_timeline,
    from_args=_timeline_from_args,
)

_ATTRIBUTION = BackendOption(
    "attribution",
    "per-request stage attribution: True, a reservoir capacity, or an "
    "AttributionSink",
    validate=_validate_attribution,
)

BACKEND_OPTIONS: Dict[str, Tuple[BackendOption, ...]] = {
    "estimate": (),
    "simulate": (
        BackendOption(
            "observability",
            "tracing/metrics/profiling bundle (event engine only)",
            validate=_validate_observability,
            from_args=_observability_from_args,
        ),
        _TIMELINE,
        _ATTRIBUTION,
        BackendOption(
            "scheduler",
            "event scheduler backend (heap/calendar/compiled)",
            validate=_validate_scheduler,
        ),
        BackendOption(
            "rng_window",
            "pre-drawn RNG window size (perf knob, bit-identical)",
            validate=_validate_rng_window,
        ),
    ),
    "fastpath": (
        BackendOption(
            "pool_size",
            "per-server latency pool size for the Lindley fast path",
            validate=_validate_pool_size,
            from_args=_pool_size_from_args,
        ),
        _TIMELINE,
    ),
    "fastpath-system": (_TIMELINE, _ATTRIBUTION),
}


def backend_options(backend: str) -> Tuple[BackendOption, ...]:
    """The typed options ``backend`` accepts (introspection entry point)."""
    try:
        return BACKEND_OPTIONS[backend]
    except KeyError:
        raise ConfigError(
            f"unknown backend {backend!r} (have {tuple(BACKEND_OPTIONS)})"
        ) from None


def option_names(backend: str) -> Tuple[str, ...]:
    return tuple(option.name for option in backend_options(backend))


def _accepted_by(name: str) -> Tuple[str, ...]:
    return tuple(
        backend
        for backend, options in BACKEND_OPTIONS.items()
        if any(option.name == name for option in options)
    )


def validate_options(backend: str, options: Mapping[str, object]) -> None:
    """Reject unknown or invalid options with one uniform error shape.

    Raises :class:`ConfigError` for an unknown backend and
    :class:`ValidationError` for a bad option — the same exception types
    and message structure regardless of backend.
    """
    registry = {option.name: option for option in backend_options(backend)}
    for name, value in options.items():
        if name not in registry:
            accepted = _accepted_by(name)
            hint = (
                f" ('{name}' is accepted by {list(accepted)})"
                if accepted
                else ""
            )
            valid = sorted(registry) or ["<none>"]
            raise ValidationError(
                f"backend {backend!r} does not accept option {name!r}; "
                f"valid options: {valid}{hint}"
            )
        problem = registry[name].check(value)
        if problem is not None:
            raise ValidationError(
                f"bad value for option {name!r} on backend {backend!r}: "
                f"{problem}"
            )


def options_from_args(backend: str, args: object) -> Dict[str, object]:
    """Assemble a backend's options from CLI flags via registry hooks."""
    assembled: Dict[str, object] = {}
    for option in backend_options(backend):
        if option.from_args is None:
            continue
        value = option.from_args(args)
        if value is not ABSENT:
            assembled[option.name] = value
    return assembled
