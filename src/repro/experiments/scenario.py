"""The unified parameter object: one fully-specified system point.

Every entry point used to re-plumb the same dozen parameters through
slightly different kwargs (``cmd_estimate`` vs ``cmd_simulate`` vs the
benches). :class:`Scenario` is the single source of truth: it captures
workload shape, cluster, request structure, network/database and
simulation knobs in the library's internal units, round-trips through
:class:`~repro.config.ExperimentConfig` (and plain dicts, for
checkpoints), and dispatches to any of the three evaluation backends:

``estimate``
    Theorem 1 analytic bounds (:class:`~repro.core.LatencyEstimate`).
``simulate``
    The closed-loop discrete-event simulator
    (:class:`~repro.simulation.SimulationResult`).
``fastpath``
    The vectorized Lindley simulator + fork-join Monte-Carlo
    (:class:`~repro.simulation.SimulationResult`).
``fastpath-system``
    The whole-system vectorized simulator — the event engine's coupled
    request/server/database pipeline at numpy speed
    (:class:`~repro.simulation.SimulationResult`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..config import ExperimentConfig
from ..distributions import make_rng
from ..errors import ConfigError, ValidationError
from ..simulation.fastpath import (
    expected_max_from_pool,
    expected_max_from_pools,
    sample_request_latencies,
    simulate_key_latencies,
)
from ..simulation.fastpath_system import simulate_system_requests
from ..simulation.results import SimulationResult

#: Evaluation backends a scenario can dispatch to.
BACKENDS = ("estimate", "simulate", "fastpath", "fastpath-system")

#: Default per-server latency pool size for the fast-path backend.
DEFAULT_POOL_SIZE = 200_000


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One fully-specified Memcached latency experiment point.

    Field names and units mirror :class:`~repro.config.ExperimentConfig`
    exactly (seconds, keys/second), so ``Scenario.from_config`` /
    ``to_config`` are lossless; ``shares`` is a tuple so scenarios stay
    hashable and safely shareable across processes.
    """

    # Workload shape (per-server when shares are balanced/omitted).
    key_rate: float
    burst_xi: float = 0.0
    concurrency_q: float = 0.0
    # Cluster.
    n_servers: int = 1
    service_rate: float = 80_000.0
    shares: Optional[Tuple[float, ...]] = None
    # Request structure.
    n_keys: int = 150
    # Network & database.
    network_delay: float = 0.0
    miss_ratio: float = 0.0
    database_rate: Optional[float] = None
    # Simulation knobs.
    seed: int = 0
    n_requests: int = 2000
    warmup_requests: int = 200

    def __post_init__(self) -> None:
        if self.shares is not None and not isinstance(self.shares, tuple):
            object.__setattr__(self, "shares", tuple(self.shares))
        if self.n_keys < 1:
            raise ValidationError(f"n_keys must be >= 1, got {self.n_keys}")
        if self.n_servers < 1:
            raise ValidationError(f"n_servers must be >= 1, got {self.n_servers}")

    # ------------------------------------------------------------------
    # Config round trip.
    # ------------------------------------------------------------------

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "Scenario":
        """Lossless conversion from an :class:`ExperimentConfig`."""
        payload = dataclasses.asdict(config)
        if payload.get("shares") is not None:
            payload["shares"] = tuple(payload["shares"])
        return cls(**payload)

    def to_config(self) -> ExperimentConfig:
        """Lossless conversion to an :class:`ExperimentConfig`."""
        payload = dataclasses.asdict(self)
        if payload.get("shares") is not None:
            payload["shares"] = list(payload["shares"])
        return ExperimentConfig(**payload)

    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        if payload.get("shares") is not None:
            payload["shares"] = list(payload["shares"])
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Scenario":
        if not isinstance(payload, dict):
            raise ConfigError("scenario payload must be an object")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown scenario keys: {sorted(unknown)}")
        data = dict(payload)
        if data.get("shares") is not None:
            data["shares"] = tuple(data["shares"])
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(f"incomplete scenario: {exc}") from exc

    def replace(self, **changes: object) -> "Scenario":
        """Functional update (sweep helper)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Derived builders (delegated to the config layer — one code path).
    # ------------------------------------------------------------------

    def workload(self):
        return self.to_config().workload()

    def cluster(self):
        return self.to_config().cluster()

    def total_key_rate(self) -> float:
        return self.key_rate * self.n_servers

    def latency_model(self):
        return self.to_config().latency_model()

    def tail_model(self):
        return self.to_config().tail_model()

    def simulator(self, observability=None):
        return self.to_config().simulator(observability=observability)

    # ------------------------------------------------------------------
    # Backend dispatch.
    # ------------------------------------------------------------------

    def estimate(self):
        """Theorem 1 bounds (:class:`~repro.core.LatencyEstimate`)."""
        return self.latency_model().estimate(self.n_keys)

    def simulate(self, observability=None) -> SimulationResult:
        """Closed-loop discrete-event simulation of this scenario."""
        system = self.simulator(observability=observability)
        results = system.run(
            n_requests=self.n_requests, warmup_requests=self.warmup_requests
        )
        return SimulationResult.from_system(results, n_keys=self.n_keys)

    def fastpath(self, *, pool_size: int = DEFAULT_POOL_SIZE) -> SimulationResult:
        """Vectorized Lindley + fork-join Monte-Carlo simulation.

        Balanced clusters share one per-server latency pool (every
        server is statistically identical); unbalanced clusters get one
        pool per share, each at its share of the total key stream.
        """
        rng = make_rng(self.seed)
        workload = self.workload()
        cluster = self.cluster()
        if self.shares is None:
            pools = [
                simulate_key_latencies(
                    workload, self.service_rate, n_keys=pool_size, rng=rng
                )
            ]
            shares = [1.0]
        else:
            total = self.total_key_rate()
            pools = [
                simulate_key_latencies(
                    workload.with_rate(total * share),
                    self.service_rate,
                    n_keys=pool_size,
                    rng=rng,
                )
                for share in cluster.shares
            ]
            shares = list(cluster.shares)
        sample = sample_request_latencies(
            pools,
            shares,
            n_keys=self.n_keys,
            n_requests=self.n_requests,
            rng=rng,
            network_delay=self.network_delay,
            miss_ratio=self.miss_ratio,
            database_rate=self.database_rate,
        )
        if len(pools) == 1:
            exact_server = expected_max_from_pool(pools[0], self.n_keys)
        else:
            exact_server = expected_max_from_pools(pools, shares, self.n_keys)
        result = SimulationResult.from_sample(sample, n_keys=self.n_keys)
        return dataclasses.replace(result, server_expected_max=exact_server)

    def fastpath_system(self) -> SimulationResult:
        """Whole-system vectorized simulation of this scenario.

        Statistically equivalent to :meth:`simulate` — same Poisson
        request process, multinomial routing, per-server batch queueing,
        shared M/M/1 database and fork-join joins — but run as numpy
        Lindley scans instead of events, so it sustains millions of
        simulated keys per second.
        """
        cluster = self.cluster()
        sample = simulate_system_requests(
            cluster.shares,
            self.service_rate,
            n_keys=self.n_keys,
            request_rate=self.total_key_rate() / self.n_keys,
            n_requests=self.n_requests,
            warmup_requests=self.warmup_requests,
            rng=make_rng(self.seed),
            network_delay=self.network_delay,
            miss_ratio=self.miss_ratio,
            database_rate=self.database_rate,
        )
        return SimulationResult.from_system_sample(sample, n_keys=self.n_keys)

    def run(self, backend: str = "estimate", **options: object):
        """Dispatch to ``estimate``/``simulate``/``fastpath``/``fastpath-system``."""
        if backend == "estimate":
            if options:
                raise ConfigError(
                    f"estimate backend takes no options, got {sorted(options)}"
                )
            return self.estimate()
        if backend == "simulate":
            return self.simulate(**options)
        if backend == "fastpath":
            return self.fastpath(**options)
        if backend == "fastpath-system":
            if options:
                raise ConfigError(
                    f"fastpath-system backend takes no options, "
                    f"got {sorted(options)}"
                )
            return self.fastpath_system()
        raise ConfigError(f"unknown backend {backend!r} (have {BACKENDS})")

    # ------------------------------------------------------------------

    @classmethod
    def paper_section_5_1(cls) -> "Scenario":
        """The paper's §5.1 testbed configuration."""
        return cls.from_config(ExperimentConfig.paper_section_5_1())


def cell_metrics(outcome) -> Dict[str, float]:
    """Flatten a backend outcome into a scalar metric dict.

    Both backends expose ``mean`` so estimate-vs-simulate grids compare
    directly; the remaining keys are backend-specific.
    """
    if isinstance(outcome, SimulationResult):
        if outcome.server_expected_max is not None:
            extra = {"server_expected_max": outcome.server_expected_max}
        else:
            extra = {}
        return {
            **extra,
            "mean": outcome.total.mean,
            "p50": outcome.total.p50,
            "p95": outcome.total.p95,
            "p99": outcome.total.p99,
            "std": outcome.total.std,
            "count": float(outcome.total.count),
            "server_mean": outcome.server.mean,
            "server_p99": outcome.server.p99,
            "database_mean": outcome.database.mean,
            "network_mean": outcome.network.mean,
            "measured_miss_ratio": outcome.measured_miss_ratio,
        }
    # LatencyEstimate (duck-typed to avoid importing core here).
    return {
        "mean": outcome.total_midpoint,
        "total_lower": outcome.total_lower,
        "total_upper": outcome.total_upper,
        "network": outcome.network,
        "server_lower": outcome.server.lower,
        "server_upper": outcome.server.upper,
        "database": outcome.database,
    }
