"""The unified parameter object: one fully-specified system point.

Every entry point used to re-plumb the same dozen parameters through
slightly different kwargs (``cmd_estimate`` vs ``cmd_simulate`` vs the
benches). :class:`Scenario` is the single source of truth: it captures
workload shape, cluster, request structure, network/database and
simulation knobs in the library's internal units, round-trips through
:class:`~repro.config.ExperimentConfig` (and plain dicts, for
checkpoints), and dispatches to any of the three evaluation backends:

``estimate``
    Theorem 1 analytic bounds (:class:`~repro.core.LatencyEstimate`).
``simulate``
    The closed-loop discrete-event simulator
    (:class:`~repro.simulation.SimulationResult`).
``fastpath``
    The vectorized Lindley simulator + fork-join Monte-Carlo
    (:class:`~repro.simulation.SimulationResult`).
``fastpath-system``
    The whole-system vectorized simulator — the event engine's coupled
    request/server/database pipeline at numpy speed
    (:class:`~repro.simulation.SimulationResult`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import ExperimentConfig
from ..distributions import make_rng
from ..errors import ConfigError, ValidationError
from ..faults import FaultSchedule
from ..observability.timeline import Timeline, TimelineSpec, _resolve_windows
from ..policies import RequestPolicy
from ..simulation.fastpath import (
    expected_max_from_pool,
    expected_max_from_pools,
    sample_request_latencies,
    sample_timeline,
    simulate_key_latencies,
)
from ..simulation.fastpath_system import simulate_system_requests
from ..simulation.results import SimulationResult

#: Evaluation backends a scenario can dispatch to.
BACKENDS = ("estimate", "simulate", "fastpath", "fastpath-system")

#: Default per-server latency pool size for the fast-path backend.
DEFAULT_POOL_SIZE = 200_000


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One fully-specified Memcached latency experiment point.

    Field names and units mirror :class:`~repro.config.ExperimentConfig`
    exactly (seconds, keys/second), so ``Scenario.from_config`` /
    ``to_config`` are lossless; ``shares`` is a tuple so scenarios stay
    hashable and safely shareable across processes.
    """

    # Workload shape (per-server when shares are balanced/omitted).
    key_rate: float
    burst_xi: float = 0.0
    concurrency_q: float = 0.0
    # Cluster.
    n_servers: int = 1
    service_rate: float = 80_000.0
    shares: Optional[Tuple[float, ...]] = None
    # Request structure.
    n_keys: int = 150
    # Network & database.
    network_delay: float = 0.0
    miss_ratio: float = 0.0
    database_rate: Optional[float] = None
    # Simulation knobs.
    seed: int = 0
    n_requests: int = 2000
    warmup_requests: int = 200
    # Fault injection & request policy (simulation backends only).
    faults: Optional[FaultSchedule] = None
    policy: Optional[RequestPolicy] = None

    def __post_init__(self) -> None:
        if self.shares is not None and not isinstance(self.shares, tuple):
            object.__setattr__(self, "shares", tuple(self.shares))
        # Accept the JSON-payload form (checkpoints, configs) and
        # canonicalize to the typed objects so scenarios stay hashable.
        if isinstance(self.faults, dict):
            object.__setattr__(self, "faults", FaultSchedule.from_dict(self.faults))
        if isinstance(self.policy, dict):
            object.__setattr__(self, "policy", RequestPolicy.from_dict(self.policy))
        if self.n_keys < 1:
            raise ValidationError(f"n_keys must be >= 1, got {self.n_keys}")
        if self.n_servers < 1:
            raise ValidationError(f"n_servers must be >= 1, got {self.n_servers}")
        if self.faults is not None and self.faults.is_empty:
            object.__setattr__(self, "faults", None)

    # ------------------------------------------------------------------
    # Config round trip.
    # ------------------------------------------------------------------

    def _payload(self) -> Dict[str, object]:
        """Plain-data form: faults/policy as their kind-tagged payloads.

        ``dataclasses.asdict`` alone would recurse into the fault
        windows and drop their ``kind`` discriminators.
        """
        payload = dataclasses.asdict(self)
        if payload.get("shares") is not None:
            payload["shares"] = list(payload["shares"])
        payload["faults"] = self.faults.to_dict() if self.faults else None
        payload["policy"] = self.policy.to_dict() if self.policy else None
        return payload

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "Scenario":
        """Lossless conversion from an :class:`ExperimentConfig`."""
        payload = dataclasses.asdict(config)
        if payload.get("shares") is not None:
            payload["shares"] = tuple(payload["shares"])
        return cls(**payload)

    def to_config(self) -> ExperimentConfig:
        """Lossless conversion to an :class:`ExperimentConfig`."""
        return ExperimentConfig(**self._payload())

    def to_dict(self) -> Dict[str, object]:
        return self._payload()

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Scenario":
        if not isinstance(payload, dict):
            raise ConfigError("scenario payload must be an object")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown scenario keys: {sorted(unknown)}")
        data = dict(payload)
        if data.get("shares") is not None:
            data["shares"] = tuple(data["shares"])
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(f"incomplete scenario: {exc}") from exc

    def replace(self, **changes: object) -> "Scenario":
        """Derive a new scenario with ``changes`` applied, re-validated.

        This is the *only* supported way to perturb a scenario — the
        capacity bisection, the factor registry and the grid expansion
        all funnel through it. Unknown field names raise
        :class:`ValidationError` (not ``TypeError``), and the derived
        scenario runs the full ``__post_init__`` validation, so an
        invalid derivation fails at the call site instead of deep inside
        a backend.
        """
        known = {field.name for field in dataclasses.fields(self)}
        unknown = set(changes) - known
        if unknown:
            raise ValidationError(
                f"unknown scenario fields: {sorted(unknown)}; "
                f"valid fields: {sorted(known)}"
            )
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Derived builders (delegated to the config layer — one code path).
    # ------------------------------------------------------------------

    def workload(self):
        return self.to_config().workload()

    def cluster(self):
        return self.to_config().cluster()

    def total_key_rate(self) -> float:
        return self.key_rate * self.n_servers

    def request_rate(self) -> float:
        """End-user requests per second (``total_key_rate / n_keys``)."""
        return self.total_key_rate() / self.n_keys

    def latency_model(self):
        return self.to_config().latency_model()

    def tail_model(self):
        return self.to_config().tail_model()

    def simulator(
        self,
        observability=None,
        *,
        keep_request_log: bool = False,
        scheduler: Optional[str] = None,
        rng_window: Optional[int] = None,
    ):
        return self.to_config().simulator(
            observability=observability,
            keep_request_log=keep_request_log,
            scheduler=scheduler,
            rng_window=rng_window,
        )

    # ------------------------------------------------------------------
    # Backend dispatch.
    # ------------------------------------------------------------------

    def _reject_faulted(self, backend: str) -> None:
        """Analytic/pool backends model the fault-free, policy-free system."""
        if self.faults is not None:
            raise ConfigError(
                f"the {backend} backend models the fault-free steady state; "
                "run fault schedules on the simulate or fastpath-system "
                "backend"
            )
        if self.policy is not None:
            raise ConfigError(
                f"the {backend} backend has no request-policy semantics; "
                "run policies on the simulate backend"
            )

    def estimate(self):
        """Theorem 1 bounds (:class:`~repro.core.LatencyEstimate`)."""
        self._reject_faulted("estimate")
        return self.latency_model().estimate(self.n_keys)

    def simulate(
        self,
        observability=None,
        *,
        timeline: object = None,
        attribution: object = None,
        scheduler: Optional[str] = None,
        rng_window: Optional[int] = None,
    ) -> SimulationResult:
        """Closed-loop discrete-event simulation of this scenario.

        ``timeline`` (anything :meth:`TimelineSpec.coerce` accepts)
        turns on windowed telemetry; ``attribution`` (``True``, a
        reservoir capacity, or an ``AttributionSink``) turns on
        per-request stage attribution. When no ``observability`` bundle
        is supplied a minimal bundle carrying just the requested
        collectors is created so the hot path stays uninstrumented
        otherwise. ``scheduler`` selects the engine's scheduler backend
        and ``rng_window`` the pre-draw window size — both are perf
        knobs that leave seeded results bit-identical.
        """
        wants_timeline = (
            timeline is not None and TimelineSpec.coerce(timeline) is not None
        )
        if wants_timeline or attribution:
            from ..observability import (
                AttributionSink,
                Observability,
                TimelineBuilder,
            )

            if observability is None:
                observability = Observability(
                    trace=False,
                    metrics=False,
                    timeline=timeline if wants_timeline else None,
                    attribution=attribution,
                )
            else:
                if wants_timeline and observability.timeline is None:
                    observability.timeline = TimelineBuilder(
                        TimelineSpec.coerce(timeline)
                    )
                if attribution and observability.attribution is None:
                    observability.attribution = (
                        attribution
                        if isinstance(attribution, AttributionSink)
                        else AttributionSink(
                            max_records=attribution
                            if isinstance(attribution, int)
                            and not isinstance(attribution, bool)
                            else 100_000
                        )
                    )
        system = self.simulator(
            observability=observability,
            scheduler=scheduler,
            rng_window=rng_window,
        )
        results = system.run(
            n_requests=self.n_requests, warmup_requests=self.warmup_requests
        )
        return SimulationResult.from_system(results, n_keys=self.n_keys)

    def fastpath(
        self,
        *,
        pool_size: int = DEFAULT_POOL_SIZE,
        timeline: object = None,
    ) -> SimulationResult:
        """Vectorized Lindley + fork-join Monte-Carlo simulation.

        Balanced clusters share one per-server latency pool (every
        server is statistically identical); unbalanced clusters get one
        pool per share, each at its share of the total key stream.
        """
        self._reject_faulted("fastpath")
        rng = make_rng(self.seed)
        workload = self.workload()
        cluster = self.cluster()
        if self.shares is None:
            pools = [
                simulate_key_latencies(
                    workload, self.service_rate, n_keys=pool_size, rng=rng
                )
            ]
            shares = [1.0]
        else:
            total = self.total_key_rate()
            pools = [
                simulate_key_latencies(
                    workload.with_rate(total * share),
                    self.service_rate,
                    n_keys=pool_size,
                    rng=rng,
                )
                for share in cluster.shares
            ]
            shares = list(cluster.shares)
        sample = sample_request_latencies(
            pools,
            shares,
            n_keys=self.n_keys,
            n_requests=self.n_requests,
            rng=rng,
            network_delay=self.network_delay,
            miss_ratio=self.miss_ratio,
            database_rate=self.database_rate,
        )
        if len(pools) == 1:
            exact_server = expected_max_from_pool(pools[0], self.n_keys)
        else:
            exact_server = expected_max_from_pools(pools, shares, self.n_keys)
        result = SimulationResult.from_sample(sample, n_keys=self.n_keys)
        if timeline is not None and TimelineSpec.coerce(timeline) is not None:
            result = dataclasses.replace(
                result,
                timeline=sample_timeline(
                    sample,
                    request_rate=self.total_key_rate() / self.n_keys,
                    rng=rng,
                    timeline=timeline,
                ),
            )
        return dataclasses.replace(result, server_expected_max=exact_server)

    def fastpath_system(
        self, *, timeline: object = None, attribution: object = None
    ) -> SimulationResult:
        """Whole-system vectorized simulation of this scenario.

        Statistically equivalent to :meth:`simulate` — same Poisson
        request process, multinomial routing, per-server batch queueing,
        shared M/M/1 database and fork-join joins — but run as numpy
        Lindley scans instead of events, so it sustains millions of
        simulated keys per second.
        """
        if self.policy is not None:
            raise ConfigError(
                "the fastpath-system backend has no request-policy "
                "semantics; run policies on the simulate backend"
            )
        cluster = self.cluster()
        sample = simulate_system_requests(
            cluster.shares,
            self.service_rate,
            n_keys=self.n_keys,
            request_rate=self.total_key_rate() / self.n_keys,
            n_requests=self.n_requests,
            warmup_requests=self.warmup_requests,
            rng=make_rng(self.seed),
            network_delay=self.network_delay,
            miss_ratio=self.miss_ratio,
            database_rate=self.database_rate,
            faults=self.faults,
            timeline=timeline,
            attribution=attribution,
        )
        return SimulationResult.from_system_sample(sample, n_keys=self.n_keys)

    def attribution_reference(self) -> Dict[str, float]:
        """Analytic per-group latency expectation, system-matched.

        The reference column ``repro explain`` diffs simulated stage
        shares against: Theorem 1 evaluated for the closed loop the
        simulation backends actually run — the *induced* per-server
        workload (Poisson requests forking compound batches, matched to
        geometric concurrency exactly like
        :meth:`MemcachedSystemSimulator.induced_server_workload`), the
        round-trip network convention (every key pays ``2d``), and the
        database M/M/1 sojourn at its induced utilization (eq. (19)
        with ``rho > 0``). Faults and policies are stripped: the
        reference is always the fault-free expectation, so the diff
        *shows* what a fault moved.

        Unlike :meth:`estimate` (median-flavoured quantile-rule bounds,
        eq. (14)), every column here is a *mean*: the per-key server law
        is ``Exp(a)`` with ``a`` the induced decay rate — exact in
        expectation (see ``GIXM1Queue.mean_key_latency``) — so one
        coherent max-statistics model yields ``E[TS(N)] = H_N / a``, the
        database and total expectations by tail integration, and a
        fork-join slack that vanishes exactly at ``n_keys == 1``.

        The matched-geometric batch model is an approximation the paper
        leans on: exact at ``n_keys == 1``, within ~30% on the server
        stage for moderate fan-out, and loose for very large batches.
        """
        base = self.replace(faults=None, policy=None)
        n = int(base.n_keys)
        share = max(base.cluster().shares)
        p_any = 1.0 - (1.0 - share) ** n
        mean_batch = n * share / p_any
        q_induced = max(0.0, 1.0 - 1.0 / mean_batch)
        model = base.replace(
            burst_xi=0.0, concurrency_q=q_induced
        ).latency_model()
        stage = model.server_stage
        # Every key pays the round trip (the simulators' convention);
        # the analytic TN = d is one way.
        network = 2.0 * model.network_stage.mean_latency(n)
        # E[max of N iid Exp(a)] = H_N / a — the per-key upper law is
        # exact in expectation, so this is the mean-based E[TS(N)].
        a = stage.queue.decay_rate
        server = stage.mean_latency_upper_exact(n)
        # Missed keys see an M/M/1 database at its induced load: sojourn
        # ~ Exp((1 - rho) muD) (eq. (19) with rho > 0).
        rho_db = 0.0
        if base.miss_ratio > 0.0 and base.database_rate:
            rho_db = min(
                base.total_key_rate() * base.miss_ratio / base.database_rate,
                0.999,
            )
        b = base.database_rate * (1.0 - rho_db)
        r = base.miss_ratio
        if r > 0.0 and b > 0.0:
            # One key's DB contribution D = Exp(b) w.p. r else 0, so
            # P(max D <= t) = (1 - r exp(-bt))^N; integrate the tail.
            horizon = (np.log(n) + 50.0) * (1.0 / a + 1.0 / b)
            grid = np.linspace(0.0, horizon, 4001)
            database = float(
                np.trapezoid(1.0 - (1.0 - r * np.exp(-b * grid)) ** n, grid)
            )
            # Per-key chain X = S + D; E[T(N)] = 2d + E[max X] under the
            # same independence approximation.
            if abs(a - b) < 1e-9 * a:
                b = a * (1.0 + 1e-6)
            chain_cdf = (
                1.0
                - np.exp(-a * grid)
                - r
                * a
                / (a - b)
                * (np.exp(-b * grid) - np.exp(-a * grid))
            )
            chain_max = float(np.trapezoid(1.0 - chain_cdf**n, grid))
        else:
            database = 0.0
            chain_max = server
        total = network + chain_max
        serial = network + server + database
        return {
            "network": network,
            "server": server,
            "database": database,
            "policy": 0.0,
            "join_slack": total - serial,
            "total": total,
        }

    def run(self, backend: str = "estimate", **options: object):
        """Dispatch to any backend with registry-validated options.

        Every backend goes through the same two steps: the typed
        per-backend options registry (:mod:`repro.experiments.options`)
        validates ``options`` — unknown or invalid options raise the
        same :class:`ValidationError` shape on all four backends — and
        the matching typed method runs. ``backend_options(backend)``
        introspects what a backend accepts.
        """
        from .options import validate_options

        validate_options(backend, options)  # ConfigError on unknown backend
        return self._DISPATCH[backend](self, **options)

    _DISPATCH = {
        "estimate": estimate,
        "simulate": simulate,
        "fastpath": fastpath,
        "fastpath-system": fastpath_system,
    }

    # ------------------------------------------------------------------
    # Windowed telemetry: one call, any backend, one schema.
    # ------------------------------------------------------------------

    def timeline(
        self,
        backend: str = "simulate",
        *,
        window: Optional[float] = None,
        n_windows: Optional[int] = None,
        **options: object,
    ) -> Timeline:
        """Windowed telemetry for this scenario on any backend.

        ``simulate``/``fastpath-system`` record it natively;
        ``fastpath`` lays its stationary sample on synthetic Poisson
        arrivals; ``estimate`` returns the model's constant-rate
        prediction (utilizations and occupancy from Theorem 1 /
        Little's law — no latency histograms, since the analytic
        backend has no samples).
        """
        spec: object
        if window is not None or n_windows is not None:
            spec = TimelineSpec(window=window, n_windows=n_windows)
        else:
            spec = True
        if backend == "estimate":
            from .options import validate_options

            validate_options("estimate", options)
            return self._analytic_timeline(TimelineSpec.coerce(spec))
        if backend not in BACKENDS:
            raise ConfigError(f"unknown backend {backend!r} (have {BACKENDS})")
        result = self.run(backend, timeline=spec, **options)
        if result.timeline is None:  # pragma: no cover - defensive
            raise ConfigError(f"backend {backend!r} produced no timeline")
        return result.timeline

    def _analytic_timeline(self, spec: Optional[TimelineSpec]) -> Timeline:
        """Constant-rate Timeline predicted by the analytic model.

        The stationary model has no transient: every window carries the
        same arrival/completion rate (the configured request rate), the
        same occupancy ``L = lambda * E[T(N)]`` (Little's law on the
        Theorem 1 midpoint), per-server utilization ``rho_j``, and
        M/M/1-approximate queue depths. This is the reference trace the
        simulated timelines should fluctuate around.
        """
        self._reject_faulted("estimate")
        estimate = self.estimate()
        request_rate = self.total_key_rate() / self.n_keys
        duration = self.n_requests / request_rate
        start, width, count = _resolve_windows(0.0, duration, spec)
        timeline = Timeline.empty(start, width, count)
        requests_per_window = request_rate * width
        timeline.arrivals += requests_per_window
        timeline.completions += requests_per_window
        timeline.inflight_time += (
            request_rate * estimate.total_midpoint * width
        )
        cluster = self.cluster()
        total_rate = self.total_key_rate()
        for j, share in enumerate(cluster.shares):
            timeline.stages[f"server.{j}"] = _analytic_stage_series(
                count,
                width,
                arrival_rate=total_rate * float(share),
                service_rate=self.service_rate,
            )
        if self.miss_ratio > 0.0 and self.database_rate is not None:
            timeline.stages["database"] = _analytic_stage_series(
                count,
                width,
                arrival_rate=total_rate * self.miss_ratio,
                service_rate=self.database_rate,
            )
        timeline.meta.update({"backend": "estimate", "analytic": True})
        return timeline

    # ------------------------------------------------------------------

    @classmethod
    def paper_section_5_1(cls) -> "Scenario":
        """The paper's §5.1 testbed configuration."""
        return cls.from_config(ExperimentConfig.paper_section_5_1())


def _analytic_stage_series(
    count: int, width: float, *, arrival_rate: float, service_rate: float
):
    """Constant-rate :class:`StageSeries` for one M/M/1-approximate stage.

    ``busy_time`` encodes ``rho = lambda / mu`` per window and
    ``wait_time`` the M/M/1 mean queue length ``Lq = rho^2 / (1 - rho)``
    (NaN when the stage is overloaded — the stationary model has no
    finite prediction there).
    """
    import math as _math

    from ..observability.timeline import StageSeries

    series = StageSeries.zeros(count)
    rho = arrival_rate / service_rate
    series.arrivals += arrival_rate * width
    series.completions += arrival_rate * width
    series.busy_time += min(rho, 1.0) * width
    queued = rho * rho / (1.0 - rho) if rho < 1.0 else _math.nan
    series.wait_time += queued * width
    return series


def cell_metrics(outcome) -> Dict[str, float]:
    """Flatten a backend outcome into one StageStats-shaped metric dict.

    Every backend reports the same vocabulary: per-stage ``mean`` plus
    an uncertainty interval ``ci_low``/``ci_high`` (the 95% confidence
    interval for simulation backends, the Theorem 1 lower/upper bounds
    for the analytic estimate). Percentile and count keys exist only
    where a backend actually measures them.
    """
    if isinstance(outcome, SimulationResult):
        if outcome.server_expected_max is not None:
            extra = {"server_expected_max": outcome.server_expected_max}
        else:
            extra = {}
        return {
            **extra,
            "mean": outcome.total.mean,
            "ci_low": outcome.total.ci_low,
            "ci_high": outcome.total.ci_high,
            "p50": outcome.total.p50,
            "p95": outcome.total.p95,
            "p99": outcome.total.p99,
            "std": outcome.total.std,
            "count": float(outcome.total.count),
            "server_mean": outcome.server.mean,
            "server_ci_low": outcome.server.ci_low,
            "server_ci_high": outcome.server.ci_high,
            "server_p99": outcome.server.p99,
            "database_mean": outcome.database.mean,
            "network_mean": outcome.network.mean,
            "measured_miss_ratio": outcome.measured_miss_ratio,
        }
    # LatencyEstimate (duck-typed to avoid importing core here). The
    # Theorem 1 bounds play the interval role: mean is the midpoint,
    # ci_low/ci_high are the analytic lower/upper bounds.
    return {
        "mean": outcome.total_midpoint,
        "ci_low": outcome.total_lower,
        "ci_high": outcome.total_upper,
        "server_mean": 0.5 * (outcome.server.lower + outcome.server.upper),
        "server_ci_low": outcome.server.lower,
        "server_ci_high": outcome.server.upper,
        "database_mean": outcome.database,
        "network_mean": outcome.network,
    }
