"""Factor registry: named sweep axes over :class:`Scenario` fields.

The paper's §5 evaluation sweeps q, xi, the arrival rate, the service
rate, the miss ratio, the hottest share p1, and the request size N.
Each :class:`Factor` knows how to apply one swept value to a scenario
and which estimate metrics a classic ``repro sweep`` table shows for it
(server-stage bounds for server factors, the eq. (23) point estimate
for the database factor, total bounds otherwise).

The registry replaces the per-factor ``if/elif`` branches that used to
live in ``cli.cmd_sweep``; :func:`register_factor` lets downstream code
add axes without touching the CLI.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Tuple

from ..errors import ConfigError, ValidationError
from ..policies import RequestPolicy
from ..units import kps, usec
from .scenario import Scenario


@dataclasses.dataclass(frozen=True)
class Factor:
    """One sweepable axis.

    ``apply(scenario, value)`` returns the scenario at the swept value;
    ``sweep_metrics`` names the (lower, upper) estimate metrics the
    classic sweep table reports for this axis.
    """

    name: str
    label: str
    apply: Callable[[Scenario, float], Scenario]
    sweep_metrics: Tuple[str, str] = ("ci_low", "ci_high")
    description: str = ""


_REGISTRY: Dict[str, Factor] = {}


def register_factor(factor: Factor) -> Factor:
    """Add (or replace) a factor in the global registry."""
    _REGISTRY[factor.name] = factor
    return factor


def get_factor(name: str) -> Factor:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown sweep factor {name!r} (have {sorted(_REGISTRY)})"
        ) from None


def factor_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def _apply_p1(scenario: Scenario, value: float) -> Scenario:
    """Hot/cold shares: the hottest server takes ``p1``, the rest split."""
    m = scenario.n_servers
    if m < 2:
        raise ValidationError("p1 sweeps need at least 2 servers")
    if not 1.0 / m <= value < 1.0:
        raise ValidationError(
            f"p1 must be in [1/M, 1) = [{1.0 / m:.4f}, 1), got {value}"
        )
    cold = (1.0 - value) / (m - 1)
    return scenario.replace(shares=(value,) + (cold,) * (m - 1))


register_factor(
    Factor(
        "q",
        "q",
        lambda s, v: s.replace(concurrency_q=float(v)),
        sweep_metrics=("server_ci_low", "server_ci_high"),
        description="concurrency probability (Fig. 5)",
    )
)
register_factor(
    Factor(
        "xi",
        "xi",
        lambda s, v: s.replace(burst_xi=float(v)),
        sweep_metrics=("server_ci_low", "server_ci_high"),
        description="burst degree (Fig. 6)",
    )
)
register_factor(
    Factor(
        "rate",
        "rate_kps",
        lambda s, v: s.replace(key_rate=kps(float(v))),
        sweep_metrics=("server_ci_low", "server_ci_high"),
        description="per-server key rate in Kps (Fig. 7)",
    )
)
register_factor(
    Factor(
        "mu",
        "mu_kps",
        lambda s, v: s.replace(service_rate=kps(float(v))),
        sweep_metrics=("server_ci_low", "server_ci_high"),
        description="server service rate in Kps (Fig. 9)",
    )
)
register_factor(
    Factor(
        "r",
        "miss_ratio",
        lambda s, v: s.replace(miss_ratio=float(v)),
        sweep_metrics=("database_mean", "database_mean"),
        description="cache miss ratio (Fig. 11)",
    )
)
register_factor(
    Factor(
        "n",
        "n_keys",
        lambda s, v: s.replace(n_keys=int(v)),
        description="keys per request N (Figs. 12-13)",
    )
)
register_factor(
    Factor(
        "p1",
        "p1",
        _apply_p1,
        sweep_metrics=("server_ci_low", "server_ci_high"),
        description="hottest server share (Fig. 10)",
    )
)
register_factor(
    Factor(
        "servers",
        "servers",
        lambda s, v: s.replace(n_servers=int(v), shares=None),
        description="cluster size M",
    )
)
register_factor(
    Factor(
        "network",
        "network_us",
        lambda s, v: s.replace(network_delay=usec(float(v))),
        description="one-way network delay in us",
    )
)
register_factor(
    Factor(
        "db",
        "db_us",
        lambda s, v: s.replace(database_rate=1.0 / usec(float(v))),
        description="mean database service time in us",
    )
)
register_factor(
    Factor(
        "hedge",
        "hedge_us",
        lambda s, v: s.replace(policy=RequestPolicy.hedged(usec(float(v)))),
        description=(
            "hedge delay in us (attaches a hedging policy; "
            "simulate backend only)"
        ),
    )
)
