"""Pluggable event schedulers for the discrete-event engine.

The engine needs one data structure: a priority queue of
``(time, seq, obj)`` entries popped in ``(time, seq)`` order, where
``obj`` is an opaque event record carrying a ``cancelled`` flag. Three
interchangeable backends implement it:

* :class:`HeapScheduler` — the original binary heap (C ``heapq``).
  Cancellation is lazy (dead tuples stay until popped) with *threshold
  compaction*: when dead entries outnumber live ones the heap is
  rebuilt, so cancel-heavy workloads (hedging with cancel-on-winner)
  keep the queue bounded by ``O(live)`` instead of ``O(scheduled)``.
* :class:`CalendarQueue` — a slotted calendar queue (Brown 1988):
  events hash into time buckets of width ``w``; push and pop are O(1)
  amortized instead of O(log n), and cancellation is *eager* — the
  entry is removed from its bucket immediately, so hedge cancellations
  never accumulate at all.
* a compiled calendar queue — the same algorithm as a C shared library
  built on demand with the system compiler and driven through
  ``ctypes``. Selected at import with graceful fallback: no compiler,
  a failed build, or ``REPRO_NO_COMPILED=1`` silently degrade to the
  pure-python backends, and results are bit-identical either way
  (every backend pops in the same ``(time, seq)`` total order).

Backend selection: ``resolve_scheduler_name`` maps the user-facing
names (``auto``/``heap``/``calendar``/``compiled``) to an available
backend, honoring the ``REPRO_SCHEDULER`` environment variable for
``auto``. The resolved name and its kind (python/compiled) are stamped
into :func:`repro.observability.provenance` artifacts.
"""

from __future__ import annotations

import bisect
import ctypes
import heapq
import os
import subprocess
import sys
import tempfile
from typing import List, Optional, Tuple

from ..errors import ValidationError

#: Dead entries tolerated before a heap compaction is considered.
COMPACT_MIN_DEAD = 64

#: User-facing scheduler names.
SCHEDULER_NAMES = ("auto", "heap", "calendar", "compiled")


class HeapScheduler:
    """Binary-heap scheduler with threshold compaction of cancelled entries."""

    name = "heap"
    kind = "python"

    __slots__ = ("_heap", "_dead")

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._dead = 0

    @property
    def entries(self) -> int:
        """Stored entries, including not-yet-collected cancelled ones."""
        return len(self._heap)

    def push(self, time: float, seq: int, obj: object) -> None:
        heapq.heappush(self._heap, (time, seq, obj))

    def pop(self) -> Optional[tuple]:
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[2].cancelled:
                self._dead -= 1
                continue
            return entry
        return None

    def peek(self) -> Optional[Tuple[float, int]]:
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2].cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            return (head[0], head[1])
        return None

    def discard(self, time: float, seq: int, obj: object) -> None:
        """Account a cancellation (``obj.cancelled`` is already set).

        The tuple stays in the heap (removal would be O(n)), but once
        dead tuples outnumber live ones the whole heap is rebuilt
        without them — one O(n) pass that keeps the structure bounded
        by twice the live count even under hedge-cancel storms.
        """
        self._dead += 1
        if self._dead > COMPACT_MIN_DEAD and self._dead * 2 > len(self._heap):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries and re-heapify."""
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._dead = 0


class CalendarQueue:
    """Slotted calendar queue with deterministic ``(time, seq)`` ordering.

    Entries are stored *key-negated* — ``(-time, -seq, obj)`` — in
    ascending sorted bucket lists, so the next event of a bucket sits at
    the *end* and is popped in O(1); mid-bucket insertions use
    ``bisect.insort`` (C memmove). Bucket count and width adapt to the
    live event population: the structure doubles when occupancy exceeds
    two entries per bucket and halves below one per two buckets, with
    the width re-estimated from the live time span so one "year" of
    buckets covers roughly the scheduled horizon.

    Cancellation is eager: :meth:`discard` locates the entry by its
    ``(time, seq)`` key and deletes it from its bucket, so cancelled
    hedge attempts and retry timers never linger.
    """

    name = "calendar"
    kind = "python"

    __slots__ = ("_buckets", "_n", "_mask", "_width", "_cur", "_year_end", "_size")

    def __init__(self, *, n_buckets: int = 16, width: float = 1e-3) -> None:
        if n_buckets < 2 or n_buckets & (n_buckets - 1):
            raise ValidationError(
                f"n_buckets must be a power of two >= 2, got {n_buckets}"
            )
        if width <= 0.0:
            raise ValidationError(f"width must be > 0, got {width}")
        self._n = n_buckets
        self._mask = n_buckets - 1
        self._width = float(width)
        self._buckets: List[list] = [[] for _ in range(n_buckets)]
        self._cur = 0  # virtual bucket index of the read position
        self._year_end = float(width)  # (cur + 1) * width
        self._size = 0

    @property
    def entries(self) -> int:
        return self._size

    @property
    def bucket_count(self) -> int:
        return self._n

    @property
    def width(self) -> float:
        return self._width

    def push(self, time: float, seq: int, obj: object) -> None:
        vb = int(time / self._width)
        if vb < self._cur:
            # Same-bucket-as-now insertion that rounds below the read
            # position (time >= now is validated by the engine).
            vb = self._cur
        bucket = self._buckets[vb & self._mask]
        entry = (-time, -seq, obj)
        if bucket and bucket[-1] < entry:
            bucket.append(entry)  # earliest-yet in this bucket: O(1)
        else:
            bisect.insort(bucket, entry)
        self._size += 1
        if self._size > 2 * self._n:
            self._resize(self._n * 2)

    def _locate_head(self) -> Optional[list]:
        """Advance the read position to the bucket holding the next event."""
        if self._size == 0:
            return None
        scanned = 0
        while True:
            bucket = self._buckets[self._cur & self._mask]
            if bucket and -bucket[-1][0] < self._year_end:
                return bucket
            self._cur += 1
            self._year_end = (self._cur + 1) * self._width
            scanned += 1
            if scanned >= self._n:
                # A whole empty year: jump straight to the global
                # minimum instead of spinning through sparse time.
                best = None
                for candidate in self._buckets:
                    if candidate and (best is None or candidate[-1] > best[-1]):
                        best = candidate
                assert best is not None  # _size > 0
                self._cur = int(-best[-1][0] / self._width)
                self._year_end = (self._cur + 1) * self._width
                return best

    def pop(self) -> Optional[tuple]:
        bucket = self._locate_head()
        if bucket is None:
            return None
        neg_time, neg_seq, obj = bucket.pop()
        self._size -= 1
        if self._size * 2 < self._n and self._n > 16:
            self._resize(self._n // 2)
        return (-neg_time, -neg_seq, obj)

    def peek(self) -> Optional[Tuple[float, int]]:
        bucket = self._locate_head()
        if bucket is None:
            return None
        neg_time, neg_seq, _ = bucket[-1]
        return (-neg_time, -neg_seq)

    def discard(self, time: float, seq: int, obj: object) -> None:
        """Eagerly remove a cancelled entry from its bucket."""
        vb = int(time / self._width)
        if vb < self._cur:
            vb = self._cur
        bucket = self._buckets[vb & self._mask]
        key = (-time, -seq)
        index = bisect.bisect_left(bucket, key)
        if index < len(bucket) and bucket[index][:2] == key:
            del bucket[index]
            self._size -= 1
            return
        # The entry must be present (the engine discards each live
        # handle at most once); reaching here means the bucket map is
        # inconsistent with the push path.
        raise ValidationError(
            f"calendar queue entry (t={time}, seq={seq}) not found"
        )

    def compact(self) -> None:
        """Eager removal leaves nothing to compact; kept for interface parity."""

    def _resize(self, n_buckets: int) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        times = [-entry[0] for entry in entries]
        lo, hi = min(times), max(times)
        span = hi - lo
        if span > 0.0 and len(entries) > 1:
            # Aim for ~4 bucket widths between adjacent events so one
            # year of buckets covers the horizon with slack.
            self._width = max(span / len(entries) * 4.0, 1e-12)
        self._n = n_buckets
        self._mask = n_buckets - 1
        self._buckets = [[] for _ in range(n_buckets)]
        for entry in entries:
            self._buckets[int(-entry[0] / self._width) & self._mask].append(entry)
        for bucket in self._buckets:
            bucket.sort()
        self._cur = int(lo / self._width)
        self._year_end = (self._cur + 1) * self._width


# ----------------------------------------------------------------------
# Compiled backend: the same calendar queue as a C shared library.
# ----------------------------------------------------------------------

_C_SOURCE = r"""
#include <stdlib.h>
#include <string.h>

typedef struct {
    double t;
    long long seq;
    int slot;
} cq_entry;

typedef struct {
    cq_entry *data;   /* sorted descending by (t, seq): next event last */
    int count;
    int cap;
} cq_bucket;

typedef struct {
    cq_bucket *buckets;
    int nbuckets;     /* power of two */
    int mask;
    double width;
    long long cur;    /* virtual bucket of the read position */
    double year_end;  /* (cur + 1) * width */
    long long size;
} cq;

static int entry_before(const cq_entry *a, const cq_entry *b) {
    /* a fires strictly before b in (t, seq) order */
    if (a->t != b->t) return a->t < b->t;
    return a->seq < b->seq;
}

void *cq_new(void) {
    cq *q = (cq *)calloc(1, sizeof(cq));
    if (!q) return NULL;
    q->nbuckets = 16;
    q->mask = 15;
    q->width = 1e-3;
    q->cur = 0;
    q->year_end = q->width;
    q->size = 0;
    q->buckets = (cq_bucket *)calloc(q->nbuckets, sizeof(cq_bucket));
    if (!q->buckets) { free(q); return NULL; }
    return q;
}

void cq_destroy(void *h) {
    cq *q = (cq *)h;
    if (!q) return;
    for (int i = 0; i < q->nbuckets; i++) free(q->buckets[i].data);
    free(q->buckets);
    free(q);
}

static int bucket_insert(cq_bucket *b, cq_entry e) {
    if (b->count == b->cap) {
        int cap = b->cap ? b->cap * 2 : 8;
        cq_entry *data = (cq_entry *)realloc(b->data, cap * sizeof(cq_entry));
        if (!data) return -1;
        b->data = data;
        b->cap = cap;
    }
    /* binary search: data sorted descending, the next event at the end */
    int lo = 0, hi = b->count;
    while (lo < hi) {
        int mid = (lo + hi) / 2;
        if (entry_before(&e, &b->data[mid])) lo = mid + 1;
        else hi = mid;
    }
    memmove(&b->data[lo + 1], &b->data[lo], (b->count - lo) * sizeof(cq_entry));
    b->data[lo] = e;
    b->count++;
    return 0;
}

static void cq_rebuild(cq *q, int nbuckets);

int cq_push(void *h, double t, long long seq, int slot) {
    cq *q = (cq *)h;
    long long vb = (long long)(t / q->width);
    if (vb < q->cur) vb = q->cur;
    cq_entry e; e.t = t; e.seq = seq; e.slot = slot;
    if (bucket_insert(&q->buckets[vb & q->mask], e) != 0) return -1;
    q->size++;
    if (q->size > 2 * (long long)q->nbuckets && q->nbuckets < (1 << 24))
        cq_rebuild(q, q->nbuckets * 2);
    return 0;
}

static cq_bucket *locate_head(cq *q) {
    if (q->size == 0) return NULL;
    int scanned = 0;
    for (;;) {
        cq_bucket *b = &q->buckets[q->cur & q->mask];
        if (b->count && b->data[b->count - 1].t < q->year_end) return b;
        q->cur++;
        q->year_end = (double)(q->cur + 1) * q->width;
        if (++scanned >= q->nbuckets) {
            /* empty year: jump to the global minimum */
            cq_entry *best = NULL;
            for (int i = 0; i < q->nbuckets; i++) {
                cq_bucket *c = &q->buckets[i];
                if (c->count) {
                    cq_entry *head = &c->data[c->count - 1];
                    if (!best || entry_before(head, best)) best = head;
                }
            }
            q->cur = (long long)(best->t / q->width);
            q->year_end = (double)(q->cur + 1) * q->width;
            return &q->buckets[q->cur & q->mask];
        }
    }
}

int cq_pop(void *h, double *t_out, long long *seq_out) {
    cq *q = (cq *)h;
    cq_bucket *b = locate_head(q);
    if (!b) return -1;
    cq_entry e = b->data[--b->count];
    q->size--;
    if (t_out) *t_out = e.t;
    if (seq_out) *seq_out = e.seq;
    if (q->size * 2 < (long long)q->nbuckets && q->nbuckets > 16)
        cq_rebuild(q, q->nbuckets / 2);
    return e.slot;
}

int cq_peek(void *h, double *t_out, long long *seq_out) {
    cq *q = (cq *)h;
    cq_bucket *b = locate_head(q);
    if (!b) return -1;
    cq_entry *e = &b->data[b->count - 1];
    if (t_out) *t_out = e->t;
    if (seq_out) *seq_out = e->seq;
    return e->slot;
}

int cq_remove(void *h, double t, long long seq) {
    cq *q = (cq *)h;
    long long vb = (long long)(t / q->width);
    if (vb < q->cur) vb = q->cur;
    cq_bucket *b = &q->buckets[vb & q->mask];
    cq_entry key; key.t = t; key.seq = seq; key.slot = -1;
    int lo = 0, hi = b->count;
    while (lo < hi) {
        int mid = (lo + hi) / 2;
        if (entry_before(&key, &b->data[mid])) lo = mid + 1;
        else hi = mid;
    }
    /* lo is the first index whose entry fires no later than key */
    if (lo < b->count && b->data[lo].t == t && b->data[lo].seq == seq) {
        int slot = b->data[lo].slot;
        memmove(&b->data[lo], &b->data[lo + 1],
                (b->count - lo - 1) * sizeof(cq_entry));
        b->count--;
        q->size--;
        return slot;
    }
    return -1;
}

long long cq_size(void *h) {
    return ((cq *)h)->size;
}

static void cq_rebuild(cq *q, int nbuckets) {
    long long total = q->size;
    cq_entry *all = (cq_entry *)malloc((total ? total : 1) * sizeof(cq_entry));
    if (!all) return;  /* stay at the current geometry */
    long long k = 0;
    double lo = 0.0, hi = 0.0;
    for (int i = 0; i < q->nbuckets; i++) {
        cq_bucket *b = &q->buckets[i];
        for (int j = 0; j < b->count; j++) {
            cq_entry e = b->data[j];
            if (k == 0 || e.t < lo) lo = e.t;
            if (k == 0 || e.t > hi) hi = e.t;
            all[k++] = e;
        }
        free(b->data);
        b->data = NULL; b->count = 0; b->cap = 0;
    }
    cq_bucket *buckets = (cq_bucket *)calloc(nbuckets, sizeof(cq_bucket));
    if (!buckets) { free(all); return; }
    free(q->buckets);
    q->buckets = buckets;
    q->nbuckets = nbuckets;
    q->mask = nbuckets - 1;
    if (total > 1 && hi > lo) {
        double width = (hi - lo) / (double)total * 4.0;
        q->width = width > 1e-12 ? width : 1e-12;
    }
    for (long long i = 0; i < total; i++)
        bucket_insert(&q->buckets[(long long)(all[i].t / q->width) & q->mask],
                      all[i]);
    free(all);
    q->cur = (long long)(lo / q->width);
    q->year_end = (double)(q->cur + 1) * q->width;
}
"""

_compiled_lib: Optional[object] = None
_compiled_checked = False


def _find_compiler() -> Optional[str]:
    import shutil

    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _load_compiled_library() -> Optional[object]:
    """Build (once per interpreter) and load the C calendar queue.

    Returns ``None`` — and remembers the answer — when the platform has
    no usable compiler, the build fails, or ``REPRO_NO_COMPILED`` is
    set. Every caller must treat ``None`` as "use the python backend".
    """
    global _compiled_lib, _compiled_checked
    if _compiled_checked:
        return _compiled_lib
    _compiled_checked = True
    if os.environ.get("REPRO_NO_COMPILED"):
        return None
    if sys.platform == "win32":  # no portable cc driver invocation
        return None
    compiler = _find_compiler()
    if compiler is None:
        return None
    try:
        build_dir = tempfile.mkdtemp(prefix="repro-cq-")
        c_path = os.path.join(build_dir, "cqueue.c")
        so_path = os.path.join(build_dir, "cqueue.so")
        with open(c_path, "w") as fh:
            fh.write(_C_SOURCE)
        result = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", so_path, c_path],
            capture_output=True,
            timeout=120,
        )
        if result.returncode != 0:
            return None
        lib = ctypes.CDLL(so_path)
    except (OSError, subprocess.SubprocessError, ValueError):
        return None
    lib.cq_new.restype = ctypes.c_void_p
    lib.cq_destroy.argtypes = [ctypes.c_void_p]
    lib.cq_push.argtypes = [
        ctypes.c_void_p,
        ctypes.c_double,
        ctypes.c_longlong,
        ctypes.c_int,
    ]
    lib.cq_push.restype = ctypes.c_int
    for fn in (lib.cq_pop, lib.cq_peek):
        fn.argtypes = [
            ctypes.c_void_p,
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_longlong),
        ]
        fn.restype = ctypes.c_int
    lib.cq_remove.argtypes = [
        ctypes.c_void_p,
        ctypes.c_double,
        ctypes.c_longlong,
    ]
    lib.cq_remove.restype = ctypes.c_int
    lib.cq_size.argtypes = [ctypes.c_void_p]
    lib.cq_size.restype = ctypes.c_longlong
    _compiled_lib = lib
    return lib


def compiled_scheduler_available() -> bool:
    """Whether the compiled calendar queue can be (or was) built here."""
    return _load_compiled_library() is not None


class CompiledCalendarQueue:
    """ctypes wrapper around the C calendar queue.

    Event objects cannot cross the C boundary, so entries carry an
    integer *slot* into a Python-side table; a freelist recycles slots
    so long runs do not grow the table beyond the live event count.
    """

    name = "compiled"
    kind = "compiled"

    __slots__ = (
        "_lib",
        "_handle",
        "_slots",
        "_free",
        "_t_out",
        "_seq_out",
        "__weakref__",
    )

    def __init__(self) -> None:
        lib = _load_compiled_library()
        if lib is None:
            raise ValidationError(
                "compiled scheduler unavailable (no compiler or build failed)"
            )
        self._lib = lib
        self._handle = lib.cq_new()
        if not self._handle:
            raise MemoryError("cq_new failed")
        self._slots: List[object] = []
        self._free: List[int] = []
        self._t_out = ctypes.c_double()
        self._seq_out = ctypes.c_longlong()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        handle = getattr(self, "_handle", None)
        if handle:
            self._lib.cq_destroy(handle)
            self._handle = None

    @property
    def entries(self) -> int:
        return int(self._lib.cq_size(self._handle))

    def push(self, time: float, seq: int, obj: object) -> None:
        if self._free:
            slot = self._free.pop()
            self._slots[slot] = obj
        else:
            slot = len(self._slots)
            self._slots.append(obj)
        if self._lib.cq_push(self._handle, time, seq, slot) != 0:
            raise MemoryError("cq_push failed")  # pragma: no cover

    def pop(self) -> Optional[tuple]:
        slot = self._lib.cq_pop(
            self._handle, ctypes.byref(self._t_out), ctypes.byref(self._seq_out)
        )
        if slot < 0:
            return None
        obj = self._slots[slot]
        self._slots[slot] = None
        self._free.append(slot)
        return (self._t_out.value, self._seq_out.value, obj)

    def peek(self) -> Optional[Tuple[float, int]]:
        slot = self._lib.cq_peek(
            self._handle, ctypes.byref(self._t_out), ctypes.byref(self._seq_out)
        )
        if slot < 0:
            return None
        return (self._t_out.value, self._seq_out.value)

    def discard(self, time: float, seq: int, obj: object) -> None:
        slot = self._lib.cq_remove(self._handle, time, seq)
        if slot < 0:
            raise ValidationError(
                f"compiled calendar queue entry (t={time}, seq={seq}) not found"
            )
        self._slots[slot] = None
        self._free.append(slot)

    def compact(self) -> None:
        """Eager removal leaves nothing to compact; interface parity."""


# ----------------------------------------------------------------------
# Selection.
# ----------------------------------------------------------------------


def resolve_scheduler_name(name: Optional[str] = None) -> str:
    """Map a requested scheduler to the backend that will actually run.

    ``None``/``"auto"`` honor ``REPRO_SCHEDULER`` when set and default
    to ``heap`` (C ``heapq`` — the fastest correct backend on typical
    queue sizes). ``"compiled"`` degrades to ``calendar`` when no
    compiled library can be built. Results are scheduler-invariant, so
    the fallback only changes speed, never output.
    """
    if name is None or name == "auto":
        name = os.environ.get("REPRO_SCHEDULER", "heap") or "heap"
        if name == "auto":
            name = "heap"
    if name not in ("heap", "calendar", "compiled"):
        raise ValidationError(
            f"unknown scheduler {name!r}; expected one of {SCHEDULER_NAMES}"
        )
    if name == "compiled" and not compiled_scheduler_available():
        return "calendar"
    return name


def make_scheduler(name: Optional[str] = None):
    """Build the scheduler backend for ``name`` (after resolution)."""
    resolved = resolve_scheduler_name(name)
    if resolved == "heap":
        return HeapScheduler()
    if resolved == "calendar":
        return CalendarQueue()
    return CompiledCalendarQueue()


def available_schedulers() -> Tuple[str, ...]:
    """Backends that can run on this machine, fallbacks resolved."""
    names: List[str] = ["heap", "calendar"]
    if compiled_scheduler_available():
        names.append("compiled")
    return tuple(names)
