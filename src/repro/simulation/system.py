"""Closed-loop Memcached system simulator (the full testbed substitute).

Models the paper's Fig. 1 end to end on the event engine:

1. End-user requests arrive (Poisson by default); each generates N keys.
2. Keys are spread over the M Memcached servers — either by the model's
   share probabilities ``{p_j}`` or by hashing real key names through a
   consistent-hash ring from :mod:`repro.memcached`.
3. Each key crosses the network (constant delay), queues FIFO at its
   server, and is served ``Exp(muS)``.
4. A miss (Bernoulli ``r``, or a *real* cache lookup when a cache
   backend is attached) relays the key to the M/M/1 database.
5. The request completes when its last key's value returns; the
   recorder keeps ``T(N)`` plus the per-stage maxima ``TS(N)``/``TD(N)``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Protocol

import numpy as np

from ..distributions import make_rng, split_rng
from ..core.cluster import ClusterModel
from ..core.workload import WorkloadPattern

from ..errors import SimulationError, ValidationError
from ..observability import Observability, Span
from .database import DatabaseSim
from .engine import Simulator
from .metrics import LatencyRecorder
from .network import NetworkSim
from .server import KeyJob, ServerSim


class CacheBackend(Protocol):
    """Decides whether a key hits; lets the real cache substrate plug in."""

    def lookup(self, server_index: int, key: str) -> bool:
        """Return True on hit. Implementations may mutate cache state."""


class BernoulliMissModel:
    """The paper's miss model: independent misses with probability r."""

    def __init__(self, miss_ratio: float, rng: np.random.Generator) -> None:
        if not 0.0 <= miss_ratio <= 1.0:
            raise ValidationError(f"miss_ratio must be in [0, 1], got {miss_ratio}")
        self._r = miss_ratio
        self._rng = rng

    def lookup(self, server_index: int, key: str) -> bool:
        return bool(self._rng.random() >= self._r)


@dataclasses.dataclass
class _RequestState:
    request_id: int
    born: float
    pending: int
    max_server: float = 0.0
    max_database: float = 0.0
    max_network: float = 0.0
    span: Optional[Span] = None


@dataclasses.dataclass
class _KeyContext:
    request: _RequestState
    key_name: str
    server_index: int
    network_so_far: float = 0.0
    span: Optional[Span] = None


@dataclasses.dataclass(frozen=True)
class SystemResults:
    """Recorders filled during a run (all latencies in seconds)."""

    total: LatencyRecorder
    server_stage: LatencyRecorder
    database_stage: LatencyRecorder
    network_stage: LatencyRecorder
    per_key_server: LatencyRecorder
    requests_completed: int
    keys_processed: int
    misses: int
    server_utilizations: List[float]
    observability: Optional["Observability"] = None

    @property
    def measured_miss_ratio(self) -> float:
        if self.keys_processed == 0:
            return 0.0
        return self.misses / self.keys_processed


class MemcachedSystemSimulator:
    """End-to-end fork-join Memcached simulation.

    Parameters
    ----------
    cluster:
        Server count, shares and ``muS``.
    n_keys_per_request:
        N — keys generated per end-user request.
    request_rate:
        End-user requests per second. The induced per-server key rate is
        ``request_rate * N * p_j``.
    network_delay:
        One-way constant network latency per key.
    miss_ratio / database_rate:
        Bernoulli miss model feeding an M/M/1 database. Ignored when a
        ``cache_backend`` is supplied.
    cache_backend:
        Optional real cache (e.g. ``repro.memcached`` cluster adapter);
        when present, hits and misses come from actual cache state.
    key_namer:
        Optional callable ``(rng) -> (key_name, server_index)``; defaults
        to share-weighted server selection with synthetic key names.
    observability:
        Optional :class:`~repro.observability.Observability` bundle.
        When present, per-request span trees, per-stage/per-server
        histograms, and an event-loop profile are collected; when
        absent the hot path is identical to the uninstrumented one.
    """

    def __init__(
        self,
        cluster: ClusterModel,
        *,
        n_keys_per_request: int,
        request_rate: float,
        network_delay: float = 0.0,
        miss_ratio: float = 0.0,
        database_rate: Optional[float] = None,
        cache_backend: Optional[CacheBackend] = None,
        seed: Optional[int] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        if n_keys_per_request < 1:
            raise ValidationError(
                f"n_keys_per_request must be >= 1, got {n_keys_per_request}"
            )
        if request_rate <= 0:
            raise ValidationError(f"request_rate must be > 0, got {request_rate}")
        if miss_ratio > 0.0 and database_rate is None and cache_backend is None:
            raise ValidationError("database_rate is required when miss_ratio > 0")
        self._cluster = cluster
        self._n_keys = int(n_keys_per_request)
        self._request_rate = float(request_rate)
        self._network_delay = float(network_delay)

        self.observability = observability
        self._tracer = observability.tracer if observability is not None else None
        registry = observability.registry if observability is not None else None
        self._registry = registry

        self.sim = Simulator(
            profiler=observability.profiler if observability is not None else None
        )
        master = make_rng(seed)
        (
            self._rng_requests,
            self._rng_routing,
            rng_network,
            rng_miss,
            rng_db,
            *server_rngs,
        ) = split_rng(master, 5 + cluster.n_servers)

        self._network = NetworkSim.constant(self.sim, self._network_delay)
        self._servers = [
            ServerSim.exponential(
                self.sim,
                cluster.service_rate,
                server_rngs[j],
                name=f"server-{j}",
                on_complete=self._on_server_complete,
                metrics=registry,
            )
            for j in range(cluster.n_servers)
        ]
        needs_db = (cache_backend is not None and database_rate is not None) or (
            miss_ratio > 0.0 and database_rate is not None
        )
        self._database = (
            DatabaseSim(
                self.sim,
                database_rate,
                rng_db,
                on_complete=self._on_database_complete,
                metrics=registry,
            )
            if needs_db
            else None
        )
        self._cache: CacheBackend = (
            cache_backend
            if cache_backend is not None
            else BernoulliMissModel(miss_ratio, rng_miss)
        )
        self._shares = np.asarray(cluster.shares, dtype=float)
        self._next_request_id = 0
        self._generated_keys = 0
        self._misses = 0
        self._keys_processed = 0
        self._completed_requests = 0
        self._accepting = True

        self._total = LatencyRecorder()
        self._server_stage = LatencyRecorder()
        self._database_stage = LatencyRecorder()
        self._network_stage = LatencyRecorder()
        self._per_key_server = LatencyRecorder(max_samples=500_000)

        # Registry views of the same stages: cheap log-bucketed
        # histograms that serialize into RunReport (the exact-moment
        # LatencyRecorders above stay authoritative for CIs).
        if registry is not None:
            self._hist_total = registry.histogram("request.total")
            self._hist_server_max = registry.histogram("request.server_max")
            self._hist_database_max = registry.histogram("request.database_max")
            self._hist_network_max = registry.histogram("request.network_max")
            self._hist_key_sojourn = registry.histogram("key.server_sojourn")
            self._ctr_requests = registry.counter("requests.completed")
            self._ctr_keys = registry.counter("keys.processed")
            self._ctr_misses = registry.counter("keys.missed")
        else:
            self._hist_total = None
            self._hist_server_max = None
            self._hist_database_max = None
            self._hist_network_max = None
            self._hist_key_sojourn = None
            self._ctr_requests = None
            self._ctr_keys = None
            self._ctr_misses = None

    # ------------------------------------------------------------------
    # Workload drive.
    # ------------------------------------------------------------------

    def induced_server_workload(self, server_index: int) -> WorkloadPattern:
        """The per-server key-arrival pattern this system induces.

        Requests are Poisson and each sends ``Binomial(N, p_j)`` keys to
        server ``j`` *simultaneously* — so the per-server stream is a
        compound-Poisson batch process. The matched model concurrency is
        derived from the mean batch size ``E[X] = N p_j / (1 - (1-p_j)^N)``
        via ``q = 1 - 1/E[X]``.
        """
        share = self._cluster.shares[server_index]
        p_any = 1.0 - (1.0 - share) ** self._n_keys
        mean_batch = self._n_keys * share / p_any
        q = max(0.0, 1.0 - 1.0 / mean_batch)
        rate = self._request_rate * self._n_keys * share
        return WorkloadPattern(rate=rate, xi=0.0, q=q)

    def _schedule_next_request(self) -> None:
        gap = float(self._rng_requests.exponential(1.0 / self._request_rate))
        self.sim.schedule(gap, self._spawn_request)

    def _spawn_request(self) -> None:
        if self._accepting:
            self._launch_request()
            self._schedule_next_request()

    def _launch_request(self) -> None:
        request = _RequestState(
            request_id=self._next_request_id,
            born=self.sim.now,
            pending=self._n_keys,
        )
        self._next_request_id += 1
        if self._tracer is not None:
            request.span = self._tracer.start_request(
                "request",
                self.sim.now,
                request_id=request.request_id,
                n_keys=self._n_keys,
            )
        counts = self._rng_routing.multinomial(self._n_keys, self._shares)
        for server_index, count in enumerate(counts):
            if count == 0:
                continue
            contexts = [
                _KeyContext(
                    request=request,
                    key_name=f"r{request.request_id}k{self._generated_keys + i}",
                    server_index=server_index,
                )
                for i in range(int(count))
            ]
            self._generated_keys += int(count)
            self._dispatch_batch(server_index, contexts)

    def _dispatch_batch(self, server_index: int, contexts: List[_KeyContext]) -> None:
        # One network traversal per key; all keys of the batch arrive
        # together at the server (they left the client together).
        server = self._servers[server_index]

        def deliver() -> None:
            now = self.sim.now
            if contexts[0].span is not None:
                # Queue depth every key of the batch sees at enqueue:
                # earlier batch members count as ahead of later ones.
                base_depth = server.queue_length + (1 if server.busy else 0)
                for position, context in enumerate(contexts):
                    context.span.attributes["queue_depth_at_enqueue"] = (
                        base_depth + position
                    )
            server.offer_batch(now, len(contexts), contexts=contexts)

        delay = self._network.send(deliver)
        now = self.sim.now
        for context in contexts:
            context.network_so_far += delay
            request_span = context.request.span
            if request_span is not None:
                context.span = request_span.child(
                    "key",
                    now,
                    key=context.key_name,
                    server=server_index,
                )
                context.span.child("network.out", now, end=now + delay)

    # ------------------------------------------------------------------
    # Completion plumbing.
    # ------------------------------------------------------------------

    def _on_server_complete(self, job: KeyJob) -> None:
        context = job.context
        assert isinstance(context, _KeyContext)
        request = context.request
        sojourn = job.sojourn
        request.max_server = max(request.max_server, sojourn)
        self._per_key_server.record(sojourn)
        if self._hist_key_sojourn is not None:
            self._hist_key_sojourn.record(sojourn)
            self._ctr_keys.inc()
        self._keys_processed += 1
        hit = self._cache.lookup(context.server_index, context.key_name)
        span = context.span
        if span is not None:
            span.attributes["hit"] = bool(hit)
            span.child("queue", job.arrival_time, end=job.start_time)
            span.child("service", job.start_time, end=self.sim.now)
        if hit or self._database is None:
            if not hit:
                self._misses += 1
                if self._ctr_misses is not None:
                    self._ctr_misses.inc()
            self._finish_key(context, database_time=0.0)
        else:
            self._misses += 1
            if self._ctr_misses is not None:
                self._ctr_misses.inc()
            self._database.offer_key(self.sim.now, context=context)

    def _on_database_complete(self, job: KeyJob) -> None:
        context = job.context
        assert isinstance(context, _KeyContext)
        context.request.max_database = max(
            context.request.max_database, job.sojourn
        )
        if context.span is not None:
            context.span.child(
                "database",
                job.arrival_time,
                end=self.sim.now,
                wait=job.wait,
            )
        self._finish_key(context, database_time=job.sojourn)

    def _finish_key(self, context: _KeyContext, *, database_time: float) -> None:
        request = context.request

        def delivered() -> None:
            self._key_done(context)

        delay = self._network.send(delivered)
        context.network_so_far += delay
        request.max_network = max(request.max_network, context.network_so_far)
        if context.span is not None:
            context.span.child("network.in", self.sim.now, end=self.sim.now + delay)

    def _key_done(self, context: _KeyContext) -> None:
        request = context.request
        request.pending -= 1
        if request.pending < 0:  # pragma: no cover - defensive
            raise SimulationError("request completed more keys than it has")
        if context.span is not None:
            context.span.finish(self.sim.now)
        if request.pending == 0:
            total = self.sim.now - request.born
            self._total.record(total)
            self._server_stage.record(request.max_server)
            self._database_stage.record(request.max_database)
            self._network_stage.record(request.max_network)
            if self._hist_total is not None:
                self._hist_total.record(total)
                self._hist_server_max.record(request.max_server)
                self._hist_database_max.record(request.max_database)
                self._hist_network_max.record(request.max_network)
                self._ctr_requests.inc()
            if request.span is not None:
                self._tracer.finish_request(request.span, self.sim.now)
            self._completed_requests += 1

    # ------------------------------------------------------------------

    def run(
        self,
        *,
        n_requests: int,
        warmup_requests: int = 0,
        max_events: Optional[int] = None,
    ) -> SystemResults:
        """Generate and complete ``warmup + n`` requests; report stats.

        Warmup requests run through the system but their latencies are
        discarded by resetting the recorders once warmup completes.
        """
        if n_requests < 1:
            raise ValidationError(f"n_requests must be >= 1, got {n_requests}")
        target = n_requests + warmup_requests
        self._schedule_next_request()
        warmup_done = warmup_requests == 0
        budget = max_events
        while self._completed_requests < target:
            if not self.sim.step():
                raise SimulationError("event queue drained before completion")
            if budget is not None:
                budget -= 1
                if budget <= 0:
                    raise SimulationError("event budget exhausted")
            if not warmup_done and self._completed_requests >= warmup_requests:
                self._reset_recorders()
                warmup_done = True
        self._accepting = False
        return SystemResults(
            total=self._total,
            server_stage=self._server_stage,
            database_stage=self._database_stage,
            network_stage=self._network_stage,
            per_key_server=self._per_key_server,
            requests_completed=self._completed_requests
            - (warmup_requests if warmup_requests else 0),
            keys_processed=self._keys_processed,
            misses=self._misses,
            server_utilizations=[
                server.utilization_meter.utilization(self.sim.now)
                for server in self._servers
            ],
            observability=self.observability,
        )

    def _reset_recorders(self) -> None:
        self._total = LatencyRecorder()
        self._server_stage = LatencyRecorder()
        self._database_stage = LatencyRecorder()
        self._network_stage = LatencyRecorder()
        self._per_key_server = LatencyRecorder(max_samples=500_000)
        # Observability resets in place: the histogram/counter objects
        # held by servers and the database stay valid.
        if self.observability is not None:
            self.observability.reset()
