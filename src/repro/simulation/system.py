"""Closed-loop Memcached system simulator (the full testbed substitute).

Models the paper's Fig. 1 end to end on the event engine:

1. End-user requests arrive (Poisson by default); each generates N keys.
2. Keys are spread over the M Memcached servers — either by the model's
   share probabilities ``{p_j}`` or by hashing real key names through a
   consistent-hash ring from :mod:`repro.memcached`.
3. Each key crosses the network (constant delay), queues FIFO at its
   server, and is served ``Exp(muS)``.
4. A miss (Bernoulli ``r``, or a *real* cache lookup when a cache
   backend is attached) relays the key to the M/M/1 database.
5. The request completes when its last key's value returns; the
   recorder keeps ``T(N)`` plus the per-stage maxima ``TS(N)``/``TD(N)``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Protocol, Tuple

import numpy as np

from ..distributions import (
    DEFAULT_RNG_WINDOW,
    RandomWindow,
    make_rng,
    split_rng,
    spawn_child,
)
from ..core.cluster import ClusterModel
from ..core.workload import WorkloadPattern

from ..errors import SimulationError, ValidationError
from ..faults import FaultSchedule, RequestRecord
from ..observability import Observability, Span
from ..policies import RequestPolicy
from .database import DatabaseSim
from .engine import EventHandle, Simulator
from .metrics import LatencyRecorder
from .network import NetworkSim
from .server import KeyJob, ServerSim

#: spawn_child tag for the policy decision stream (hedge/retry server
#: picks). A tagged child never collides with the split_rng children
#: above it, so policy-free runs remain bit-identical.
_POLICY_RNG_TAG = 101


class CacheBackend(Protocol):
    """Decides whether a key hits; lets the real cache substrate plug in."""

    def lookup(self, server_index: int, key: str) -> bool:
        """Return True on hit. Implementations may mutate cache state."""


class BernoulliMissModel:
    """The paper's miss model: independent misses with probability r.

    Uniform draws come from a pre-drawn :class:`RandomWindow` — the
    value sequence is bit-identical to per-lookup ``rng.random()``
    calls (vectorized uniforms fill from the same bit stream), it just
    amortizes the Generator call overhead across the window.
    """

    def __init__(
        self,
        miss_ratio: float,
        rng: np.random.Generator,
        *,
        rng_window: Optional[int] = None,
    ) -> None:
        if not 0.0 <= miss_ratio <= 1.0:
            raise ValidationError(f"miss_ratio must be in [0, 1], got {miss_ratio}")
        self._r = miss_ratio
        self._rng = rng
        self._window = RandomWindow.uniform(rng, size=rng_window)

    def lookup(self, server_index: int, key: str) -> bool:
        return self._window.get() >= self._r


@dataclasses.dataclass
class _RequestState:
    request_id: int
    born: float
    pending: int
    max_server: float = 0.0
    max_database: float = 0.0
    max_network: float = 0.0
    #: Queue-wait components of the keys attaining the stage maxima —
    #: the wait/service split the attribution layer reports. Tracked
    #: alongside the maxima (no extra RNG, no extra events).
    server_wait: float = 0.0
    database_wait: float = 0.0
    span: Optional[Span] = None


@dataclasses.dataclass
class _KeyState:
    """Policy bookkeeping for one *logical* key.

    A policy can spawn several attempts (hedges, retries) for the same
    key; the key resolves when its first surviving attempt returns.
    """

    request: _RequestState
    key_name: str
    attempts: List["_KeyContext"] = dataclasses.field(default_factory=list)
    done: bool = False
    retries_used: int = 0
    current_timeout: float = 0.0
    hedge_timer: Optional[EventHandle] = None
    timeout_timer: Optional[EventHandle] = None


@dataclasses.dataclass
class _KeyContext:
    request: _RequestState
    key_name: str
    server_index: int
    network_so_far: float = 0.0
    span: Optional[Span] = None
    # Policy-path fields (inert when no policy is attached).
    state: Optional[_KeyState] = None
    abandoned: bool = False
    server_sojourn: float = 0.0
    database_sojourn: float = 0.0
    server_wait: float = 0.0
    database_wait: float = 0.0
    #: Simulation time this attempt left the client (== request.born
    #: for primaries; later for hedges/retries). The gap is the policy
    #: overhead on the critical path when this attempt finishes last.
    launched: float = 0.0
    job: Optional[KeyJob] = None


@dataclasses.dataclass(frozen=True)
class SystemResults:
    """Recorders filled during a run (all latencies in seconds)."""

    total: LatencyRecorder
    server_stage: LatencyRecorder
    database_stage: LatencyRecorder
    network_stage: LatencyRecorder
    per_key_server: LatencyRecorder
    requests_completed: int
    keys_processed: int
    misses: int
    server_utilizations: List[float]
    observability: Optional["Observability"] = None
    request_log: Optional[Tuple[RequestRecord, ...]] = None
    #: Windowed telemetry (a Timeline) when the run recorded one.
    timeline: Optional[object] = None
    #: Per-request stage attribution (an AttributionSet) when recorded.
    attribution: Optional[object] = None

    @property
    def measured_miss_ratio(self) -> float:
        if self.keys_processed == 0:
            return 0.0
        return self.misses / self.keys_processed


class MemcachedSystemSimulator:
    """End-to-end fork-join Memcached simulation.

    Parameters
    ----------
    cluster:
        Server count, shares and ``muS``.
    n_keys_per_request:
        N — keys generated per end-user request.
    request_rate:
        End-user requests per second. The induced per-server key rate is
        ``request_rate * N * p_j``.
    network_delay:
        One-way constant network latency per key.
    miss_ratio / database_rate:
        Bernoulli miss model feeding an M/M/1 database. Ignored when a
        ``cache_backend`` is supplied.
    cache_backend:
        Optional real cache (e.g. ``repro.memcached`` cluster adapter);
        when present, hits and misses come from actual cache state.
    key_namer:
        Optional callable ``(rng) -> (key_name, server_index)``; defaults
        to share-weighted server selection with synthetic key names.
    observability:
        Optional :class:`~repro.observability.Observability` bundle.
        When present, per-request span trees, per-stage/per-server
        histograms, and an event-loop profile are collected; when
        absent the hot path is identical to the uninstrumented one.
    faults:
        Optional :class:`~repro.faults.FaultSchedule` of time-windowed
        degradations (server slowdowns/pauses, database overloads,
        share shifts). ``None`` or an empty schedule is the fault-free
        system, bit-identical to earlier releases for a given seed.
    policy:
        Optional :class:`~repro.policies.RequestPolicy`: per-key
        hedging and/or timeout-retry with cancel-on-first-winner.
        Policy decisions draw from their own tagged RNG stream, so
        ``policy=None`` runs are unaffected.
    keep_request_log:
        Record one :class:`~repro.faults.RequestRecord` per completed
        request (post-warmup) for transient trajectory analysis.
    scheduler:
        Event-scheduler backend (``heap``/``calendar``/``compiled`` or
        ``auto``; see :mod:`repro.simulation.scheduler`). Purely a perf
        knob — every backend pops events in the same deterministic
        order, so seeded results are scheduler-invariant.
    rng_window:
        Values pre-drawn per RNG window refill (default
        :data:`repro.distributions.DEFAULT_RNG_WINDOW`). Also purely a
        perf knob: every windowed stream has a dedicated generator, so
        results are invariant to the window size.
    """

    def __init__(
        self,
        cluster: ClusterModel,
        *,
        n_keys_per_request: int,
        request_rate: float,
        network_delay: float = 0.0,
        miss_ratio: float = 0.0,
        database_rate: Optional[float] = None,
        cache_backend: Optional[CacheBackend] = None,
        seed: Optional[int] = None,
        observability: Optional[Observability] = None,
        faults: Optional[FaultSchedule] = None,
        policy: Optional[RequestPolicy] = None,
        keep_request_log: bool = False,
        scheduler: Optional[str] = None,
        rng_window: Optional[int] = None,
    ) -> None:
        if n_keys_per_request < 1:
            raise ValidationError(
                f"n_keys_per_request must be >= 1, got {n_keys_per_request}"
            )
        if request_rate <= 0:
            raise ValidationError(f"request_rate must be > 0, got {request_rate}")
        if miss_ratio > 0.0 and database_rate is None and cache_backend is None:
            raise ValidationError("database_rate is required when miss_ratio > 0")
        if faults is not None and faults.is_empty:
            faults = None  # an empty schedule is the fault-free system
        if faults is not None:
            faults.validate_for(cluster.n_servers)
        self._faults = faults
        self._policy = policy
        self._cluster = cluster
        self._n_keys = int(n_keys_per_request)
        self._request_rate = float(request_rate)
        self._network_delay = float(network_delay)

        self.observability = observability
        self._tracer = observability.tracer if observability is not None else None
        registry = observability.registry if observability is not None else None
        self._registry = registry
        # Windowed telemetry: the builder hands out plain-list sinks the
        # queues append into natively; everything is bucketed at the end
        # of the run in one vectorized pass.
        self._timeline = (
            observability.timeline if observability is not None else None
        )
        self._timeline_requests = (
            self._timeline.request_sink().append
            if self._timeline is not None
            else None
        )
        # Latency provenance: one tuple append per completed request on
        # the hot path; the sink vectorizes everything else at flush.
        self._attr = (
            observability.attribution if observability is not None else None
        )
        self._attr_append = self._attr.append if self._attr is not None else None

        if rng_window is not None and rng_window < 1:
            raise ValidationError(f"rng_window must be >= 1, got {rng_window}")
        self._rng_window = rng_window
        self.sim = Simulator(
            profiler=observability.profiler if observability is not None else None,
            scheduler=scheduler,
        )
        master = make_rng(seed)
        (
            self._rng_requests,
            self._rng_routing,
            rng_network,
            rng_miss,
            rng_db,
            *server_rngs,
        ) = split_rng(master, 5 + cluster.n_servers)

        # Policy decisions (hedge/retry server picks) draw from a tagged
        # child stream so attaching a policy never perturbs the five
        # split streams above — policy-free runs stay bit-identical.
        self._rng_policy = (
            spawn_child(master, tag=_POLICY_RNG_TAG) if policy is not None else None
        )

        def fault_hooks(j: int) -> dict:
            """Per-server fault callbacks, only when the schedule needs them."""
            hooks: dict = {}
            if faults is not None and faults.has_server_slowdowns:
                hooks["rate_factor"] = lambda t, j=j: faults.server_rate_factor(j, t)
            if faults is not None and faults.has_server_pauses:
                hooks["pause_until"] = lambda t, j=j: faults.server_pause_end(j, t)
            return hooks

        self._network = NetworkSim.constant(self.sim, self._network_delay)
        self._servers = [
            ServerSim.exponential(
                self.sim,
                cluster.service_rate,
                server_rngs[j],
                name=f"server-{j}",
                on_complete=self._on_server_complete,
                metrics=registry,
                trace=(
                    self._timeline.stage_sink(f"server.{j}")
                    if self._timeline is not None
                    else None
                ),
                rng_window=rng_window,
                **fault_hooks(j),
            )
            for j in range(cluster.n_servers)
        ]
        needs_db = (cache_backend is not None and database_rate is not None) or (
            miss_ratio > 0.0 and database_rate is not None
        )
        self._database = (
            DatabaseSim(
                self.sim,
                database_rate,
                rng_db,
                on_complete=self._on_database_complete,
                metrics=registry,
                rate_factor=(
                    faults.database_rate_factor
                    if faults is not None and faults.has_database_overloads
                    else None
                ),
                trace=(
                    self._timeline.stage_sink("database")
                    if self._timeline is not None
                    else None
                ),
                rng_window=rng_window,
            )
            if needs_db
            else None
        )
        self._cache: CacheBackend = (
            cache_backend
            if cache_backend is not None
            else BernoulliMissModel(miss_ratio, rng_miss, rng_window=rng_window)
        )
        self._shares = np.asarray(cluster.shares, dtype=float)
        # Routing draws are windowed when the shares are constant over
        # the run; share-shift faults need the per-instant shares, so
        # they keep the scalar multinomial call (same stream either way).
        if faults is None or not faults.has_share_shifts:
            self._routing_window: Optional[RandomWindow] = RandomWindow.multinomial(
                self._rng_routing, self._n_keys, self._shares, size=rng_window
            )
        else:
            self._routing_window = None
        # Request arrivals are pre-drawn a window of exponential gaps at
        # a time and scheduled as one event *batch* (one scheduler entry
        # for the whole window). The gap values consume the same stream
        # as the per-event scalar draws they replaced, and ties against
        # other events are measure-zero, so seeded runs are unchanged.
        self._arrival_window = (
            rng_window if rng_window is not None else DEFAULT_RNG_WINDOW
        )
        self._next_request_id = 0
        self._generated_keys = 0
        self._misses = 0
        self._keys_processed = 0
        self._completed_requests = 0
        self._accepting = True
        # Completion targets for the batched run loop: when set,
        # _key_done reset recorders at the warmup boundary and requests
        # an engine stop at the run target (see run()).
        self._run_target: Optional[int] = None
        self._warmup_target: Optional[int] = None

        self._total = LatencyRecorder()
        self._server_stage = LatencyRecorder()
        self._database_stage = LatencyRecorder()
        self._network_stage = LatencyRecorder()
        self._per_key_server = LatencyRecorder(max_samples=500_000)
        self._request_log: Optional[List[RequestRecord]] = (
            [] if keep_request_log else None
        )

        # Registry views of the same stages: cheap log-bucketed
        # histograms that serialize into RunReport (the exact-moment
        # LatencyRecorders above stay authoritative for CIs).
        if registry is not None:
            self._hist_total = registry.histogram("request.total")
            self._hist_server_max = registry.histogram("request.server_max")
            self._hist_database_max = registry.histogram("request.database_max")
            self._hist_network_max = registry.histogram("request.network_max")
            self._hist_key_sojourn = registry.histogram("key.server_sojourn")
            self._ctr_requests = registry.counter("requests.completed")
            self._ctr_keys = registry.counter("keys.processed")
            self._ctr_misses = registry.counter("keys.missed")
        else:
            self._hist_total = None
            self._hist_server_max = None
            self._hist_database_max = None
            self._hist_network_max = None
            self._hist_key_sojourn = None
            self._ctr_requests = None
            self._ctr_keys = None
            self._ctr_misses = None

    # ------------------------------------------------------------------
    # Workload drive.
    # ------------------------------------------------------------------

    def induced_server_workload(self, server_index: int) -> WorkloadPattern:
        """The per-server key-arrival pattern this system induces.

        Requests are Poisson and each sends ``Binomial(N, p_j)`` keys to
        server ``j`` *simultaneously* — so the per-server stream is a
        compound-Poisson batch process. The matched model concurrency is
        derived from the mean batch size ``E[X] = N p_j / (1 - (1-p_j)^N)``
        via ``q = 1 - 1/E[X]``.
        """
        share = self._cluster.shares[server_index]
        p_any = 1.0 - (1.0 - share) ** self._n_keys
        mean_batch = self._n_keys * share / p_any
        q = max(0.0, 1.0 - 1.0 / mean_batch)
        rate = self._request_rate * self._n_keys * share
        return WorkloadPattern(rate=rate, xi=0.0, q=q)

    def _schedule_request_window(self) -> None:
        """Pre-draw a window of arrival gaps and schedule them as a batch.

        The vectorized exponential draw consumes the request stream
        exactly like the per-event scalar draws it replaced, and the
        arrival times accumulate with the same float additions
        (``t += gap``), so the arrival sequence is bit-identical. The
        whole window costs one scheduler entry; the last arrival's
        callback draws the next window.
        """
        gaps = self._rng_requests.exponential(
            1.0 / self._request_rate, self._arrival_window
        ).tolist()
        t = self.sim.now
        times = []
        for gap in gaps:
            t = t + gap
            times.append(t)
        self.sim.schedule_batch(times, self._spawn_request)

    def _spawn_request(self, index: int) -> None:
        if self._accepting:
            self._launch_request()
            if index + 1 == self._arrival_window:
                self._schedule_request_window()

    def _effective_shares(self, now: float) -> np.ndarray:
        """Routing shares at ``now`` (fault share shifts override)."""
        if self._faults is not None and self._faults.has_share_shifts:
            shifted = self._faults.shares_at(now)
            if shifted is not None:
                return np.asarray(shifted, dtype=float)
        return self._shares

    def _launch_request(self) -> None:
        request = _RequestState(
            request_id=self._next_request_id,
            born=self.sim.now,
            pending=self._n_keys,
        )
        self._next_request_id += 1
        if self._tracer is not None:
            request.span = self._tracer.start_request(
                "request",
                self.sim.now,
                request_id=request.request_id,
                n_keys=self._n_keys,
            )
        routing_window = self._routing_window
        if routing_window is not None:
            counts = routing_window.get()
        else:
            counts = self._rng_routing.multinomial(
                self._n_keys, self._effective_shares(self.sim.now)
            )
        if self._policy is None:
            for server_index, count in enumerate(counts):
                if count == 0:
                    continue
                contexts = [
                    _KeyContext(
                        request=request,
                        key_name=f"r{request.request_id}k{self._generated_keys + i}",
                        server_index=server_index,
                        launched=request.born,
                    )
                    for i in range(int(count))
                ]
                self._generated_keys += int(count)
                self._dispatch_batch(server_index, contexts)
            return
        # Policy path: each key gets its own state machine; keys bound
        # for the same server still travel as one batch (identical
        # arrival structure to the policy-free system).
        armed: List[_KeyState] = []
        for server_index, count in enumerate(counts):
            if count == 0:
                continue
            contexts = []
            for i in range(int(count)):
                state = _KeyState(
                    request=request,
                    key_name=f"r{request.request_id}k{self._generated_keys + i}",
                )
                context = _KeyContext(
                    request=request,
                    key_name=state.key_name,
                    server_index=server_index,
                    state=state,
                    launched=request.born,
                )
                state.attempts.append(context)
                contexts.append(context)
                armed.append(state)
            self._generated_keys += int(count)
            self._dispatch_batch(server_index, contexts)
        for state in armed:
            self._arm_timers(state)

    # ------------------------------------------------------------------
    # Policy machinery (hedging, timeout/retry, cancellation).
    # ------------------------------------------------------------------

    def _arm_timers(self, state: _KeyState) -> None:
        policy = self._policy
        if policy.hedge_delay is not None and state.hedge_timer is None:
            state.hedge_timer = self.sim.schedule(
                policy.hedge_delay, lambda: self._fire_hedge(state)
            )
        if policy.timeout is not None and state.timeout_timer is None:
            state.current_timeout = policy.timeout
            state.timeout_timer = self.sim.schedule(
                policy.timeout, lambda: self._fire_timeout(state)
            )

    def _cancel_timers(self, state: _KeyState) -> None:
        if state.hedge_timer is not None:
            state.hedge_timer.cancel()
            state.hedge_timer = None
        if state.timeout_timer is not None:
            state.timeout_timer.cancel()
            state.timeout_timer = None

    def _pick_server(self, exclude: Optional[int] = None) -> int:
        """Draw a server from the routing shares (policy stream).

        ``exclude`` removes the primary attempt's server for hedges — a
        duplicate on the same queue would wait behind its own original.
        """
        shares = np.array(self._effective_shares(self.sim.now), dtype=float)
        if exclude is not None and shares.size > 1:
            shares[exclude] = 0.0
        total = shares.sum()
        if total <= 0.0 or shares.size == 1:
            return exclude if exclude is not None else 0
        return int(self._rng_policy.choice(shares.size, p=shares / total))

    def _launch_attempt(self, state: _KeyState, server_index: int) -> None:
        context = _KeyContext(
            request=state.request,
            key_name=f"{state.key_name}a{len(state.attempts)}",
            server_index=server_index,
            state=state,
            launched=self.sim.now,
        )
        state.attempts.append(context)
        self._dispatch_batch(server_index, [context])

    def _fire_hedge(self, state: _KeyState) -> None:
        state.hedge_timer = None
        if state.done:
            return
        primary = state.attempts[0].server_index
        self._launch_attempt(state, self._pick_server(exclude=primary))

    def _fire_timeout(self, state: _KeyState) -> None:
        state.timeout_timer = None
        if state.done:
            return
        if state.retries_used >= self._policy.max_retries:
            # Retries exhausted: the outstanding attempts race untimed,
            # so the key (and its request) always completes.
            return
        for attempt in state.attempts:
            self._abandon_attempt(attempt)
        state.retries_used += 1
        state.current_timeout *= self._policy.backoff
        self._launch_attempt(state, self._pick_server())
        state.timeout_timer = self.sim.schedule(
            state.current_timeout, lambda: self._fire_timeout(state)
        )

    def _abandon_attempt(self, context: _KeyContext) -> None:
        if context.abandoned:
            return
        context.abandoned = True
        job = context.job
        if job is not None and job.finish_time is None:
            job.abandoned = True

    def _dispatch_batch(self, server_index: int, contexts: List[_KeyContext]) -> None:
        # One network traversal per key; all keys of the batch arrive
        # together at the server (they left the client together).
        server = self._servers[server_index]

        def deliver() -> None:
            now = self.sim.now
            if contexts[0].span is not None:
                # Queue depth every key of the batch sees at enqueue:
                # earlier batch members count as ahead of later ones.
                base_depth = server.queue_length + (1 if server.busy else 0)
                for position, context in enumerate(contexts):
                    context.span.attributes["queue_depth_at_enqueue"] = (
                        base_depth + position
                    )
            jobs = server.offer_batch(now, len(contexts), contexts=contexts)
            if self._policy is not None:
                for context, job in zip(contexts, jobs):
                    context.job = job

        delay = self._network.send(deliver)
        now = self.sim.now
        for context in contexts:
            context.network_so_far += delay
            request_span = context.request.span
            if request_span is not None:
                context.span = request_span.child(
                    "key",
                    now,
                    key=context.key_name,
                    server=server_index,
                )
                context.span.child("network.out", now, end=now + delay)

    # ------------------------------------------------------------------
    # Completion plumbing.
    # ------------------------------------------------------------------

    def _on_server_complete(self, job: KeyJob) -> None:
        context = job.context
        assert isinstance(context, _KeyContext)
        if context.abandoned:
            # A cancelled attempt that was already in service: the
            # capacity is spent, but it contributes nothing further.
            return
        request = context.request
        sojourn = job.sojourn
        if context.state is None:
            # ">=" keeps the same float as max() while carrying the
            # wait split of the max-attaining key for attribution.
            if sojourn >= request.max_server:
                request.max_server = sojourn
                request.server_wait = job.wait
        else:
            context.server_sojourn = sojourn
            context.server_wait = job.wait
        self._per_key_server.record(sojourn)
        if self._hist_key_sojourn is not None:
            self._hist_key_sojourn.record(sojourn)
            self._ctr_keys.inc()
        self._keys_processed += 1
        hit = self._cache.lookup(context.server_index, context.key_name)
        span = context.span
        if span is not None:
            span.attributes["hit"] = bool(hit)
            span.child("queue", job.arrival_time, end=job.start_time)
            span.child("service", job.start_time, end=self.sim.now)
        if hit or self._database is None:
            if not hit:
                self._misses += 1
                if self._ctr_misses is not None:
                    self._ctr_misses.inc()
            self._finish_key(context, database_time=0.0)
        else:
            self._misses += 1
            if self._ctr_misses is not None:
                self._ctr_misses.inc()
            db_job = self._database.offer_key(self.sim.now, context=context)
            if self._policy is not None:
                context.job = db_job

    def _on_database_complete(self, job: KeyJob) -> None:
        context = job.context
        assert isinstance(context, _KeyContext)
        if context.abandoned:
            return
        if context.state is None:
            if job.sojourn >= context.request.max_database:
                context.request.max_database = job.sojourn
                context.request.database_wait = job.wait
        else:
            context.database_sojourn = job.sojourn
            context.database_wait = job.wait
        if context.span is not None:
            context.span.child(
                "database",
                job.arrival_time,
                end=self.sim.now,
                wait=job.wait,
            )
        self._finish_key(context, database_time=job.sojourn)

    def _finish_key(self, context: _KeyContext, *, database_time: float) -> None:
        request = context.request

        def delivered() -> None:
            self._key_done(context)

        delay = self._network.send(delivered)
        context.network_so_far += delay
        if context.state is None:
            request.max_network = max(request.max_network, context.network_so_far)
        if context.span is not None:
            context.span.child("network.in", self.sim.now, end=self.sim.now + delay)

    def _key_done(self, context: _KeyContext) -> None:
        request = context.request
        state = context.state
        if state is not None:
            if context.abandoned or state.done:
                # A losing attempt arriving after the key resolved (or
                # after its timeout): spent load, nothing to record.
                if context.span is not None:
                    context.span.finish(self.sim.now)
                return
            state.done = True
            self._cancel_timers(state)
            if self._policy.cancel_on_winner:
                for attempt in state.attempts:
                    if attempt is not context:
                        self._abandon_attempt(attempt)
            # Only the winning attempt's stage times shape the request's
            # fork-join maxima — exactly what the client observed.
            if context.server_sojourn >= request.max_server:
                request.max_server = context.server_sojourn
                request.server_wait = context.server_wait
            if context.database_sojourn >= request.max_database:
                request.max_database = context.database_sojourn
                request.database_wait = context.database_wait
            request.max_network = max(request.max_network, context.network_so_far)
        request.pending -= 1
        if request.pending < 0:  # pragma: no cover - defensive
            raise SimulationError("request completed more keys than it has")
        if context.span is not None:
            context.span.finish(self.sim.now)
        if request.pending == 0:
            total = self.sim.now - request.born
            if self._timeline_requests is not None:
                self._timeline_requests((request.born, self.sim.now))
            if self._attr_append is not None:
                # One ROW_FIELDS tuple per request; join_slack and the
                # exact sums are derived vectorially at flush time.
                self._attr_append(
                    (
                        float(request.request_id),
                        request.born,
                        self.sim.now,
                        total,
                        request.max_network,
                        request.server_wait,
                        request.max_server - request.server_wait,
                        request.database_wait,
                        request.max_database - request.database_wait,
                        context.launched - request.born,
                    )
                )
                self._attr.maybe_flush()
                if request.span is not None:
                    request.span.attributes["attribution"] = {
                        "network": request.max_network,
                        "server_queue": request.server_wait,
                        "server_service": request.max_server
                        - request.server_wait,
                        "db_queue": request.database_wait,
                        "db_service": request.max_database
                        - request.database_wait,
                        "policy": context.launched - request.born,
                    }
            self._total.record(total)
            self._server_stage.record(request.max_server)
            self._database_stage.record(request.max_database)
            self._network_stage.record(request.max_network)
            if self._request_log is not None:
                self._request_log.append(
                    RequestRecord(
                        born=request.born,
                        completed=self.sim.now,
                        total=total,
                        server=request.max_server,
                        database=request.max_database,
                        network=request.max_network,
                    )
                )
            if self._hist_total is not None:
                self._hist_total.record(total)
                self._hist_server_max.record(request.max_server)
                self._hist_database_max.record(request.max_database)
                self._hist_network_max.record(request.max_network)
                self._ctr_requests.inc()
            if request.span is not None:
                self._tracer.finish_request(request.span, self.sim.now)
            self._completed_requests += 1
            if self._run_target is not None:
                if self._completed_requests == self._warmup_target:
                    self._reset_recorders()
                if self._completed_requests >= self._run_target:
                    self._accepting = False
                    self.sim.stop()

    # ------------------------------------------------------------------

    def run(
        self,
        *,
        n_requests: int,
        warmup_requests: int = 0,
        max_events: Optional[int] = None,
    ) -> SystemResults:
        """Generate and complete ``warmup + n`` requests; report stats.

        Warmup requests run through the system but their latencies are
        discarded by resetting the recorders once warmup completes.
        """
        if n_requests < 1:
            raise ValidationError(f"n_requests must be >= 1, got {n_requests}")
        target = n_requests + warmup_requests
        self._schedule_request_window()
        if max_events is None:
            # Default path: let the engine's batched hot loop drain
            # events back-to-back; _key_done resets recorders at the
            # warmup boundary and stops the engine at the target.
            self._warmup_target = warmup_requests if warmup_requests else None
            self._run_target = target
            try:
                self.sim.run()
            finally:
                self._run_target = None
                self._warmup_target = None
            if self._completed_requests < target:
                raise SimulationError("event queue drained before completion")
        else:
            # Budgeted path: step one event at a time so the budget is
            # charged with the historical per-event semantics.
            warmup_done = warmup_requests == 0
            budget = max_events
            while self._completed_requests < target:
                if not self.sim.step():
                    raise SimulationError(
                        "event queue drained before completion"
                    )
                budget -= 1
                if budget <= 0:
                    raise SimulationError("event budget exhausted")
                if not warmup_done and (
                    self._completed_requests >= warmup_requests
                ):
                    self._reset_recorders()
                    warmup_done = True
        self._accepting = False
        timeline = (
            self._timeline.build(end=self.sim.now, meta={"backend": "simulate"})
            if self._timeline is not None
            else None
        )
        attribution = (
            self._attr.build(meta={"backend": "simulate"})
            if self._attr is not None
            else None
        )
        return SystemResults(
            total=self._total,
            server_stage=self._server_stage,
            database_stage=self._database_stage,
            network_stage=self._network_stage,
            per_key_server=self._per_key_server,
            requests_completed=self._completed_requests
            - (warmup_requests if warmup_requests else 0),
            keys_processed=self._keys_processed,
            misses=self._misses,
            server_utilizations=[
                server.utilization_meter.utilization(self.sim.now)
                for server in self._servers
            ],
            observability=self.observability,
            request_log=(
                tuple(self._request_log) if self._request_log is not None else None
            ),
            timeline=timeline,
            attribution=attribution,
        )

    def _reset_recorders(self) -> None:
        self._total = LatencyRecorder()
        self._server_stage = LatencyRecorder()
        self._database_stage = LatencyRecorder()
        self._network_stage = LatencyRecorder()
        self._per_key_server = LatencyRecorder(max_samples=500_000)
        if self._request_log is not None:
            self._request_log = []
        # Observability resets in place: the histogram/counter objects
        # held by servers and the database stay valid (the timeline
        # builder clears its sink lists without replacing them).
        if self.observability is not None:
            self.observability.reset()
        if self._timeline is not None:
            # Post-warmup windows start at the warmup boundary, not t=0.
            self._timeline.origin = self.sim.now
