"""Measurement collection: streaming moments, quantiles, CIs, utilization.

The paper reports means with confidence intervals (Table 3) and quantile
curves (Fig. 4); :class:`LatencyRecorder` supports both: Welford
streaming moments plus an optional bounded sample store for quantiles.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

import numpy as np
from scipy import stats

from ..errors import ValidationError


@dataclasses.dataclass(frozen=True)
class SummaryStats:
    """Summary of a latency sample: moments, CI, quantiles."""

    count: int
    mean: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def ci(self) -> tuple[float, float]:
        return self.ci_low, self.ci_high

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.ci_low <= value <= self.ci_high


class LatencyRecorder:
    """Streaming mean/variance plus (optionally capped) raw samples.

    With the default unbounded storage, quantiles are exact. For very
    long runs pass ``max_samples``: storage switches to uniform
    reservoir sampling, keeping quantile estimates unbiased.
    """

    def __init__(
        self,
        *,
        max_samples: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_samples is not None and max_samples < 2:
            raise ValidationError(f"max_samples must be >= 2, got {max_samples}")
        self._max_samples = max_samples
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._samples: List[float] = []

    # ------------------------------------------------------------------

    def record(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        if not math.isfinite(value):
            raise ValidationError(f"observation must be finite, got {value}")
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if self._max_samples is None or len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            # Reservoir sampling: replace with probability cap/count.
            slot = int(self._rng.integers(0, self._count))
            if slot < self._max_samples:
                self._samples[slot] = value

    def record_many(self, values: Sequence[float]) -> None:
        """Add a batch of observations (vectorized).

        Equivalent to calling :meth:`record` per element — same
        validation, same streaming moments (merged with the Chan
        parallel-Welford update), same uniform-reservoir semantics —
        but one NumPy pass instead of a Python loop.
        """
        array = np.asarray(values, dtype=float).ravel()
        if array.size == 0:
            return
        finite = np.isfinite(array)
        if not finite.all():
            bad = float(array[~finite][0])
            raise ValidationError(f"observation must be finite, got {bad}")
        n = int(array.size)
        batch_mean = float(array.mean())
        batch_m2 = float(np.square(array - batch_mean).sum())
        total = self._count + n
        delta = batch_mean - self._mean
        self._mean += delta * n / total
        self._m2 += batch_m2 + delta * delta * self._count * n / total
        self._min = min(self._min, float(array.min()))
        self._max = max(self._max, float(array.max()))
        start_count = self._count
        self._count = total
        if self._max_samples is None:
            self._samples.extend(array.tolist())
            return
        cap = self._max_samples
        fill = min(max(cap - len(self._samples), 0), n)
        if fill:
            self._samples.extend(array[:fill].tolist())
        if fill == n:
            return
        # Reservoir step for the remainder: element with global index
        # c (1-based) replaces a uniform slot in [0, c) when slot < cap.
        rest = array[fill:]
        counts = start_count + fill + 1 + np.arange(rest.size)
        slots = np.floor(self._rng.random(rest.size) * counts).astype(np.int64)
        accepted = slots < cap
        samples = self._samples
        for slot, value in zip(slots[accepted].tolist(), rest[accepted].tolist()):
            samples[slot] = value

    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValidationError("no observations recorded")
        return self._mean

    @property
    def variance(self) -> float:
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValidationError("no observations recorded")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValidationError("no observations recorded")
        return self._max

    def quantile(self, k: float) -> float:
        """Empirical k-th quantile from the stored samples."""
        if not 0.0 <= k <= 1.0:
            raise ValidationError(f"quantile level must be in [0, 1]: {k}")
        if not self._samples:
            raise ValidationError("no observations recorded")
        return float(np.quantile(np.asarray(self._samples), k))

    def quantiles(self, ks: Sequence[float]) -> List[float]:
        """Several empirical quantiles at once."""
        return [self.quantile(float(k)) for k in ks]

    def confidence_interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """t-based CI for the mean (the paper's Table 3 style)."""
        if not 0.0 < confidence < 1.0:
            raise ValidationError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        if self._count < 2:
            raise ValidationError("need at least two observations for a CI")
        half = float(
            stats.t.ppf(0.5 + confidence / 2.0, self._count - 1)
        ) * self.std / math.sqrt(self._count)
        return self._mean - half, self._mean + half

    def summary(self, confidence: float = 0.95) -> SummaryStats:
        """Full summary used by benches and the CLI."""
        low, high = self.confidence_interval(confidence)
        return SummaryStats(
            count=self._count,
            mean=self.mean,
            std=self.std,
            ci_low=low,
            ci_high=high,
        )

    def samples(self) -> np.ndarray:
        """A copy of the stored (possibly subsampled) observations."""
        return np.asarray(self._samples, dtype=float)


class UtilizationMeter:
    """Tracks busy time of a server to report measured utilization."""

    def __init__(self) -> None:
        self._busy = 0.0
        self._busy_since: Optional[float] = None
        self._start: Optional[float] = None
        self._end = 0.0

    def server_started(self, now: float) -> None:
        """Server transitioned idle -> busy."""
        if self._start is None:
            self._start = now
        self._busy_since = now
        self._end = max(self._end, now)

    def server_stopped(self, now: float) -> None:
        """Server transitioned busy -> idle."""
        if self._busy_since is None:
            raise ValidationError("server was not busy")
        self._busy += now - self._busy_since
        self._busy_since = None
        self._end = max(self._end, now)

    def utilization(self, now: float) -> float:
        """Fraction of time busy over the observed span."""
        if self._start is None:
            return 0.0
        busy = self._busy
        if self._busy_since is not None:
            busy += now - self._busy_since
        span = now - self._start
        if span <= 0:
            return 0.0
        return busy / span
