"""Whole-system vectorized simulator (the event engine's fast twin).

:mod:`repro.simulation.fastpath` vectorizes one GI^X/M/1 server and then
*resamples* request latencies from stationary pools — fast, but it loses
the coupling the event engine keeps: keys of the same request really do
queue behind each other, misses really do contend at one shared
database. This module simulates the complete Fig. 1 pipeline of
:class:`~repro.simulation.system.MemcachedSystemSimulator` with numpy
scans instead of events, preserving every structural property of the
event-driven run:

1. End-user requests arrive Poisson; each forks ``N`` keys multinomially
   over the ``M`` servers by shares ``{p_j}``.
2. Keys of one request bound for one server arrive *together* (constant
   network delay preserves order), so each server sees a compound batch
   stream — its FIFO waits come from the shared Lindley recursion
   :func:`~repro.simulation.fastpath.lindley_waits` over batch service
   totals, and per-key sojourns add the within-batch service prefix.
3. Misses (Bernoulli ``r``) are relayed to the database at their
   server-completion instant. The database is a single FIFO M/M/1 queue
   simulated with its *own* Lindley recursion over the merged,
   time-sorted miss stream of all servers — not the lightly-loaded
   exponential shortcut the pool sampler uses — so database contention
   between concurrent requests is exact.
4. Every key pays the constant network delay out and back; the request
   completes when its last key returns: ``T(N) = 2d + max_i(s_i + d_i)``
   with the stage maxima ``TS(N) = max_i s_i``/``TD(N) = max_i d_i``
   recorded separately, exactly as the engine's recorders do.
5. The *sampling protocol* matches too: the engine keeps spawning
   requests until ``warmup + n`` of them have **completed**, resets its
   recorders at the ``warmup``-th completion, and reports completions
   ``warmup+1 .. warmup+n``. With order-preserving FIFO stages, an
   arrival after the last recorded completion cannot influence any
   earlier completion, so this run simulates generously many arrivals
   and selects the same completion-ranked window. That censoring is
   irrelevant in stationary regimes but decisive when the database is
   overloaded (the paper's §5.1 point!), where latencies grow with
   simulated time and the two protocols would otherwise diverge.

What it does *not* model: per-key tracing spans, pluggable cache
backends, and non-Poisson request processes — those remain event-engine
territory.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..errors import SimulationError, StabilityError, ValidationError
from ..faults import FaultSchedule
from ..observability.attribution import AttributionSet, AttributionSink
from ..observability.timeline import Timeline, TimelineSpec
from .fastpath import lindley_waits

__all__ = ["SystemSample", "simulate_system_requests"]

#: Doubling attempts for arrival coverage before giving up. 2**10 spawn
#: growth covers database overloads beyond 100x; anything needing more
#: is a configuration error, not a workload.
_MAX_GROWTH_ROUNDS = 10


@dataclasses.dataclass(frozen=True)
class SystemSample:
    """Per-request latency arrays from one whole-system fast-path run.

    Mirrors the recorders of
    :class:`~repro.simulation.system.SystemResults`: ``total`` is
    ``T(N)``, ``server_max``/``database_max`` are the fork-join stage
    maxima ``TS(N)``/``TD(N)`` (zero when a request had no miss), and
    ``network`` is the constant round trip ``2d`` every key pays.
    """

    total: np.ndarray
    server_max: np.ndarray
    database_max: np.ndarray
    network: float
    measured_miss_ratio: float
    server_utilizations: tuple
    #: Windowed telemetry over the recorded completion window, when the
    #: caller asked for one (same schema as the event engine's).
    timeline: Optional[Timeline] = None
    #: Per-request stage attribution (an AttributionSet) when recorded —
    #: same schema as the event engine's provenance records.
    attribution: Optional[AttributionSet] = None

    @property
    def n_requests(self) -> int:
        return int(self.total.size)


@dataclasses.dataclass
class _PassResult:
    """One full pipeline pass over ``n_spawn`` spawned requests."""

    arrivals: np.ndarray
    server_max: np.ndarray
    database_max: np.ndarray
    combo_max: np.ndarray
    miss_fraction: float
    # Per-server key service/completion arrays for utilization windows.
    server_services: list
    server_completions: list
    # Per-server key arrival instants (batch arrival repeated per key);
    # service starts are ``completion - service``. Feeds the timeline.
    server_arrivals: list
    # Merged database stream, in arrival order (empty without misses).
    db_arrival: np.ndarray
    db_service: np.ndarray
    db_completion: np.ndarray
    # Attribution-only (None unless requested): per request, the queue
    # wait of the key attaining the server/database stage maximum — the
    # wait/service split of the fork-join critical key.
    server_wait_at_max: Optional[np.ndarray] = None
    db_wait_at_max: Optional[np.ndarray] = None


def _value_at_group_max(
    group: np.ndarray,
    value: np.ndarray,
    payload: np.ndarray,
    n_groups: int,
) -> np.ndarray:
    """Per group, ``payload`` of the element attaining ``max(value)``.

    One lexsort: within each group the last element after sorting by
    ``(group, value)`` is the argmax, so a single fancy assignment
    extracts its payload — the vectorized twin of the engine's
    ">= running max" branch.
    """
    out = np.zeros(n_groups)
    if group.size == 0:
        return out
    order = np.lexsort((value, group))
    sorted_groups = group[order]
    last = np.flatnonzero(
        np.r_[sorted_groups[1:] != sorted_groups[:-1], True]
    )
    out[sorted_groups[last]] = payload[order][last]
    return out


def _simulate_pass(
    n_spawn: int,
    *,
    shares_arr: np.ndarray,
    service_rate: float,
    n_keys: int,
    request_rate: float,
    network_delay: float,
    miss_ratio: float,
    database_rate: Optional[float],
    rng: np.random.Generator,
    faults: Optional[FaultSchedule] = None,
    attribution: bool = False,
) -> _PassResult:
    """Push ``n_spawn`` requests through servers and database."""
    n_servers = shares_arr.size
    arrivals = np.cumsum(rng.exponential(1.0 / request_rate, size=n_spawn))
    counts = rng.multinomial(n_keys, shares_arr, size=n_spawn)

    server_max = np.zeros(n_spawn)
    # max_i (server sojourn + database sojourn): the request's critical
    # key, before the constant network round trip is added.
    combo_max = np.zeros(n_spawn)
    database_max = np.zeros(n_spawn)
    miss_request: list = []
    miss_arrival: list = []
    miss_server_sojourn: list = []
    server_services: list = []
    server_completions: list = []
    server_arrivals: list = []
    # Attribution-only accumulators: every key's (request, sojourn,
    # wait) triple, so the critical key's wait/service split can be
    # extracted per request after the loop.
    attr_request: list = []
    attr_sojourn: list = []
    attr_wait: list = []
    n_misses = 0

    for j in range(n_servers):
        batch_sizes_all = counts[:, j]
        nonzero = np.nonzero(batch_sizes_all)[0]
        if nonzero.size == 0:
            server_services.append(np.empty(0))
            server_completions.append(np.empty(0))
            server_arrivals.append(np.empty(0))
            continue
        sizes = batch_sizes_all[nonzero]
        total_keys = int(sizes.sum())
        services = rng.exponential(1.0 / service_rate, size=total_keys)
        batch_arrival = arrivals[nonzero] + network_delay
        if faults is not None:
            # Slowdown windows scale the service rate; the factor is
            # evaluated at the key's batch-arrival instant (the engine
            # evaluates at service *start* — the protocols agree except
            # for keys whose wait straddles a window edge).
            factors = faults.server_rate_factors(
                j, np.repeat(batch_arrival, sizes)
            )
            services = services / factors

        starts = np.zeros(nonzero.size, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        batch_service = np.add.reduceat(services, starts)
        waits = lindley_waits(batch_service, np.diff(batch_arrival))

        # Per-key sojourn: batch wait + within-batch inclusive prefix.
        cumulative = np.cumsum(services)
        before_batch = cumulative[starts] - services[starts]
        within = cumulative - np.repeat(before_batch, sizes)
        sojourn = np.repeat(waits, sizes) + within

        request_of_key = np.repeat(nonzero, sizes)
        np.maximum.at(server_max, request_of_key, sojourn)
        if attribution:
            attr_request.append(request_of_key)
            attr_sojourn.append(sojourn)
            # Clamp the -1 ulp float dust so queue waits stay >= 0.
            attr_wait.append(np.maximum(sojourn - services, 0.0))
        key_arrival = np.repeat(batch_arrival, sizes)
        completion = key_arrival + sojourn
        server_services.append(services)
        server_completions.append(completion)
        server_arrivals.append(key_arrival)

        if miss_ratio > 0.0:
            missed = rng.random(total_keys) < miss_ratio
            if missed.any():
                n_misses += int(missed.sum())
                miss_request.append(request_of_key[missed])
                miss_arrival.append(completion[missed])
                miss_server_sojourn.append(sojourn[missed])
            # Hits resolve at the server; misses get their database
            # sojourn added below. Taking the server-only max here is
            # safe — the miss contribution can only be larger.
        np.maximum.at(combo_max, request_of_key, sojourn)

    if miss_request:
        request_of_miss = np.concatenate(miss_request)
        db_arrival = np.concatenate(miss_arrival)
        server_part = np.concatenate(miss_server_sojourn)
        # Merged miss stream across servers, in database-arrival order:
        # the FIFO M/M/1 database serves them with its own Lindley pass.
        order = np.argsort(db_arrival, kind="stable")
        request_of_miss = request_of_miss[order]
        db_arrival = db_arrival[order]
        server_part = server_part[order]
        db_service = rng.exponential(
            1.0 / float(database_rate), size=db_arrival.size
        )
        if faults is not None:
            db_service = db_service / faults.database_rate_factors(db_arrival)
        db_sojourn = lindley_waits(db_service, np.diff(db_arrival)) + db_service
        db_completion = db_arrival + db_sojourn
        np.maximum.at(database_max, request_of_miss, db_sojourn)
        np.maximum.at(combo_max, request_of_miss, server_part + db_sojourn)
        db_wait_at_max = (
            _value_at_group_max(
                request_of_miss,
                db_sojourn,
                np.maximum(db_sojourn - db_service, 0.0),
                n_spawn,
            )
            if attribution
            else None
        )
    else:
        db_arrival = db_service = db_completion = np.empty(0)
        db_wait_at_max = np.zeros(n_spawn) if attribution else None

    server_wait_at_max = None
    if attribution:
        server_wait_at_max = _value_at_group_max(
            np.concatenate(attr_request) if attr_request else np.empty(0, int),
            np.concatenate(attr_sojourn) if attr_sojourn else np.empty(0),
            np.concatenate(attr_wait) if attr_wait else np.empty(0),
            n_spawn,
        )

    return _PassResult(
        arrivals=arrivals,
        server_max=server_max,
        database_max=database_max,
        combo_max=combo_max,
        miss_fraction=n_misses / float(n_spawn * n_keys),
        server_services=server_services,
        server_completions=server_completions,
        server_arrivals=server_arrivals,
        db_arrival=db_arrival,
        db_service=db_service,
        db_completion=db_completion,
        server_wait_at_max=server_wait_at_max,
        db_wait_at_max=db_wait_at_max,
    )


def simulate_system_requests(
    shares: Sequence[float],
    service_rate: float,
    *,
    n_keys: int,
    request_rate: float,
    n_requests: int,
    rng: np.random.Generator,
    warmup_requests: int = 0,
    network_delay: float = 0.0,
    miss_ratio: float = 0.0,
    database_rate: Optional[float] = None,
    faults: Optional[FaultSchedule] = None,
    timeline: object = None,
    attribution: object = None,
) -> SystemSample:
    """Simulate the system until ``warmup + n`` requests complete.

    Parameters mirror :class:`MemcachedSystemSimulator`: ``request_rate``
    is the Poisson end-user rate (the induced per-server key rate is
    ``request_rate * N * p_j``), ``service_rate`` is ``muS`` per server,
    and misses feed one shared FIFO ``Exp(database_rate)`` database.
    Following the engine's protocol, the first ``warmup_requests``
    *completions* shape the queues but are dropped from the returned
    arrays, and the run ends at the ``warmup + n``-th completion.

    ``faults`` accepts the *vectorizable* subset of a
    :class:`~repro.faults.FaultSchedule` — rate-scaling windows (server
    slowdowns, database overloads). Pauses and share shifts need the
    event engine's per-event control flow and are rejected here.

    ``timeline`` (anything :meth:`TimelineSpec.coerce` accepts — ``True``,
    a window count, a window width, or a spec) attaches windowed
    telemetry over the recorded completion window, bucketed in one
    vectorized pass and schema-identical to the event engine's.

    ``attribution`` (``True``, a reservoir capacity, or a pre-built
    :class:`~repro.observability.AttributionSink`) attaches per-request
    stage attribution computed vectorially from the Lindley recursions:
    the critical key's wait/service split per stage, in the same schema
    the event engine emits (``policy`` is always zero here — the fast
    path models no request policies).
    """
    shares_arr = np.asarray(shares, dtype=float)
    if shares_arr.ndim != 1 or shares_arr.size < 1:
        raise ValidationError("shares must be a non-empty 1-D sequence")
    if not np.isclose(float(shares_arr.sum()), 1.0, rtol=1e-9, atol=1e-12):
        raise ValidationError("shares must sum to 1")
    if n_keys < 1:
        raise ValidationError(f"n_keys must be >= 1, got {n_keys}")
    if n_requests < 1:
        raise ValidationError(f"n_requests must be >= 1, got {n_requests}")
    if warmup_requests < 0:
        raise ValidationError(
            f"warmup_requests must be >= 0, got {warmup_requests}"
        )
    if request_rate <= 0:
        raise ValidationError(f"request_rate must be > 0, got {request_rate}")
    if service_rate <= 0:
        raise ValidationError(f"service_rate must be > 0, got {service_rate}")
    if network_delay < 0:
        raise ValidationError(
            f"network_delay must be >= 0, got {network_delay}"
        )
    if not 0.0 <= miss_ratio <= 1.0:
        raise ValidationError(f"miss_ratio must be in [0, 1], got {miss_ratio}")
    if miss_ratio > 0.0 and database_rate is None:
        raise ValidationError("database_rate is required when miss_ratio > 0")
    spec = TimelineSpec.coerce(timeline)
    if faults is not None and faults.is_empty:
        faults = None
    if faults is not None:
        if not faults.is_vectorizable:
            offending = sorted(
                {
                    window.to_dict()["kind"]
                    for window in faults.windows
                    if window.to_dict()["kind"]
                    not in ("server-slowdown", "database-overload")
                }
            )
            raise ValidationError(
                "fastpath-system vectorizes only rate-scaling fault "
                "windows (server slowdowns, database overloads); this "
                f"schedule contains {', '.join(offending)} windows — "
                'run the scenario with backend="simulate" (the event '
                "engine supports every fault kind)"
            )
        faults.validate_for(shares_arr.size)

    key_rate = request_rate * n_keys
    rho = float(np.max(shares_arr)) * key_rate / service_rate
    if rho >= 1.0:
        raise StabilityError(rho)
    # No database stability guard: the event engine runs an overloaded
    # database as a growing finite-horizon transient (the paper's §5.1
    # point is exactly such a case) and the machinery below reproduces
    # that transient faithfully. Only the Memcached tier — where
    # stationarity is the modeling claim — rejects rho >= 1.

    attribution_sink = _coerce_attribution(attribution)
    n_total = warmup_requests + n_requests
    kwargs = dict(
        shares_arr=shares_arr,
        service_rate=float(service_rate),
        n_keys=n_keys,
        request_rate=float(request_rate),
        network_delay=float(network_delay),
        miss_ratio=float(miss_ratio),
        database_rate=database_rate,
        rng=rng,
        faults=faults,
        attribution=attribution_sink is not None,
    )

    # The engine spawns requests until the (warmup + n)-th COMPLETION;
    # arrivals after that instant never exist. An arrival after time t
    # can only delay keys arriving after t at every FIFO stage, so it
    # cannot influence completions before t: simulating extra arrivals
    # and windowing on completion rank reproduces the engine's run law
    # exactly — provided arrivals cover the whole recorded window.
    # Overshoot, check coverage against the cutoff, and double until it
    # holds (stable systems succeed immediately; overloaded databases,
    # whose cutoff drifts far past the nominal arrival span, need a few
    # rounds).
    n_spawn = n_total + 64 + n_total // 8
    for _ in range(_MAX_GROWTH_ROUNDS):
        result = _simulate_pass(n_spawn, **kwargs)
        completion = (
            result.arrivals + result.combo_max + 2.0 * network_delay
        )
        cutoff = float(np.partition(completion, n_total - 1)[n_total - 1])
        if result.arrivals[-1] >= cutoff:
            break
        n_spawn *= 2
    else:
        raise SimulationError(
            "could not cover the completion window after "
            f"{_MAX_GROWTH_ROUNDS} growth rounds (database overload too "
            "extreme for a finite run?)"
        )

    order = np.argsort(completion, kind="stable")
    keep = order[warmup_requests:n_total]
    round_trip = 2.0 * network_delay
    utilizations = []
    for services, completions in zip(
        result.server_services, result.server_completions
    ):
        done = completions <= cutoff
        utilizations.append(float(services[done].sum()) / cutoff)
    run_timeline = None
    if spec is not None:
        # Same window law as the engine: recorders (and windows) start
        # at the warmup-th completion and end at the cutoff instant.
        t0 = (
            float(completion[order[warmup_requests - 1]])
            if warmup_requests
            else 0.0
        )
        stages = {}
        for j in range(shares_arr.size):
            arr = result.server_arrivals[j]
            fin = result.server_completions[j]
            svc = result.server_services[j]
            in_window = (fin > t0) & (fin <= cutoff)
            stages[f"server.{j}"] = (
                arr[in_window],
                fin[in_window] - svc[in_window],
                fin[in_window],
            )
        if miss_ratio > 0.0 and database_rate is not None:
            fin = result.db_completion
            in_window = (fin > t0) & (fin <= cutoff)
            stages["database"] = (
                result.db_arrival[in_window],
                fin[in_window] - result.db_service[in_window],
                fin[in_window],
            )
        run_timeline = Timeline.from_events(
            start=t0,
            end=cutoff,
            request_born=result.arrivals[keep],
            request_completed=completion[keep],
            stages=stages,
            spec=spec,
            meta={"backend": "fastpath-system"},
        )
    attribution_set = None
    if attribution_sink is not None:
        # The critical key's wait/service split over the recorded
        # window; join_slack and the exact sums come from the sink.
        server_queue = result.server_wait_at_max[keep]
        db_queue = result.db_wait_at_max[keep]
        attribution_sink.record_columns(
            request_id=keep.astype(float),
            born=result.arrivals[keep],
            completed=completion[keep],
            total=result.combo_max[keep] + round_trip,
            network=np.full(keep.size, round_trip),
            server_queue=server_queue,
            server_service=result.server_max[keep] - server_queue,
            db_queue=db_queue,
            db_service=result.database_max[keep] - db_queue,
            policy=np.zeros(keep.size),
        )
        attribution_set = attribution_sink.build(
            meta={"backend": "fastpath-system"}
        )
    return SystemSample(
        total=result.combo_max[keep] + round_trip,
        server_max=result.server_max[keep],
        database_max=result.database_max[keep],
        network=round_trip,
        measured_miss_ratio=result.miss_fraction,
        server_utilizations=tuple(utilizations),
        timeline=run_timeline,
        attribution=attribution_set,
    )


def _coerce_attribution(option: object) -> Optional[AttributionSink]:
    """``None``/``False`` -> off; ``True`` -> defaults; int -> capacity."""
    if isinstance(option, AttributionSink):
        return option
    if option is None or isinstance(option, bool):
        return AttributionSink() if option else None
    if isinstance(option, int):
        return AttributionSink(max_records=option)
    raise TypeError(
        "attribution must be None, a bool, an int capacity, or an "
        f"AttributionSink, got {type(option).__name__}"
    )
