"""Discrete-event simulation engine.

A deliberately small, dependency-free core: a monotonic clock and a
pluggable event scheduler (binary heap, slotted calendar queue, or a
compiled calendar queue — see :mod:`repro.simulation.scheduler`).
Components (arrival processes, servers, the database) schedule
callbacks; the engine guarantees deterministic ordering — events at
equal times fire in scheduling order — so seeded runs are exactly
reproducible, *independent of the scheduler backend*: every backend
pops in the same ``(time, seq)`` total order.

Two scheduling shapes exist:

* :meth:`Simulator.schedule` — one callback at one time, returning an
  :class:`EventHandle` for cancellation. Cancelled events are either
  removed eagerly (calendar backends) or compacted in bulk once they
  outnumber live entries (heap backend), so cancel-heavy policies
  (hedging with cancel-on-winner) keep the queue bounded.
* :meth:`Simulator.schedule_batch` — a *homogeneous batch*: one
  callback fired once per pre-computed time, in order. The batch holds
  a single scheduler entry that is re-armed as it drains, so a window
  of (say) pre-drawn arrival times costs one event record and — inside
  :meth:`run` — consecutive batch events whose times precede every
  other scheduled event fire back-to-back without touching the
  scheduler at all.

An optional :class:`~repro.observability.EngineProfiler` can be
attached to attribute wall-clock time to callback categories; when no
profiler is attached the event loop pays one ``is None`` check per
event (batch drains included — each drained event is individually
profiled when a profiler is present).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Sequence

from ..errors import SimulationError, ValidationError
from .scheduler import make_scheduler

Callback = Callable[[], None]
BatchCallback = Callable[[int], None]


class _Event:
    """Mutable event record; ordering lives in the scheduler entry, not here."""

    __slots__ = ("time", "seq", "callback", "cancelled", "fired")

    def __init__(self, time: float, seq: int, callback: Callback) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False


class _Batch:
    """A homogeneous event batch: one callback over a window of times.

    The batch keeps a single scheduler entry alive at a time —
    ``(times[index], seq)`` — re-armed after each firing, so ``seq``
    (assigned once, at scheduling) breaks time ties exactly like an
    ordinary event scheduled at the same moment would.
    """

    __slots__ = ("times", "index", "seq", "callback", "cancelled", "time", "queued")

    def __init__(self, times: list, seq: int, callback: BatchCallback) -> None:
        self.times = times
        self.index = 0
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.time = times[0]  # currently scheduled fire time
        self.queued = False


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        event = self._event
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        sim = self._sim
        sim._live -= 1
        sim._scheduler.discard(event.time, event.seq, event)

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class BatchHandle:
    """Handle returned by :meth:`Simulator.schedule_batch`."""

    __slots__ = ("_batch", "_sim")

    def __init__(self, batch: _Batch, sim: "Simulator") -> None:
        self._batch = batch
        self._sim = sim

    def cancel(self) -> None:
        """Prevent all not-yet-fired batch events from firing."""
        batch = self._batch
        if batch.cancelled:
            return
        remaining = len(batch.times) - batch.index
        if remaining <= 0:
            return
        batch.cancelled = True
        sim = self._sim
        sim._live -= remaining
        if batch.queued:
            batch.queued = False
            sim._scheduler.discard(batch.time, batch.seq, batch)

    @property
    def remaining(self) -> int:
        """Batch events still scheduled to fire."""
        if self._batch.cancelled:
            return 0
        return len(self._batch.times) - self._batch.index

    @property
    def cancelled(self) -> bool:
        return self._batch.cancelled


class Simulator:
    """Event loop: schedule callbacks on the simulated clock and run."""

    def __init__(
        self,
        *,
        profiler: Optional[object] = None,
        scheduler: Optional[str] = None,
    ) -> None:
        self._now = 0.0
        self._scheduler = make_scheduler(scheduler)
        self._counter = itertools.count()
        self._processed = 0
        # Live (scheduled, not yet fired or cancelled) event count,
        # maintained on schedule/cancel/fire so introspection is O(1).
        self._live = 0
        self._profiler = profiler
        self._stop = False

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        """Live events awaiting their fire time (O(1))."""
        return self._live

    @property
    def scheduler_backend(self) -> str:
        """Resolved scheduler backend name (``heap``/``calendar``/``compiled``)."""
        return self._scheduler.name

    @property
    def scheduler_entries(self) -> int:
        """Entries held by the scheduler, *including* dead (cancelled)
        entries the heap backend has not collected yet — the quantity
        the compaction contract bounds."""
        return self._scheduler.entries

    @property
    def profiler(self) -> Optional[object]:
        return self._profiler

    def set_profiler(self, profiler: Optional[object]) -> None:
        """Attach (or detach with ``None``) an event-loop profiler."""
        self._profiler = profiler

    def stop(self) -> None:
        """Ask a running :meth:`run` loop to return after the current
        callback.

        This is how completion-driven simulations (stop after N
        requests) ride the batched hot loop instead of stepping one
        event at a time. The flag is cleared on :meth:`run` entry, so a
        stop requested outside a run is discarded.
        """
        self._stop = True

    def schedule(self, delay: float, callback: Callback) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValidationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValidationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = _Event(float(time), next(self._counter), callback)
        self._scheduler.push(event.time, event.seq, event)
        self._live += 1
        return EventHandle(event, self)

    def schedule_batch(
        self, times: Sequence[float], callback: BatchCallback
    ) -> BatchHandle:
        """Fire ``callback(i)`` at each ``times[i]`` (ascending, absolute).

        The whole window shares one event record and one scheduler
        entry, so scheduling a thousand pre-drawn arrivals costs O(1)
        allocations — the batched-dispatch primitive components use to
        avoid per-event Python object churn. The callback receives the
        index into ``times``; ``sim.now`` equals ``times[i]`` during
        the call. Ties against other events resolve by scheduling
        order, exactly as for :meth:`schedule`.
        """
        times = [float(t) for t in times]
        if not times:
            raise ValidationError("schedule_batch needs at least one time")
        if times[0] < self._now:
            raise ValidationError(
                f"cannot schedule in the past: {times[0]} < now {self._now}"
            )
        if any(a > b for a, b in zip(times, times[1:])):
            raise ValidationError("batch times must be non-decreasing")
        batch = _Batch(times, next(self._counter), callback)
        self._scheduler.push(batch.time, batch.seq, batch)
        batch.queued = True
        self._live += len(times)
        return BatchHandle(batch, self)

    # ------------------------------------------------------------------

    def _fire(self, obj) -> None:
        """Dispatch one popped entry (clock already advanced)."""
        profiler = self._profiler
        if type(obj) is _Event:
            obj.fired = True
            self._live -= 1
            if profiler is None:
                obj.callback()
            else:
                started = profiler.clock()
                obj.callback()
                profiler.record(
                    obj.callback,
                    profiler.clock() - started,
                    started_at=started,
                    pending=self._live,
                )
        else:  # _Batch
            index = obj.index
            obj.index = index + 1
            obj.queued = False
            self._live -= 1
            if profiler is None:
                obj.callback(index)
            else:
                started = profiler.clock()
                obj.callback(index)
                profiler.record(
                    obj.callback,
                    profiler.clock() - started,
                    started_at=started,
                    pending=self._live,
                )
            if not obj.cancelled and obj.index < len(obj.times):
                obj.time = obj.times[obj.index]
                self._scheduler.push(obj.time, obj.seq, obj)
                obj.queued = True
        self._processed += 1

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        entry = self._scheduler.pop()
        if entry is None:
            return False
        time = entry[0]
        if time < self._now:  # pragma: no cover - scheduler invariant
            raise SimulationError(f"time went backwards: {time} < {self._now}")
        self._now = time
        self._fire(entry[2])
        return True

    def run_until(self, end_time: float, *, max_events: Optional[int] = None) -> None:
        """Process events with time <= ``end_time`` (clock stops there)."""
        if end_time < self._now:
            raise ValidationError(
                f"end_time {end_time} is before now {self._now}"
            )
        budget = max_events
        scheduler = self._scheduler
        while True:
            head = scheduler.peek()
            if head is None or head[0] > end_time:
                break
            if budget is not None:
                if budget <= 0:
                    raise SimulationError(
                        f"event budget exhausted at t={self._now}"
                    )
                budget -= 1
            self.step()
        self._now = float(end_time)

    def run(self, *, max_events: Optional[int] = None) -> None:
        """Process all events until the queue drains.

        This is the engine's hot loop: a popped batch entry drains
        inline — while the batch's next event beats everything else in
        the scheduler in ``(time, seq)`` order it fires back-to-back
        with no scheduler traffic and no per-event allocations. The
        batch stays *out* of the scheduler while draining and is only
        re-pushed when another event wins the race, so the scheduler
        never holds a stale key for it.
        """
        budget = max_events
        scheduler = self._scheduler
        self._stop = False
        while True:
            if self._stop:
                return
            entry = scheduler.pop()
            if entry is None:
                return
            profiler = self._profiler
            time, seq, obj = entry
            if time < self._now:  # pragma: no cover - scheduler invariant
                raise SimulationError(
                    f"time went backwards: {time} < {self._now}"
                )
            if budget is not None and budget <= 0:
                raise SimulationError(
                    f"event budget exhausted at t={self._now}"
                )
            if type(obj) is _Event:
                self._now = time
                obj.fired = True
                self._live -= 1
                if profiler is None:
                    obj.callback()
                else:
                    started = profiler.clock()
                    obj.callback()
                    profiler.record(
                        obj.callback,
                        profiler.clock() - started,
                        started_at=started,
                        pending=self._live,
                    )
                self._processed += 1
                if budget is not None:
                    budget -= 1
                continue
            # Batch entry: fire elements inline. The first one always
            # fires (we just popped the queue minimum); later ones fire
            # as long as they still beat the new head. Callbacks may
            # re-read profiler state mid-drain, so keep it fresh.
            obj.queued = False
            times = obj.times
            n = len(times)
            callback = obj.callback
            while True:
                index = obj.index
                t_next = times[index]
                head = scheduler.peek()
                if head is not None and (
                    head[0] < t_next or (head[0] == t_next and head[1] < seq)
                ):
                    # Another event fires first: park the batch back in
                    # the scheduler at its next time and return to the
                    # outer loop.
                    obj.time = t_next
                    scheduler.push(t_next, seq, obj)
                    obj.queued = True
                    break
                if budget is not None:
                    if budget <= 0:
                        raise SimulationError(
                            f"event budget exhausted at t={self._now}"
                        )
                    budget -= 1
                self._now = t_next
                obj.index = index + 1
                self._live -= 1
                if profiler is None:
                    callback(index)
                else:
                    started = profiler.clock()
                    callback(index)
                    profiler.record(
                        callback,
                        profiler.clock() - started,
                        started_at=started,
                        pending=self._live,
                    )
                self._processed += 1
                if obj.cancelled or obj.index >= n:
                    break  # exhausted or cancelled mid-drain; not queued
                if self._stop:
                    # Park the rest of the batch so scheduler state stays
                    # consistent across the pause, then let the outer
                    # loop return.
                    obj.time = times[obj.index]
                    scheduler.push(obj.time, seq, obj)
                    obj.queued = True
                    break
