"""Discrete-event simulation engine.

A deliberately small, dependency-free core: a monotonic clock and a
binary-heap event queue. Components (arrival processes, servers, the
database) schedule callbacks; the engine guarantees deterministic
ordering — events at equal times fire in scheduling order — so seeded
runs are exactly reproducible.

The heap holds plain ``(time, seq, event)`` tuples: tuple comparison
resolves on the float/int prefix without ever reaching the event
object, which is markedly cheaper per push/pop than a dataclass
``__lt__`` (generated ``order=True`` comparisons dominated the
per-event cost in profiles).

An optional :class:`~repro.observability.EngineProfiler` can be
attached to attribute wall-clock time to callback categories; when no
profiler is attached the event loop pays one ``is None`` check per
event.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from ..errors import SimulationError, ValidationError

Callback = Callable[[], None]


class _Event:
    """Mutable event record; ordering lives in the heap tuple, not here."""

    __slots__ = ("time", "seq", "callback", "cancelled", "fired")

    def __init__(self, time: float, seq: int, callback: Callback) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        event = self._event
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._sim._live -= 1

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """Event loop: schedule callbacks on the simulated clock and run."""

    def __init__(self, *, profiler: Optional[object] = None) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, _Event]] = []
        self._counter = itertools.count()
        self._processed = 0
        # Live (scheduled, not yet fired or cancelled) event count,
        # maintained on schedule/cancel/fire so introspection is O(1).
        self._live = 0
        self._profiler = profiler

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        """Live events awaiting their fire time (O(1))."""
        return self._live

    @property
    def profiler(self) -> Optional[object]:
        return self._profiler

    def set_profiler(self, profiler: Optional[object]) -> None:
        """Attach (or detach with ``None``) an event-loop profiler."""
        self._profiler = profiler

    def schedule(self, delay: float, callback: Callback) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValidationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValidationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = _Event(float(time), next(self._counter), callback)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        self._live += 1
        return EventHandle(event, self)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            if event.cancelled:
                continue
            if event.time < self._now:  # pragma: no cover - heap invariant
                raise SimulationError(
                    f"time went backwards: {event.time} < {self._now}"
                )
            event.fired = True
            self._live -= 1
            self._now = event.time
            profiler = self._profiler
            if profiler is None:
                event.callback()
            else:
                started = profiler.clock()
                event.callback()
                profiler.record(
                    event.callback,
                    profiler.clock() - started,
                    started_at=started,
                    pending=self._live,
                )
            self._processed += 1
            return True
        return False

    def run_until(self, end_time: float, *, max_events: Optional[int] = None) -> None:
        """Process events with time <= ``end_time`` (clock stops there)."""
        if end_time < self._now:
            raise ValidationError(
                f"end_time {end_time} is before now {self._now}"
            )
        budget = max_events
        while self._heap:
            head_time, _, head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head_time > end_time:
                break
            if budget is not None:
                if budget <= 0:
                    raise SimulationError(
                        f"event budget exhausted at t={self._now}"
                    )
                budget -= 1
            self.step()
        self._now = float(end_time)

    def run(self, *, max_events: Optional[int] = None) -> None:
        """Process all events until the queue drains."""
        budget = max_events
        while self.step():
            if budget is not None:
                budget -= 1
                if budget <= 0 and self._heap:
                    raise SimulationError(
                        f"event budget exhausted at t={self._now}"
                    )
