"""Arrival processes for the simulator.

:class:`BatchArrivalProcess` reproduces the paper's workload: batch gaps
from any :class:`~repro.distributions.Distribution` (Generalized Pareto
for the Facebook model) and geometric batch sizes. A Poisson process and
a trace replayer round out the set.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from ..core.workload import WorkloadPattern
from ..distributions import (
    DiscreteDistribution,
    Distribution,
    Exponential,
    FixedCount,
    RandomWindow,
    split_rng,
)
from ..errors import ValidationError
from .engine import BatchHandle, Simulator

#: Called with (arrival_time, batch_size) for each batch.
BatchSink = Callable[[float, int], None]


@dataclasses.dataclass(frozen=True)
class Batch:
    """One batch arrival: when and how many keys."""

    time: float
    size: int


class BatchArrivalProcess:
    """Renewal batch arrivals driven by the event engine.

    Each renewal draws a gap from ``gap`` and a size from ``batch_size``
    and delivers the batch to ``sink``. Attach to a simulator with
    :meth:`start`; the process reschedules itself until ``stop`` is
    called or the simulation ends.

    ``window`` opts into the batched fast path: gaps and sizes are
    pre-drawn a window at a time and the arrivals ride one engine event
    batch (:meth:`Simulator.schedule_batch`) instead of one scheduled
    event each. Windowed mode draws gap and size values from two
    *split child streams* of ``rng`` (interleaving them on one stream
    would make the values depend on the window size), so its seeded
    output differs from the default per-event mode — pick one mode per
    experiment. Within windowed mode, results are invariant to the
    window size.
    """

    def __init__(
        self,
        gap: Distribution,
        batch_size: DiscreteDistribution,
        rng: np.random.Generator,
        *,
        window: Optional[int] = None,
    ) -> None:
        self._gap = gap
        self._batch_size = batch_size
        self._rng = rng
        self._sink: Optional[BatchSink] = None
        self._sim: Optional[Simulator] = None
        self._running = False
        if window is not None:
            if window < 1:
                raise ValidationError(f"window must be >= 1, got {window}")
            gap_rng, size_rng = split_rng(rng, 2)
            self._gap_window: Optional[RandomWindow] = (
                RandomWindow.from_distribution(gap, gap_rng, size=window)
            )
            self._size_window: Optional[RandomWindow] = (
                RandomWindow.from_distribution(batch_size, size_rng, size=window)
            )
        else:
            self._gap_window = None
            self._size_window = None
        self._window = window
        self._batch_handle: Optional[BatchHandle] = None

    @classmethod
    def from_workload(
        cls, workload: WorkloadPattern, rng: np.random.Generator
    ) -> "BatchArrivalProcess":
        """Build the paper's GPD-gap, geometric-size process."""
        return cls(
            workload.batch_gap_distribution(),
            workload.batch_size_distribution(),
            rng,
        )

    def start(self, sim: Simulator, sink: BatchSink) -> None:
        """Begin generating arrivals into ``sink``."""
        if self._running:
            raise ValidationError("arrival process already started")
        self._sim = sim
        self._sink = sink
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop after the currently scheduled arrival (if any)."""
        self._running = False
        if self._batch_handle is not None:
            self._batch_handle.cancel()
            self._batch_handle = None

    def _schedule_next(self) -> None:
        assert self._sim is not None
        if self._gap_window is not None:
            self._schedule_window()
            return
        gap = float(self._gap.sample(self._rng))
        self._sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        assert self._sim is not None and self._sink is not None
        size = int(self._batch_size.sample(self._rng))
        self._sink(self._sim.now, size)
        self._schedule_next()

    # Windowed fast path: one engine batch per pre-drawn gap window. ---

    def _schedule_window(self) -> None:
        sim = self._sim
        count = self._window
        t = sim.now
        times = []
        for gap in self._gap_window.take(count).tolist():
            t = t + gap
            times.append(t)
        self._batch_handle = sim.schedule_batch(times, self._fire_windowed)

    def _fire_windowed(self, index: int) -> None:
        if not self._running:
            return
        self._sink(self._sim.now, int(self._size_window.get()))
        if index + 1 == self._window:
            self._schedule_window()


class PoissonProcess(BatchArrivalProcess):
    """Single arrivals with exponential gaps (the M in M/M/1)."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__(Exponential(rate), FixedCount(1), rng)


def generate_batches(
    gap: Distribution,
    batch_size: DiscreteDistribution,
    rng: np.random.Generator,
    *,
    n_batches: int,
) -> Iterator[Batch]:
    """Offline batch generation (no engine): an iterator of batches.

    Times start at the first gap (stationary renewal convention used by
    the fast-path simulator).
    """
    if n_batches < 1:
        raise ValidationError(f"n_batches must be >= 1, got {n_batches}")
    gaps = np.asarray(gap.sample(rng, n_batches), dtype=float)
    sizes = np.asarray(batch_size.sample(rng, n_batches), dtype=np.int64)
    times = np.cumsum(gaps)
    for time, size in zip(times, sizes):
        yield Batch(time=float(time), size=int(size))


class TimeVaryingPoissonProcess:
    """Non-homogeneous Poisson arrivals via Lewis-Shedler thinning.

    Production key rates follow diurnal curves; this process drives the
    simulator with any bounded rate function ``rate(t)`` — candidate
    events are generated at ``max_rate`` and accepted with probability
    ``rate(t) / max_rate``, which is exact for inhomogeneous Poisson.
    """

    def __init__(
        self,
        rate: Callable[[float], float],
        max_rate: float,
        rng: np.random.Generator,
        *,
        batch_size: Optional[DiscreteDistribution] = None,
    ) -> None:
        if max_rate <= 0:
            raise ValidationError(f"max_rate must be > 0, got {max_rate}")
        self._rate = rate
        self._max_rate = float(max_rate)
        self._rng = rng
        self._batch_size = batch_size if batch_size is not None else FixedCount(1)
        self._sink: Optional[BatchSink] = None
        self._sim: Optional[Simulator] = None
        self._running = False

    @classmethod
    def sinusoidal(
        cls,
        mean_rate: float,
        amplitude: float,
        period: float,
        rng: np.random.Generator,
        **kwargs: object,
    ) -> "TimeVaryingPoissonProcess":
        """Diurnal-style rate ``mean (1 + a sin(2 pi t / period))``."""
        if not 0.0 <= amplitude < 1.0:
            raise ValidationError(
                f"amplitude must be in [0, 1), got {amplitude}"
            )
        if mean_rate <= 0 or period <= 0:
            raise ValidationError("mean_rate and period must be > 0")
        two_pi = 2.0 * np.pi

        def rate(t: float) -> float:
            return mean_rate * (1.0 + amplitude * np.sin(two_pi * t / period))

        return cls(rate, mean_rate * (1.0 + amplitude), rng, **kwargs)

    def start(self, sim: Simulator, sink: BatchSink) -> None:
        if self._running:
            raise ValidationError("arrival process already started")
        self._sim = sim
        self._sink = sink
        self._running = True
        self._schedule_candidate()

    def stop(self) -> None:
        self._running = False

    def _schedule_candidate(self) -> None:
        assert self._sim is not None
        gap = float(self._rng.exponential(1.0 / self._max_rate))
        self._sim.schedule(gap, self._candidate)

    def _candidate(self) -> None:
        if not self._running:
            return
        assert self._sim is not None and self._sink is not None
        now = self._sim.now
        instantaneous = float(self._rate(now))
        if instantaneous < 0:
            raise ValidationError(f"rate function went negative at t={now}")
        if instantaneous > self._max_rate * (1.0 + 1e-9):
            raise ValidationError(
                f"rate {instantaneous} exceeds max_rate {self._max_rate}"
            )
        if self._rng.random() < instantaneous / self._max_rate:
            size = int(self._batch_size.sample(self._rng))
            self._sink(now, size)
        self._schedule_candidate()


class TraceReplay:
    """Replays a recorded (timestamp, batch-size) trace into the engine."""

    def __init__(self, batches: Sequence[Batch]) -> None:
        self._batches = sorted(batches, key=lambda b: b.time)
        if any(b.size < 1 for b in self._batches):
            raise ValidationError("batch sizes must be >= 1")

    def start(self, sim: Simulator, sink: BatchSink) -> None:
        """Schedule the whole trace as one event batch.

        The records are already sorted, so the trace rides a single
        scheduler entry (:meth:`Simulator.schedule_batch`) instead of
        one event object per record — replaying a million-record trace
        allocates O(1) scheduler state.
        """
        batches = self._batches
        if not batches:
            return
        sim.schedule_batch(
            [batch.time for batch in batches],
            lambda i: sink(batches[i].time, batches[i].size),
        )

    def __len__(self) -> int:
        return len(self._batches)
