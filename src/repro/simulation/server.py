"""Simulated Memcached server: a FIFO queue with pluggable service times.

Keys enter (possibly in batches), wait FIFO, and are served one at a
time; per-key wait and sojourn are reported to a completion callback.
The exponential-service default matches the paper's model, and any
:class:`~repro.distributions.Distribution` can be substituted for
model-robustness ablations.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable, Deque, Optional

import numpy as np

from ..distributions import Distribution, Exponential, RandomWindow
from ..errors import SimulationError, ValidationError
from ..observability import MetricsRegistry
from .engine import Simulator
from .metrics import UtilizationMeter


@dataclasses.dataclass
class KeyJob:
    """One key's passage through a server queue.

    ``abandoned`` marks a job cancelled by a client-side policy (timeout
    or cancel-on-winner): a queued abandoned job is dropped when it
    reaches the head without consuming service capacity; one already in
    service runs out (the server cannot un-serve it) but is reported
    with the flag set so sinks can ignore it.
    """

    key_id: int
    arrival_time: float
    batch_id: int
    position_in_batch: int
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    context: object = None
    abandoned: bool = False

    @property
    def wait(self) -> float:
        if self.start_time is None:
            raise ValidationError("job has not started service")
        return self.start_time - self.arrival_time

    @property
    def sojourn(self) -> float:
        if self.finish_time is None:
            raise ValidationError("job has not finished service")
        return self.finish_time - self.arrival_time


#: Completion callback: receives the finished job.
CompletionSink = Callable[[KeyJob], None]

#: Fault hooks: time -> service-rate multiplier / pause-end instant.
RateFactor = Callable[[float], float]
PauseUntil = Callable[[float], float]


class ServerSim:
    """FIFO single-server queue living on the event engine."""

    def __init__(
        self,
        sim: Simulator,
        service: Distribution,
        rng: np.random.Generator,
        *,
        name: str = "server",
        on_complete: Optional[CompletionSink] = None,
        metrics: Optional[MetricsRegistry] = None,
        rate_factor: Optional[RateFactor] = None,
        pause_until: Optional[PauseUntil] = None,
        trace: Optional[list] = None,
        rng_window: Optional[int] = None,
    ) -> None:
        self._sim = sim
        self._service = service
        self._rng = rng
        # Service times come from a pre-drawn window: one vectorized
        # draw per refill instead of one Generator call per job. The
        # sample_window contract keeps the value sequence bit-identical
        # to the scalar calls it replaced, for every window size.
        self._service_window = RandomWindow.from_distribution(
            service, rng, size=rng_window
        )
        self.name = name
        self._on_complete = on_complete
        # Timeline sink: ``(arrival, service_start, finish)`` per served
        # job, consumed by TimelineBuilder.stage_sink. Abandoned jobs
        # that reached service are included — they consumed capacity.
        # The bound append keeps the per-job cost to one call.
        self._trace = trace
        self._trace_append = trace.append if trace is not None else None
        # Fault hooks. ``rate_factor(t)`` scales the service *rate* for
        # jobs starting at t (a sampled service time is divided by it);
        # ``pause_until(t)`` returns when a pause covering t lifts (t
        # itself when unpaused) — paused servers start no new service,
        # in-flight service finishes (the GC-pause model).
        self._rate_factor = rate_factor
        self._pause_until = pause_until
        self._pause_pending = False
        self._queue: Deque[KeyJob] = collections.deque()
        self._busy = False
        self._next_key_id = 0
        self._next_batch_id = 0
        self._completed = 0
        self.utilization_meter = UtilizationMeter()
        # Optional per-queue observability: wait/service distributions
        # and the queue depth each arriving key sees (Little's-Law
        # auditing à la Hill's queue-level counters).
        if metrics is not None:
            self._hist_wait = metrics.histogram(f"{name}.wait")
            self._hist_service = metrics.histogram(f"{name}.service")
            self._hist_depth = metrics.histogram(f"{name}.queue_depth", min_value=1.0)
            self._ctr_arrivals = metrics.counter(f"{name}.arrivals")
        else:
            self._hist_wait = None
            self._hist_service = None
            self._hist_depth = None
            self._ctr_arrivals = None

    @classmethod
    def exponential(
        cls,
        sim: Simulator,
        service_rate: float,
        rng: np.random.Generator,
        **kwargs: object,
    ) -> "ServerSim":
        """The paper's server: ``Exp(muS)`` per-key service."""
        return cls(sim, Exponential(service_rate), rng, **kwargs)

    # ------------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Keys waiting (excluding the one in service)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def completed(self) -> int:
        return self._completed

    def offer_batch(self, now: float, size: int, *, contexts: Optional[list] = None) -> list[KeyJob]:
        """Enqueue a batch of ``size`` keys arriving together at ``now``."""
        if size < 1:
            raise ValidationError(f"batch size must be >= 1, got {size}")
        if contexts is not None and len(contexts) != size:
            raise ValidationError("contexts must match the batch size")
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        if self._ctr_arrivals is not None:
            self._ctr_arrivals.inc(size)
        jobs = []
        for position in range(size):
            if self._hist_depth is not None:
                # Jobs ahead of this key: queued + the one in service.
                self._hist_depth.record(len(self._queue) + (1 if self._busy else 0))
            job = KeyJob(
                key_id=self._next_key_id,
                arrival_time=now,
                batch_id=batch_id,
                position_in_batch=position + 1,
                context=contexts[position] if contexts is not None else None,
            )
            self._next_key_id += 1
            self._queue.append(job)
            jobs.append(job)
        if not self._busy:
            self._start_next()
        return jobs

    def offer_key(self, now: float, *, context: object = None) -> KeyJob:
        """Enqueue a single key (batch of one)."""
        return self.offer_batch(now, 1, contexts=[context])[0]

    # ------------------------------------------------------------------

    def _start_next(self) -> None:
        if self._busy:
            raise SimulationError(f"{self.name}: server already busy")
        # Abandoned jobs are dropped at the head: a cancelled key that
        # never reached service consumes no capacity.
        while self._queue and self._queue[0].abandoned:
            self._queue.popleft()
        if not self._queue:
            return
        if self._pause_until is not None:
            resume = self._pause_until(self._sim.now)
            if resume > self._sim.now:
                if not self._pause_pending:
                    self._pause_pending = True
                    self._sim.schedule(
                        resume - self._sim.now, self._resume_from_pause
                    )
                return
        job = self._queue.popleft()
        self._busy = True
        self.utilization_meter.server_started(self._sim.now)
        job.start_time = self._sim.now
        service_time = self._service_window.get()
        if self._rate_factor is not None:
            factor = self._rate_factor(self._sim.now)
            if factor != 1.0:
                service_time /= factor
        self._sim.schedule(service_time, lambda: self._finish(job))

    def _resume_from_pause(self) -> None:
        self._pause_pending = False
        if not self._busy:
            self._start_next()

    def _finish(self, job: KeyJob) -> None:
        job.finish_time = self._sim.now
        self._busy = False
        self.utilization_meter.server_stopped(self._sim.now)
        self._completed += 1
        if self._hist_wait is not None:
            self._hist_wait.record(job.wait)
            self._hist_service.record(job.finish_time - job.start_time)
        if self._trace_append is not None:
            self._trace_append(
                (job.arrival_time, job.start_time, job.finish_time)
            )
        if self._on_complete is not None:
            self._on_complete(job)
        self._start_next()
