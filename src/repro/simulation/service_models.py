"""Service-time models beyond the exponential assumption.

The paper assumes ``Exp(muS)`` per-key service. In a real server the
time to serve a key is closer to ``overhead + value_bytes / bandwidth``:
a fixed parse/lookup cost plus a size-proportional transfer term.
:class:`SizeDependentService` materializes that as a
:class:`~repro.distributions.Distribution`, so it plugs straight into
:class:`~repro.simulation.server.ServerSim` and the M/G/1 analysis —
letting users quantify how much the exponential idealization distorts
latency for their size mix.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..distributions import Distribution, require_positive
from ..errors import ValidationError


class SizeDependentService(Distribution):
    """Per-key service time ``overhead + size / bandwidth``.

    Parameters
    ----------
    size_distribution:
        Value-size law in bytes (e.g. the Facebook/ETC value sizes).
    bandwidth_bytes_per_sec:
        Memory/NIC drain rate of the server.
    overhead:
        Fixed per-key cost (hashing, parsing, lookup) in seconds.
    """

    def __init__(
        self,
        size_distribution: Distribution,
        bandwidth_bytes_per_sec: float,
        *,
        overhead: float = 0.0,
    ) -> None:
        self._sizes = size_distribution
        self._bandwidth = require_positive(
            "bandwidth_bytes_per_sec", bandwidth_bytes_per_sec
        )
        overhead = float(overhead)
        if overhead < 0:
            raise ValidationError(f"overhead must be >= 0, got {overhead}")
        self._overhead = overhead

    @classmethod
    def matching_rate(
        cls,
        size_distribution: Distribution,
        service_rate: float,
        *,
        overhead_fraction: float = 0.5,
    ) -> "SizeDependentService":
        """Calibrate so the *mean* service time equals ``1 / service_rate``.

        ``overhead_fraction`` of the mean budget goes to the fixed cost,
        the rest to the size-proportional term — a convenient way to
        compare like-for-like against the paper's ``Exp(muS)``.
        """
        require_positive("service_rate", service_rate)
        if not 0.0 <= overhead_fraction < 1.0:
            raise ValidationError(
                f"overhead_fraction must be in [0, 1), got {overhead_fraction}"
            )
        mean_budget = 1.0 / service_rate
        overhead = overhead_fraction * mean_budget
        transfer_budget = mean_budget - overhead
        bandwidth = size_distribution.mean / transfer_budget
        return cls(size_distribution, bandwidth, overhead=overhead)

    @property
    def overhead(self) -> float:
        return self._overhead

    @property
    def bandwidth(self) -> float:
        return self._bandwidth

    @property
    def mean(self) -> float:
        return self._overhead + self._sizes.mean / self._bandwidth

    @property
    def variance(self) -> float:
        return self._sizes.variance / (self._bandwidth**2)

    def cdf(self, t: float) -> float:
        if t < self._overhead:
            return 0.0
        return self._sizes.cdf((t - self._overhead) * self._bandwidth)

    def pdf(self, t: float) -> float:
        if t < self._overhead:
            return 0.0
        return self._sizes.pdf((t - self._overhead) * self._bandwidth) * self._bandwidth

    def quantile(self, k: float) -> float:
        return self._overhead + self._sizes.quantile(k) / self._bandwidth

    def laplace(self, s: float) -> float:
        if s < 0:
            raise ValidationError(f"LST argument must be >= 0, got {s}")
        # E[e^{-s(o + X/B)}] = e^{-s o} * L_X(s / B).
        return math.exp(-s * self._overhead) * self._sizes.laplace(
            s / self._bandwidth
        )

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        sizes = self._sizes.sample(rng, size)
        return self._overhead + np.asarray(sizes, dtype=float) / self._bandwidth


def exponential_assumption_error(
    service: Distribution, arrival_rate: float
) -> float:
    """How wrong is the exponential-service idealization for this mix?

    Compares M/G/1 (true service law) with M/M/1 at the matched mean via
    Pollaczek-Khinchine: the wait ratio is ``(1 + cv2) / 2``. Returns
    that ratio — 1.0 means the exponential assumption is exact, < 1
    means it *overestimates* delay (smooth service), > 1 underestimates
    (heavy-tailed sizes).
    """
    require_positive("arrival_rate", arrival_rate)
    cv2 = service.cv2
    if not math.isfinite(cv2):
        return math.inf
    return (1.0 + cv2) / 2.0
