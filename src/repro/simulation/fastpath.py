"""Vectorized fast-path simulator for the paper's validation sweeps.

The event engine is general but pays per-event Python overhead. The
validation figures need millions of per-key latencies across dozens of
parameter points, so this module simulates the GI^X/M/1 server with a
vectorized Lindley recursion::

    W_n = C_n - min_{0<=k<=n} C_k,   C_n = sum_{j<n} (S_j - G_{j+1})

(batch waits), then reconstructs per-key latencies as the batch wait
plus the within-batch partial service sums — exactly the process the
paper's model describes, at numpy speed.

Request-level latencies (the fork-join max over N keys spread across
servers by shares ``{p_j}``, plus database misses) are sampled from the
per-server latency pools, mirroring how the paper aggregates per-key
measurements into end-user latencies.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

import numpy as np

from ..core.workload import WorkloadPattern
from ..errors import StabilityError, ValidationError


def lindley_waits(service_times: np.ndarray, gaps: np.ndarray) -> np.ndarray:
    """Vectorized Lindley recursion: FIFO waits of ``n`` arrivals.

    ``service_times`` holds the ``n`` per-arrival service requirements
    and ``gaps`` the ``n - 1`` inter-arrival gaps between consecutive
    arrivals. Uses the prefix-minimum identity::

        W_n = C_n - min_{0<=k<=n} C_k,   C_n = sum_{j<n} (S_j - G_{j+1})

    which replaces the sequential ``W_{n+1} = max(0, W_n + S_n - G_{n+1})``
    with two cumulative scans.
    """
    u = service_times[:-1] - gaps
    c = np.concatenate(([0.0], np.cumsum(u)))
    waits = c - np.minimum.accumulate(np.concatenate(([0.0], c))[:-1])
    return np.maximum(waits, 0.0)


def simulate_key_latencies(
    workload: WorkloadPattern,
    service_rate: float,
    *,
    n_keys: int,
    rng: np.random.Generator,
    warmup_fraction: float = 0.05,
) -> np.ndarray:
    """Per-key sojourn times at one GI^X/M/1 Memcached server.

    Simulates enough batches to yield ``n_keys`` post-warmup keys. The
    initial ``warmup_fraction`` of batches is discarded so the sample
    approximates stationarity.
    """
    if n_keys < 1:
        raise ValidationError(f"n_keys must be >= 1, got {n_keys}")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValidationError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    rho = workload.utilization(service_rate)
    if rho >= 1.0:
        raise StabilityError(rho)

    mean_batch = workload.mean_batch_size
    # 5% headroom over the expected batch count so random batch sizes
    # almost never undershoot the requested key count; the tail below
    # truncates any excess.
    n_batches = (
        int(math.ceil(1.05 * n_keys / mean_batch / (1.0 - warmup_fraction))) + 64
    )

    gap_dist = workload.batch_gap_distribution()
    size_dist = workload.batch_size_distribution()
    gaps = np.asarray(gap_dist.sample(rng, n_batches), dtype=float)
    sizes = np.asarray(size_dist.sample(rng, n_batches), dtype=np.int64)
    total_keys = int(sizes.sum())
    services = rng.exponential(1.0 / service_rate, size=total_keys)

    # Batch service totals.
    starts = np.zeros(n_batches, dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    batch_service = np.add.reduceat(services, starts)

    waits = lindley_waits(batch_service, gaps[1:])

    # Per-key latency: batch wait + within-batch inclusive service prefix.
    cumulative = np.cumsum(services)
    before_batch = cumulative[starts] - services[starts]
    within = cumulative - np.repeat(before_batch, sizes)
    latencies = np.repeat(waits, sizes) + within

    warmup_keys = int(sizes[: int(n_batches * warmup_fraction)].sum())
    usable = latencies[warmup_keys:]
    if usable.size < n_keys:  # pragma: no cover - sizing margin is generous
        return usable
    return usable[:n_keys]


def simulate_batch_times(
    workload: WorkloadPattern,
    service_rate: float,
    *,
    n_batches: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Batch (wait, completion) pairs — validates paper eqs. (4)-(5).

    Returns two arrays: the queueing time ``TQ`` and the completion time
    ``TC`` of each simulated batch.
    """
    if n_batches < 1:
        raise ValidationError(f"n_batches must be >= 1, got {n_batches}")
    rho = workload.utilization(service_rate)
    if rho >= 1.0:
        raise StabilityError(rho)
    gap_dist = workload.batch_gap_distribution()
    size_dist = workload.batch_size_distribution()
    gaps = np.asarray(gap_dist.sample(rng, n_batches), dtype=float)
    sizes = np.asarray(size_dist.sample(rng, n_batches), dtype=np.int64)
    batch_service = rng.gamma(shape=sizes.astype(float), scale=1.0 / service_rate)
    waits = lindley_waits(batch_service, gaps[1:])
    return waits, waits + batch_service


@dataclasses.dataclass(frozen=True)
class RequestSample:
    """Monte-Carlo end-user request latencies and their decomposition."""

    total: np.ndarray
    server_max: np.ndarray
    database_max: np.ndarray
    network: float

    @property
    def n_requests(self) -> int:
        return int(self.total.size)


def sample_request_latencies(
    server_pools: Sequence[np.ndarray],
    shares: Sequence[float],
    *,
    n_keys: int,
    n_requests: int,
    rng: np.random.Generator,
    network_delay: float = 0.0,
    miss_ratio: float = 0.0,
    database_rate: Optional[float] = None,
    database_utilization: float = 0.0,
) -> RequestSample:
    """Fork-join request latencies from per-server key-latency pools.

    Each request draws N keys, spreads them over servers multinomially
    with probabilities ``shares``, samples each key's server latency
    from that server's pool, applies Bernoulli(r) misses with
    ``Exp((1-rho_D) muD)`` database sojourns, and takes the max (paper
    §4.1): ``T = max_i(n_i + s_i + d_i)`` with constant network ``n``.
    """
    shares_arr = np.asarray(shares, dtype=float)
    if len(server_pools) != shares_arr.size:
        raise ValidationError("server_pools and shares must align")
    if not math.isclose(float(shares_arr.sum()), 1.0, rel_tol=1e-9):
        raise ValidationError("shares must sum to 1")
    if n_keys < 1 or n_requests < 1:
        raise ValidationError("n_keys and n_requests must be >= 1")
    if not 0.0 <= miss_ratio <= 1.0:
        raise ValidationError(f"miss_ratio must be in [0, 1], got {miss_ratio}")
    if miss_ratio > 0.0 and database_rate is None:
        raise ValidationError("database_rate is required when miss_ratio > 0")
    pools = [np.asarray(pool, dtype=float) for pool in server_pools]
    if any(pool.size == 0 for pool in pools):
        raise ValidationError("every server pool must be non-empty")

    total_keys = n_keys * n_requests
    server_of_key = rng.choice(shares_arr.size, size=total_keys, p=shares_arr)
    # One vectorized index draw for every key at once — `high` varies
    # per key with its pool's size — then a single gather from the
    # concatenated pools. Replaces the per-pool boolean-mask loop,
    # which scanned all `total_keys` entries once per server.
    pool_sizes = np.array([pool.size for pool in pools], dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(pool_sizes[:-1])))
    merged = pools[0] if len(pools) == 1 else np.concatenate(pools)
    within = rng.integers(0, pool_sizes[server_of_key])
    latencies = merged[offsets[server_of_key] + within]

    server_component = latencies.reshape(n_requests, n_keys)
    database_component = np.zeros_like(server_component)
    if miss_ratio > 0.0:
        miss_mask = rng.random(server_component.shape) < miss_ratio
        n_misses = int(miss_mask.sum())
        if n_misses:
            effective = (1.0 - database_utilization) * float(database_rate)
            database_component[miss_mask] = rng.exponential(
                1.0 / effective, size=n_misses
            )

    per_key_total = server_component + database_component
    return RequestSample(
        total=per_key_total.max(axis=1) + network_delay,
        server_max=server_component.max(axis=1),
        database_max=database_component.max(axis=1),
        network=float(network_delay),
    )


def sample_timeline(
    sample: "RequestSample",
    *,
    request_rate: float,
    rng: np.random.Generator,
    timeline: object = True,
) -> "Timeline":
    """Windowed telemetry for a stationary pool-sampled request batch.

    The pool sampler draws request latencies without a timeline of its
    own (samples are exchangeable, not time-ordered), so this lays them
    on a synthetic Poisson arrival process at ``request_rate`` — valid
    precisely because the sample *is* stationary — and buckets the
    resulting (born, completed) pairs into the shared
    :class:`~repro.observability.timeline.Timeline` schema. No per-stage
    series: the pool sampler does not track queue occupancy.
    """
    from ..observability.timeline import Timeline, TimelineSpec

    if request_rate <= 0:
        raise ValidationError(f"request_rate must be > 0, got {request_rate}")
    spec = TimelineSpec.coerce(timeline)
    if spec is None:
        spec = TimelineSpec.coerce(True)
    totals = np.asarray(sample.total, dtype=float)
    born = np.cumsum(rng.exponential(1.0 / request_rate, size=totals.size))
    completed = born + totals
    end = float(completed.max()) if completed.size else 1.0
    return Timeline.from_events(
        start=0.0,
        end=end,
        request_born=born,
        request_completed=completed,
        request_total=totals,
        stages={},
        spec=spec,
        meta={"backend": "fastpath", "synthetic_arrivals": True},
    )


def expected_max_from_pool(pool: np.ndarray, n: float) -> float:
    """Exact ``E[max of n iid draws]`` from an empirical sample.

    For a sorted pool ``x_(1) <= ... <= x_(M)`` with empirical CDF
    ``F(x_(i)) = i/M``, the max of ``n`` draws equals ``x_(i)`` with
    probability ``(i/M)^n - ((i-1)/M)^n``; the expectation is the
    corresponding weighted sum. Removes the Monte-Carlo resampling layer
    entirely — the only randomness left is the pool itself.
    """
    data = np.sort(np.asarray(pool, dtype=float))
    if data.size == 0:
        raise ValidationError("pool must be non-empty")
    if n <= 0:
        raise ValidationError(f"n must be > 0, got {n}")
    grid = np.arange(data.size + 1, dtype=float) / data.size
    weights = np.diff(grid**float(n))
    return float(np.dot(weights, data))


def expected_max_from_pools(
    pools: Sequence[np.ndarray], shares: Sequence[float], n: float
) -> float:
    """Exact ``E[max of n draws]`` when each draw picks pool ``j`` w.p.
    ``shares[j]`` — the fork-join max across unbalanced servers.

    Builds the share-weighted mixture CDF over the merged support and
    integrates ``1 - F_mix(t)^n`` as a sum over steps.
    """
    share_arr = np.asarray(shares, dtype=float)
    if len(pools) != share_arr.size:
        raise ValidationError("pools and shares must align")
    if not math.isclose(float(share_arr.sum()), 1.0, rel_tol=1e-9):
        raise ValidationError("shares must sum to 1")
    if n <= 0:
        raise ValidationError(f"n must be > 0, got {n}")
    values = []
    weights = []
    for pool, share in zip(pools, share_arr):
        data = np.asarray(pool, dtype=float)
        if data.size == 0:
            raise ValidationError("every pool must be non-empty")
        values.append(data)
        weights.append(np.full(data.size, share / data.size))
    merged = np.concatenate(values)
    weight = np.concatenate(weights)
    order = np.argsort(merged)
    merged = merged[order]
    cdf = np.cumsum(weight[order])
    cdf = np.minimum(cdf / cdf[-1], 1.0)
    cdf_pow = cdf**float(n)
    step = np.diff(np.concatenate(([0.0], cdf_pow)))
    return float(np.dot(step, merged))


def simulate_server_stage_mean(
    workload: WorkloadPattern,
    service_rate: float,
    *,
    n_keys_per_request: int,
    rng: np.random.Generator,
    pool_size: int = 200_000,
    shares: Optional[Sequence[float]] = None,
) -> float:
    """Measured ``E[TS(N)]`` for a (possibly unbalanced) cluster.

    Convenience wrapper used by the figure benches: simulate per-server
    latency pools (each server at its share of the total rate described
    by ``workload``'s rate, split via ``shares``; balanced single pool
    when shares are omitted) and take the *exact* expected fork-join max
    over the empirical pools — no Monte-Carlo resampling noise.
    """
    if shares is None:
        pool = simulate_key_latencies(
            workload, service_rate, n_keys=pool_size, rng=rng
        )
        # Balanced cluster: every server is statistically identical, so a
        # single pool sampled N times is equivalent and much cheaper.
        return expected_max_from_pool(pool, n_keys_per_request)
    share_vec = list(shares)
    pools = []
    for share in share_vec:
        server_workload = workload.with_rate(workload.rate * float(share))
        pools.append(
            simulate_key_latencies(
                server_workload, service_rate, n_keys=pool_size, rng=rng
            )
        )
    return expected_max_from_pools(pools, share_vec, n_keys_per_request)
