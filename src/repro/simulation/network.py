"""Network stage for the simulator.

The paper treats the network as a constant delay (utilization < 10%, no
queueing); :class:`NetworkSim` models it as a pure delay element, with
an optional random distribution for sensitivity studies.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..distributions import Deterministic, Distribution, RandomWindow
from ..errors import ValidationError
from .engine import Simulator


class NetworkSim:
    """Delay element: delivers payloads after a (usually constant) delay."""

    def __init__(
        self,
        sim: Simulator,
        delay: Distribution,
        rng: Optional[np.random.Generator] = None,
        *,
        rng_window: Optional[int] = None,
    ) -> None:
        self._sim = sim
        self._delay = delay
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # The paper's network is a constant delay: skip the distribution
        # machinery entirely on that path (no RNG is consumed either
        # way — Deterministic.sample ignores its generator). Random
        # delays go through a pre-drawn window like every other stream.
        if isinstance(delay, Deterministic):
            self._constant: Optional[float] = float(delay.mean)
            self._window: Optional[RandomWindow] = None
        else:
            self._constant = None
            self._window = RandomWindow.from_distribution(
                delay, self._rng, size=rng_window
            )
        self._delivered = 0

    @classmethod
    def constant(cls, sim: Simulator, delay: float) -> "NetworkSim":
        """The paper's constant-latency network (eq. (2))."""
        if delay < 0:
            raise ValidationError(f"delay must be >= 0, got {delay}")
        return cls(sim, Deterministic(delay))

    @property
    def delivered(self) -> int:
        return self._delivered

    @property
    def mean_delay(self) -> float:
        return self._delay.mean

    def send(self, deliver: Callable[[], None]) -> float:
        """Schedule ``deliver`` after one sampled network delay.

        Returns the sampled delay so callers can account it per key.
        """
        constant = self._constant
        delay = constant if constant is not None else self._window.get()
        self._delivered += 1
        self._sim.schedule(delay, deliver)
        return delay
