"""Network stage for the simulator.

The paper treats the network as a constant delay (utilization < 10%, no
queueing); :class:`NetworkSim` models it as a pure delay element, with
an optional random distribution for sensitivity studies.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..distributions import Deterministic, Distribution
from ..errors import ValidationError
from .engine import Simulator


class NetworkSim:
    """Delay element: delivers payloads after a (usually constant) delay."""

    def __init__(
        self,
        sim: Simulator,
        delay: Distribution,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._sim = sim
        self._delay = delay
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._delivered = 0

    @classmethod
    def constant(cls, sim: Simulator, delay: float) -> "NetworkSim":
        """The paper's constant-latency network (eq. (2))."""
        if delay < 0:
            raise ValidationError(f"delay must be >= 0, got {delay}")
        return cls(sim, Deterministic(delay))

    @property
    def delivered(self) -> int:
        return self._delivered

    @property
    def mean_delay(self) -> float:
        return self._delay.mean

    def send(self, deliver: Callable[[], None]) -> float:
        """Schedule ``deliver`` after one sampled network delay.

        Returns the sampled delay so callers can account it per key.
        """
        delay = float(self._delay.sample(self._rng))
        self._delivered += 1
        self._sim.schedule(delay, deliver)
        return delay
