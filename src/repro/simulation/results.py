"""Typed simulation results shared by every simulator entry point.

Historically ``estimate`` returned a typed
:class:`~repro.core.latency.LatencyEstimate` while the event-driven and
fast-path simulators handed back ad-hoc recorder bundles and numpy
arrays, so every comparison script re-invented the same key juggling.
:class:`SimulationResult` is the common shape: one
:class:`StageStats` per stage (``total``, ``server``, ``database``,
``network``) with the same field names everywhere (``mean``, ``p50``,
``p95``, ``p99``), a ``breakdown()`` whose keys match
:meth:`LatencyEstimate.breakdown`, and a JSON round trip for
checkpointing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..observability.attribution import AttributionSet
from ..observability.timeline import Timeline
from .metrics import LatencyRecorder

__all__ = ["StageStats", "SimulationResult"]


@dataclasses.dataclass(frozen=True)
class StageStats:
    """Summary statistics of one latency stage (all times in seconds)."""

    count: int
    mean: float
    std: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    @classmethod
    def empty(cls) -> "StageStats":
        return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    @classmethod
    def from_recorder(cls, recorder: LatencyRecorder) -> "StageStats":
        """Summarize a :class:`LatencyRecorder` (the event-sim path)."""
        if recorder.count == 0:
            return cls.empty()
        mean = recorder.mean
        if recorder.count >= 2:
            ci_low, ci_high = recorder.confidence_interval()
        else:
            ci_low = ci_high = mean
        p50, p95, p99 = recorder.quantiles([0.50, 0.95, 0.99])
        return cls(
            count=recorder.count,
            mean=mean,
            std=recorder.std,
            p50=p50,
            p95=p95,
            p99=p99,
            minimum=recorder.minimum,
            maximum=recorder.maximum,
            ci_low=ci_low,
            ci_high=ci_high,
        )

    @classmethod
    def from_samples(cls, values: Sequence[float]) -> "StageStats":
        """Summarize a raw latency array (the fast-path path)."""
        array = np.asarray(values, dtype=float).ravel()
        if array.size == 0:
            return cls.empty()
        recorder = LatencyRecorder()
        recorder.record_many(array)
        return cls.from_recorder(recorder)

    @property
    def ci(self) -> Tuple[float, float]:
        return self.ci_low, self.ci_high

    def to_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StageStats":
        try:
            return cls(**{f.name: payload[f.name] for f in dataclasses.fields(cls)})
        except KeyError as exc:
            raise ConfigError(f"stage stats missing key: {exc}") from exc


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """One simulation run, summarized with the estimate's vocabulary.

    ``total``/``server``/``database``/``network`` are the fork-join
    stages of paper eq. (1); ``server`` and ``database`` are the
    per-request maxima ``TS(N)``/``TD(N)``, matching what
    :meth:`LatencyModel.estimate` bounds.
    """

    n_keys: int
    n_requests: int
    total: StageStats
    server: StageStats
    database: StageStats
    network: StageStats
    measured_miss_ratio: float = 0.0
    server_utilizations: Tuple[float, ...] = ()
    #: Exact E[TS(N)] over the empirical latency pools (fast-path runs
    #: only) — the Monte-Carlo-noise-free statistic the figures plot.
    server_expected_max: Optional[float] = None
    #: Windowed telemetry (a Timeline) when the run recorded one.
    #: Excluded from equality: two runs are "the same result" when their
    #: summary statistics agree.
    timeline: Optional[object] = dataclasses.field(default=None, compare=False)
    #: Per-request stage attribution (an AttributionSet) when the run
    #: recorded one. Excluded from equality like the timeline.
    attribution: Optional[object] = dataclasses.field(
        default=None, compare=False
    )
    #: The backend's native result bundle (the event engine's
    #: ``SystemResults``) when one exists — run reports need its raw
    #: recorders (``per_key_server``, miss counts) that the summary
    #: statistics cannot reconstruct. Never serialized, never compared.
    raw: Optional[object] = dataclasses.field(
        default=None, compare=False, repr=False
    )

    # -- LatencyEstimate-compatible accessors --------------------------

    @property
    def mean(self) -> float:
        """Mean end-to-end request latency ``E[T(N)]``."""
        return self.total.mean

    @property
    def p50(self) -> float:
        return self.total.p50

    @property
    def p95(self) -> float:
        return self.total.p95

    @property
    def p99(self) -> float:
        return self.total.p99

    def breakdown(self) -> Dict[str, float]:
        """Per-stage means, keyed like :meth:`LatencyEstimate.breakdown`."""
        return {
            "network": self.network.mean,
            "servers": self.server.mean,
            "database": self.database.mean,
        }

    def stage(self, name: str) -> StageStats:
        stages = {
            "total": self.total,
            "server": self.server,
            "database": self.database,
            "network": self.network,
        }
        if name not in stages:
            raise ConfigError(f"unknown stage {name!r} (have {sorted(stages)})")
        return stages[name]

    # -- Constructors ---------------------------------------------------

    @classmethod
    def from_system(cls, results, *, n_keys: int) -> "SimulationResult":
        """Wrap :class:`~repro.simulation.system.SystemResults`."""
        return cls(
            n_keys=int(n_keys),
            n_requests=int(results.requests_completed),
            total=StageStats.from_recorder(results.total),
            server=StageStats.from_recorder(results.server_stage),
            database=StageStats.from_recorder(results.database_stage),
            network=StageStats.from_recorder(results.network_stage),
            measured_miss_ratio=float(results.measured_miss_ratio),
            server_utilizations=tuple(results.server_utilizations),
            timeline=getattr(results, "timeline", None),
            attribution=getattr(results, "attribution", None),
            raw=results,
        )

    @classmethod
    def from_sample(cls, sample, *, n_keys: int) -> "SimulationResult":
        """Wrap a fast-path :class:`~repro.simulation.fastpath.RequestSample`."""
        n_requests = sample.n_requests
        network = float(sample.network)
        constant_network = StageStats(
            count=n_requests,
            mean=network,
            std=0.0,
            p50=network,
            p95=network,
            p99=network,
            minimum=network,
            maximum=network,
            ci_low=network,
            ci_high=network,
        )
        return cls(
            n_keys=int(n_keys),
            n_requests=n_requests,
            total=StageStats.from_samples(sample.total),
            server=StageStats.from_samples(sample.server_max),
            database=StageStats.from_samples(sample.database_max),
            network=constant_network,
            timeline=getattr(sample, "timeline", None),
            attribution=getattr(sample, "attribution", None),
        )

    @classmethod
    def from_system_sample(cls, sample, *, n_keys: int) -> "SimulationResult":
        """Wrap a whole-system fast-path
        :class:`~repro.simulation.fastpath_system.SystemSample`."""
        base = cls.from_sample(sample, n_keys=n_keys)
        return dataclasses.replace(
            base,
            measured_miss_ratio=float(sample.measured_miss_ratio),
            server_utilizations=tuple(sample.server_utilizations),
        )

    # -- Persistence ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_keys": self.n_keys,
            "n_requests": self.n_requests,
            "total": self.total.to_dict(),
            "server": self.server.to_dict(),
            "database": self.database.to_dict(),
            "network": self.network.to_dict(),
            "measured_miss_ratio": self.measured_miss_ratio,
            "server_utilizations": list(self.server_utilizations),
            "server_expected_max": self.server_expected_max,
            "timeline": (
                self.timeline.to_dict() if self.timeline is not None else None
            ),
            "attribution": (
                self.attribution.to_dict()
                if self.attribution is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimulationResult":
        if not isinstance(payload, dict):
            raise ConfigError("simulation result must be a JSON object")
        try:
            return cls(
                n_keys=int(payload["n_keys"]),
                n_requests=int(payload["n_requests"]),
                total=StageStats.from_dict(payload["total"]),
                server=StageStats.from_dict(payload["server"]),
                database=StageStats.from_dict(payload["database"]),
                network=StageStats.from_dict(payload["network"]),
                measured_miss_ratio=float(payload.get("measured_miss_ratio", 0.0)),
                server_utilizations=tuple(
                    payload.get("server_utilizations") or ()
                ),
                server_expected_max=payload.get("server_expected_max"),
                timeline=(
                    Timeline.from_dict(payload["timeline"])
                    if payload.get("timeline") is not None
                    else None
                ),
                attribution=(
                    AttributionSet.from_dict(payload["attribution"])
                    if payload.get("attribution") is not None
                    else None
                ),
            )
        except KeyError as exc:
            raise ConfigError(f"simulation result missing key: {exc}") from exc
