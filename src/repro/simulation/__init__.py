"""Discrete-event and vectorized simulators (the testbed substitute).

* :class:`Simulator` — the event engine.
* :class:`MemcachedSystemSimulator` — closed-loop request -> keys ->
  servers -> (miss) -> database -> join.
* :mod:`repro.simulation.fastpath` — vectorized GI^X/M/1 Lindley
  simulation for the paper's validation sweeps.
"""

from .arrivals import (
    Batch,
    BatchArrivalProcess,
    PoissonProcess,
    TimeVaryingPoissonProcess,
    TraceReplay,
    generate_batches,
)
from .database import DatabaseSim
from .engine import EventHandle, Simulator
from .fastpath import (
    RequestSample,
    expected_max_from_pool,
    expected_max_from_pools,
    lindley_waits,
    sample_request_latencies,
    simulate_batch_times,
    simulate_key_latencies,
    simulate_server_stage_mean,
)
from .fastpath_system import SystemSample, simulate_system_requests
from .metrics import LatencyRecorder, SummaryStats, UtilizationMeter
from .network import NetworkSim
from .results import SimulationResult, StageStats
from .server import KeyJob, ServerSim
from .service_models import SizeDependentService, exponential_assumption_error
from .system import (
    BernoulliMissModel,
    CacheBackend,
    MemcachedSystemSimulator,
    SystemResults,
)

__all__ = [
    "Batch",
    "BatchArrivalProcess",
    "BernoulliMissModel",
    "CacheBackend",
    "DatabaseSim",
    "EventHandle",
    "KeyJob",
    "LatencyRecorder",
    "MemcachedSystemSimulator",
    "NetworkSim",
    "PoissonProcess",
    "RequestSample",
    "ServerSim",
    "SimulationResult",
    "SizeDependentService",
    "Simulator",
    "StageStats",
    "SummaryStats",
    "SystemResults",
    "SystemSample",
    "TimeVaryingPoissonProcess",
    "TraceReplay",
    "UtilizationMeter",
    "exponential_assumption_error",
    "expected_max_from_pool",
    "expected_max_from_pools",
    "generate_batches",
    "lindley_waits",
    "sample_request_latencies",
    "simulate_batch_times",
    "simulate_key_latencies",
    "simulate_server_stage_mean",
    "simulate_system_requests",
]
