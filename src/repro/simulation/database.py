"""Simulated back-end database: a single FIFO M/M/1-style queue.

Missed keys are relayed here (paper §3 enhancement 3). Service defaults
to exponential at rate ``muD``; the arrival process is whatever the
Memcached stage's miss stream produces — the paper argues it is
approximately Poisson, and the simulator lets tests check that claim
instead of assuming it.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..distributions import Distribution, Exponential
from ..observability import MetricsRegistry
from .engine import Simulator
from .server import KeyJob, ServerSim


class DatabaseSim(ServerSim):
    """A FIFO queue with exponential service — same machinery as a server.

    Subclassing :class:`ServerSim` keeps the queueing semantics
    identical; only the construction defaults differ.
    """

    def __init__(
        self,
        sim: Simulator,
        service_rate: float,
        rng: np.random.Generator,
        *,
        on_complete: Optional[Callable[[KeyJob], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
        rate_factor: Optional[Callable[[float], float]] = None,
        trace: Optional[list] = None,
        rng_window: Optional[int] = None,
    ) -> None:
        super().__init__(
            sim,
            Exponential(service_rate),
            rng,
            name="database",
            on_complete=on_complete,
            metrics=metrics,
            rate_factor=rate_factor,
            trace=trace,
            rng_window=rng_window,
        )

    @classmethod
    def with_service(
        cls,
        sim: Simulator,
        service: Distribution,
        rng: np.random.Generator,
        **kwargs: object,
    ) -> ServerSim:
        """A database with a non-exponential service law (ablations)."""
        return ServerSim(sim, service, rng, name="database", **kwargs)
