#!/usr/bin/env python
"""Diurnal load: provision to the peak, and the cliff makes it worse.

Production key rates follow daily curves. The cliff rule (paper §5.3
rule 1) interacts badly with that: a cluster sized so the *mean* load
sits comfortably below rhoS(xi) can spend hours past the cliff at peak.
This example

1. drives a simulated server with a sinusoidal-rate arrival process
   (Lewis-Shedler thinning) and shows per-phase latency,
2. compares the latency predicted by the naive mean-rate model against
   per-phase Theorem 1 evaluations,
3. computes the capacity needed so that even the PEAK stays below the
   cliff.

Run:  python examples/diurnal_provisioning.py
"""

import math

import numpy as np

from repro.core import ServerStage, WorkloadPattern
from repro.queueing import cliff_utilization
from repro.simulation import ServerSim, Simulator, TimeVaryingPoissonProcess
from repro.units import format_duration, kps


def main() -> None:
    rng = np.random.default_rng(9)
    mu_s = kps(80)
    mean_rate = kps(48)      # 60% mean utilization: "looks safe"
    amplitude = 0.35         # +-35% daily swing -> 81% at peak
    period = 60.0            # compressed "day" for the simulation

    cliff = cliff_utilization(0.0)  # Poisson process here, xi = 0
    print(f"Server: muS = 80 Kps, mean load 48 Kps (60%), "
          f"swing +-{amplitude:.0%}")
    print(f"Cliff utilization (xi = 0): {cliff:.0%}")
    print(f"Peak utilization: {(1 + amplitude) * 0.6:.0%}  <-- past the cliff")
    print()

    print("Simulating 10 'days' of sinusoidal load through one server...")
    sim = Simulator()
    records = []
    server = ServerSim.exponential(
        sim, mu_s, rng,
        on_complete=lambda job: records.append((job.arrival_time, job.sojourn)),
    )
    process = TimeVaryingPoissonProcess.sinusoidal(
        mean_rate, amplitude, period, rng
    )
    process.start(sim, lambda t, size: server.offer_batch(t, size))
    sim.run_until(10 * period)

    times = np.array([r[0] for r in records])
    sojourns = np.array([r[1] for r in records])
    phases = (times % period) / period

    print("\nPer-phase per-key latency (simulated vs per-phase M/M/1):")
    for lo, hi, label in [
        (0.125, 0.375, "peak  "),
        (0.375, 0.625, "fall  "),
        (0.625, 0.875, "trough"),
        (0.875, 1.125, "rise  "),
    ]:
        if hi <= 1.0:
            mask = (phases > lo) & (phases < hi)
        else:
            mask = (phases > lo) | (phases < hi - 1.0)
        measured = sojourns[mask].mean()
        mid_phase = (lo + hi) / 2 % 1.0
        rate = mean_rate * (1 + amplitude * math.sin(2 * math.pi * mid_phase))
        predicted = 1.0 / (mu_s - rate)
        print(f"  {label}: sim {format_duration(measured):>8}   "
              f"M/M/1 at phase rate {format_duration(predicted):>8}")

    naive = 1.0 / (mu_s - mean_rate)
    print(f"\nNaive mean-rate model: {format_duration(naive)} — "
          f"underestimates the peak by "
          f"{sojourns[(phases > 0.125) & (phases < 0.375)].mean() / naive:.1f}x")

    print("\nCapacity so the PEAK stays below the cliff:")
    needed = mean_rate * (1 + amplitude) / cliff
    print(f"  required muS >= {needed / 1e3:.0f} Kps "
          f"(vs 80 Kps for the mean-only rule at {cliff:.0%})")
    stage_ok = ServerStage(
        WorkloadPattern.poisson(mean_rate * (1 + amplitude)), needed
    )
    print(f"  at that capacity the peak-phase E[TS(150)] <= "
          f"{format_duration(stage_ok.mean_latency_bounds(150).upper)}")


if __name__ == "__main__":
    main()
