#!/usr/bin/env python
"""Calibrate the model from a raw arrival trace (paper §3 / §5.1).

Production operators do not know (lambda, xi, q) — they have packet or
log timestamps. This example:

1. generates a ground-truth key-arrival trace from the Facebook/ETC
   statistical model at one server;
2. fits the paper's workload model back from the raw timestamps
   (concurrency from sub-microsecond gaps, GPD burst degree by MLE);
3. feeds the *fitted* parameters into Theorem 1 and compares the latency
   prediction against the ground-truth parameters.

Run:  python examples/workload_fitting.py
"""

import numpy as np

from repro import ServerStage, WorkloadPattern
from repro.units import kps, to_usec
from repro.workloads import FacebookWorkload, KeyTrace


def main() -> None:
    rng = np.random.default_rng(7)
    truth = FacebookWorkload.build(rate=kps(40), xi=0.15, q=0.1)

    print("Generating 30 seconds of key arrivals at one server...")
    timestamps = truth.generate_key_timestamps(30.0, rng)
    trace = KeyTrace(timestamps=np.sort(timestamps))
    print(f"  {trace.n_keys} keys, mean rate {trace.mean_rate/1e3:.1f} Kps")
    print()

    fit = trace.fit_workload()
    print("Fitted workload model vs ground truth:")
    print(f"  rate : {fit.rate/1e3:7.2f} Kps   (truth {truth.pattern.rate/1e3:.2f})")
    print(f"  xi   : {fit.xi:7.3f}       (truth {truth.pattern.xi})")
    print(f"  q    : {fit.q:7.3f}       (truth {truth.pattern.q})")
    print()

    service_rate = kps(80)
    fitted_stage = ServerStage(
        WorkloadPattern(rate=fit.rate, xi=fit.xi, q=fit.q), service_rate
    )
    truth_stage = ServerStage(truth.pattern, service_rate)
    n = 150
    fitted_bounds = fitted_stage.mean_latency_bounds(n)
    truth_bounds = truth_stage.mean_latency_bounds(n)
    print(f"Theorem 1 E[TS({n})] from the fit vs the truth:")
    print(
        f"  fitted : [{to_usec(fitted_bounds.lower):.0f}, "
        f"{to_usec(fitted_bounds.upper):.0f}] us "
        f"(delta = {fitted_stage.delta:.3f})"
    )
    print(
        f"  truth  : [{to_usec(truth_bounds.lower):.0f}, "
        f"{to_usec(truth_bounds.upper):.0f}] us "
        f"(delta = {truth_stage.delta:.3f})"
    )
    print()

    # Persist and reload the trace, as an operator pipeline would.
    path = "/tmp/repro_example_trace.csv"
    trace.save_csv(path)
    reloaded = KeyTrace.load_csv(path)
    print(f"Trace round-tripped through {path}: {reloaded.n_keys} keys")
    print()

    print("Is the trace Poisson? (KS distance from exponential gaps)")
    from repro.distributions import lilliefors_exponential_distance

    distance = lilliefors_exponential_distance(trace.gaps())
    print(f"  KS distance = {distance:.3f} "
          f"({'bursty — use the GPD model' if distance > 0.02 else 'close to Poisson'})")


if __name__ == "__main__":
    main()
