#!/usr/bin/env python
"""Quickstart: estimate Memcached request latency with Theorem 1.

Builds the paper's §5.1 configuration — the Facebook workload hitting a
Memcached server at 78% utilization with a 1% miss ratio — and prints
the end-user latency bounds for a 150-key request, the per-stage
breakdown, and a couple of what-if variations.

Run:  python examples/quickstart.py
"""

from repro import LatencyModel, WorkloadPattern
from repro.units import format_duration, kps, msec, usec


def main() -> None:
    workload = WorkloadPattern.facebook()  # 62.5 Kps, xi=0.15, q=0.1
    model = LatencyModel.build(
        workload=workload,
        service_rate=kps(80),      # muS measured by the paper
        network_delay=usec(20),    # constant network latency
        database_rate=1 / msec(1), # 1 ms mean DB service
        miss_ratio=0.01,
    )

    estimate = model.estimate(150)
    print("Paper §5.1 configuration, N = 150 keys per request")
    print(f"  {estimate}")
    print(f"  dominant stage : {estimate.dominant_stage}")
    print(f"  server delta   : {model.server_stage.delta:.4f}")
    print(f"  utilization    : {model.server_stage.utilization:.1%}")
    print()

    print("What-if: halve the number of keys per request (N = 75)")
    print(f"  {model.estimate(75)}")
    print()

    print("What-if: eliminate cache misses entirely (r = 0)")
    no_miss = LatencyModel.build(
        workload=workload, service_rate=kps(80), network_delay=usec(20)
    )
    print(f"  {no_miss.estimate(150)}")
    print()

    print("Latency growth in N is logarithmic (paper Figs. 12-13):")
    for n in (10, 100, 1000, 10_000):
        upper = model.estimate(n).total_upper
        print(f"  N = {n:>6}: T(N) <= {format_duration(upper)}")


if __name__ == "__main__":
    main()
