#!/usr/bin/env python
"""Failure injection: a node crash, the miss storm, and the recovery.

The paper's model treats the miss ratio r as a constant — here we watch
what happens when it is not. A 4-node cluster serves Zipf traffic at
steady state; node 0 crashes; the consistent-hash ring remaps its key
range to the survivors, which miss until demand-filled. We track the
windowed miss ratio through the event and translate the spike into
database latency with Theorem 1 part 3.

Also shown: the scale-out analogue (a cold node joins) and why
consistent hashing bounds both storms to ~1/M of traffic, where the
modulo baseline would remap nearly everything.

Run:  python examples/failure_recovery.py
"""

import numpy as np

from repro.core import DatabaseStage
from repro.distributions import Zipf
from repro.memcached import MemcachedCluster, ModuloRouter
from repro.units import format_duration, msec


def windowed_miss_ratio(cluster, popularity, rng, window=2000, fill=True):
    misses = 0
    for _ in range(window):
        key = f"item:{int(popularity.sample(rng))}"
        if cluster.get(key) is None:
            misses += 1
            if fill:
                cluster.set(key, b"x" * 200)
    return misses / window


def main() -> None:
    rng = np.random.default_rng(17)
    popularity = Zipf(3000, 0.9)
    cluster = MemcachedCluster(4, 32 << 20)
    database = lambda r: DatabaseStage(1 / msec(1), max(r, 1e-6))

    print("Warming 4-node cluster with Zipf traffic...")
    for _ in range(5):
        windowed_miss_ratio(cluster, popularity, rng, window=5000)

    print("\nWindowed miss ratio (2,000 ops per window), N = 20 keys/request:")
    timeline = []
    for window in range(3):
        r = windowed_miss_ratio(cluster, popularity, rng)
        timeline.append(("steady", r))

    victim = cluster.servers[0]
    keys = [f"item:{rank}" for rank in range(1, 3001)]
    victim_share = cluster.ring.load_shares(
        keys, weights=popularity.probabilities
    )[0]
    print(f"  !! node {victim.name} crashes "
          f"(held {victim_share:.0%} of access mass)")
    cluster.remove_server(0)

    for window in range(6):
        r = windowed_miss_ratio(cluster, popularity, rng)
        timeline.append(("post-crash", r))

    for phase, r in timeline:
        td = database(r).mean_latency(20)
        bar = "#" * int(round(r * 80))
        print(f"  {phase:>10}: r = {r:.3f}  E[TD(20)] = "
              f"{format_duration(td):>8}  {bar}")

    print("\nWhy consistent hashing: fraction of keys remapped when a")
    print("4-node deployment loses/gains one node:")
    sample = [f"item:{rank}" for rank in range(1, 2001)]
    router = ModuloRouter(4)
    modulo_moved = router.remap_fraction(3, sample)
    ring_moved = victim_share  # ring only remaps the failed node's range
    print(f"  modulo placement : {modulo_moved:.0%} of keys move")
    print(f"  hash ring        : ~{ring_moved:.0%} (the failed range only)")

    print("\nScale-out: adding a cold 5th node...")
    cluster.add_server(32 << 20)
    for window in range(4):
        r = windowed_miss_ratio(cluster, popularity, rng)
        td = database(r).mean_latency(20)
        bar = "#" * int(round(r * 80))
        print(f"   post-join : r = {r:.3f}  E[TD(20)] = "
              f"{format_duration(td):>8}  {bar}")


if __name__ == "__main__":
    main()
