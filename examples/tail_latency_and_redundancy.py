#!/usr/bin/env python
"""Tail latency (p99/p999) and the redundant-request extension.

The paper estimates expectations; SLOs are percentiles. This example

1. computes p50/p99/p999 bounds for the request latency under the
   Facebook workload (TailLatencyModel: exact database tail, bounded
   server tail),
2. shows how the p999 explodes as utilization approaches the cliff,
3. evaluates d-way redundant reads (paper refs [12, 13]): when does
   hedging requests actually help?

Run:  python examples/tail_latency_and_redundancy.py
"""

from repro.core import (
    DatabaseStage,
    NetworkStage,
    RedundancyModel,
    ServerStage,
    TailLatencyModel,
    WorkloadPattern,
    redundancy_crossover,
    redundancy_speedup,
)
from repro.units import format_duration, kps, msec, usec


def tail_model(rate: float) -> TailLatencyModel:
    stage = ServerStage(WorkloadPattern.facebook().with_rate(rate), kps(80))
    return TailLatencyModel(
        stage,
        network_stage=NetworkStage(usec(20)),
        database_stage=DatabaseStage(1 / msec(1), 0.01),
    )


def main() -> None:
    n = 150
    model = tail_model(kps(62.5))

    print("Request latency percentiles, paper §5.1 config (N = 150):")
    for level in (0.5, 0.9, 0.99, 0.999):
        bounds = model.request_quantile_bounds(level, n)
        label = f"p{level * 100:g}"
        print(
            f"  {label:<6}: "
            f"[{format_duration(bounds.lower)}, {format_duration(bounds.upper)}]"
        )
    print()

    print("p999 of the server stage vs utilization (the cliff, in the tail):")
    for rho in (0.4, 0.6, 0.7, 0.75, 0.8, 0.9):
        m = tail_model(rho * kps(80))
        bounds = m.server_quantile_bounds(0.999, n)
        print(f"  rho = {rho:.0%}: p999 <= {format_duration(bounds.upper)}")
    print()

    workload = WorkloadPattern.facebook()
    print("2-way redundant reads (fastest copy wins, load doubles):")
    for rho in (0.05, 0.15, 0.25, 0.35, 0.45):
        speedup = redundancy_speedup(
            workload.with_rate(rho * kps(80)), kps(80), n, 2
        )
        verdict = (
            f"{speedup:.2f}x {'faster' if speedup > 1 else 'SLOWER'}"
            if speedup is not None
            else "unstable (replicas saturate)"
        )
        print(f"  base rho = {rho:.0%}: {verdict}")
    crossover = redundancy_crossover(workload, kps(80), n, 2)
    print(f"  -> hedge only below ~{crossover:.0%} base utilization")
    print()

    print("3-way replication at 10% base utilization:")
    base = RedundancyModel(workload.with_rate(kps(8)), kps(80), 1)
    for d in (1, 2, 3):
        m = RedundancyModel(workload.with_rate(kps(8)), kps(80), d)
        est = m.estimate(n)
        print(
            f"  d = {d}: E[TS({n})] ~ {format_duration(est.mean_upper)} "
            f"(server util {est.utilization:.0%})"
        )


if __name__ == "__main__":
    main()
