#!/usr/bin/env python
"""End-to-end: closed-loop simulation over a *real* memcached cluster.

The most complete demonstration of the stack: end-user requests fan out
into keys, cross a constant-latency network, queue at simulated
Memcached servers, look up an actual slab/LRU cache behind a consistent
hash ring (so the miss ratio *emerges* from capacity, catalog size and
popularity skew), relay misses to an M/M/1 database, and join.

The measured stage latencies are then compared against Theorem 1 fed
with the *measured* miss ratio — the calibration loop an operator would
run.

Run:  python examples/full_system_simulation.py
"""

import numpy as np

from repro import ClusterModel, DatabaseStage, MemcachedSystemSimulator
from repro.memcached import MemcachedCluster, SimulatedCacheBackend
from repro.units import format_duration, kps


def main() -> None:
    rng = np.random.default_rng(42)

    # Executable cache: 4 nodes x 2 MiB, 30k-item Zipf catalog.
    mc = MemcachedCluster(4, 2 << 20)
    backend = SimulatedCacheBackend(
        mc, n_items=30_000, zipf_s=0.95, value_size=1024, rng=rng
    )
    backend.warm(0.05)  # pre-load the hottest 5% of the catalog

    cluster = ClusterModel.balanced(4, kps(80))
    database_rate = 5_000.0  # 0.2 ms mean DB service
    system = MemcachedSystemSimulator(
        cluster,
        n_keys_per_request=8,
        request_rate=300.0,
        network_delay=20e-6,
        database_rate=database_rate,
        cache_backend=backend,
        seed=42,
    )

    print("Running 6,000 requests (1,000 warmup) through the system...")
    results = system.run(n_requests=5_000, warmup_requests=1_000)
    print(f"  keys processed      : {results.keys_processed}")
    print(f"  measured miss ratio : {results.measured_miss_ratio:.3f} "
          "(emergent — not configured!)")
    print(f"  server utilizations : "
          + ", ".join(f"{u:.1%}" for u in results.server_utilizations))
    print()

    print("Measured request latency decomposition (mean / p95):")
    for label, recorder in [
        ("T(N) total   ", results.total),
        ("TS(N) servers", results.server_stage),
        ("TD(N) database", results.database_stage),
        ("TN(N) network", results.network_stage),
    ]:
        print(
            f"  {label}: {format_duration(recorder.mean)} / "
            f"{format_duration(recorder.quantile(0.95))}"
        )
    print()

    # Feed the measured miss ratio back into the analytic model.
    database = DatabaseStage(
        database_rate, results.measured_miss_ratio, utilization=0.1
    )
    predicted = database.mean_latency(8)
    print("Calibration loop — database stage, model vs measurement:")
    print(f"  Theorem 1 E[TD(8)] with measured r : {format_duration(predicted)}")
    print(f"  simulated mean                     : "
          f"{format_duration(results.database_stage.mean)}")
    print()

    # Show the per-node cache state the simulation produced.
    print("Cache node statistics:")
    for server in mc.servers:
        stats = server.store.stats
        print(
            f"  {server.name}: {len(server.store)} items, "
            f"{server.store.bytes_used() >> 10} KiB, "
            f"hit ratio {stats.hit_ratio:.2%}, "
            f"evictions {stats.evictions}"
        )


if __name__ == "__main__":
    main()
