#!/usr/bin/env python
"""Cache sizing: from byte budget to miss ratio to database latency.

Closes the loop the paper's §2.2 systems (Cliffhanger, Dynacache, ...)
automate: given a Zipf catalog and an item-size profile,

1. compute the LRU miss-ratio curve with the Che approximation,
2. validate a point of it against the *executable* slab/LRU cache,
3. pick the capacity for a target miss ratio,
4. feed the resulting ``r`` into Theorem 1's database stage and see the
   end-user latency impact — including the paper's §5.3 insight that
   for large N, halving r buys only ln(2)/muD.

Run:  python examples/cache_sizing.py
"""

import numpy as np

from repro.core import DatabaseStage
from repro.distributions import Zipf
from repro.memcached import (
    CacheStore,
    capacity_for_miss_ratio,
    items_per_capacity_bytes,
    lru_miss_ratio,
    miss_ratio_curve,
)
from repro.units import format_duration, msec


def main() -> None:
    rng = np.random.default_rng(3)
    n_items, zipf_s = 20_000, 0.9
    value_bytes = 1024
    popularity = Zipf(n_items, zipf_s)
    probs = popularity.probabilities

    print(f"Catalog: {n_items} items, Zipf(s={zipf_s}), {value_bytes} B values")
    print(f"  hottest 1% of items carries {popularity.head_mass(0.01):.0%} of accesses")
    print()

    print("Miss-ratio curve (Che approximation):")
    capacities = [500, 1000, 2000, 4000, 8000, 16000]
    for capacity, miss in zip(capacities, miss_ratio_curve(probs, capacities)):
        mib = capacity * (value_bytes + 48) / (1 << 20)
        bar = "#" * int(round(miss * 50))
        print(f"  {capacity:>6} items ({mib:5.1f} MiB): r = {miss:.3f} {bar}")
    print()

    # Validate one point against the real slab/LRU store.
    capacity_bytes = 4 << 20
    store = CacheStore(capacity_bytes)
    item_capacity = int(items_per_capacity_bytes(capacity_bytes, value_bytes))
    for _ in range(60_000):
        rank = int(popularity.sample(rng))
        key = f"item{rank}"
        if store.get(key) is None:
            store.set(key, bytes(value_bytes))
    predicted = lru_miss_ratio(probs, len(store))
    print(f"Executable-cache check ({capacity_bytes >> 20} MiB store):")
    print(f"  stored items          : {len(store)} (theoretical ~{item_capacity})")
    print(f"  measured miss ratio   : {store.miss_ratio():.3f}")
    print(f"  Che prediction        : {predicted:.3f}")
    print()

    # Size for a target and translate into request latency.
    target = 0.02
    needed = capacity_for_miss_ratio(probs, target)
    needed_mib = needed * (value_bytes + 48) / (1 << 20)
    print(f"To reach r <= {target}: {needed:.0f} items ~ {needed_mib:.1f} MiB per catalog")
    print()

    print("Database latency impact (Theorem 1 part 3, 1 ms DB service):")
    for n_keys in (10, 150, 10_000):
        for r in (0.04, 0.02, 0.01):
            td = DatabaseStage(1 / msec(1), r).mean_latency(n_keys)
            print(f"  N = {n_keys:>6}, r = {r:.2f}: E[TD] = {format_duration(td)}")
        print()
    print("Note the paper's §5.3 rule: at large N the improvement per halving")
    print("of r converges to ln(2)/muD ~ 0.69 ms — shrink N, not r.")


if __name__ == "__main__":
    main()
