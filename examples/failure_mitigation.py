#!/usr/bin/env python
"""Fault injection & request policies: break the system, then fix it.

The paper's model describes the fault-free steady state. This example
injects the faults the model leaves out — declaratively, as a
:class:`repro.faults.FaultSchedule` — and then attaches the client-side
mitigation policies production Memcached deployments actually run:

1. An asymmetric slowdown window (server 0 drops to 35% of its service
   rate, a neighbour-rebuild or thermal event) wrecks the no-policy
   tail. Hedged requests — duplicate a slow key at a healthy server
   after a delay, keep the first answer — repair most of it; timeout
   with retry repairs some of it at a lower duplicate cost.
2. A database-overload window replays the paper's §5.1 transient: the
   database stage dominates T(N) inside the window and the system
   recovers after it closes. The per-request log (``keep_request_log``)
   resolves the episode along the completion-time axis.

Everything here also runs from the CLI::

    repro simulate --faults '{"windows": [{"kind": "server-slowdown",
        "start": 0.25, "duration": 1.0, "factor": 0.35, "server": 0}]}' \
        --hedge-delay 300

Run:  python examples/failure_mitigation.py
"""

from repro.experiments import Scenario
from repro.faults import (
    DatabaseOverload,
    FaultSchedule,
    ServerSlowdown,
    trajectory,
    window_effect,
)
from repro.policies import RequestPolicy
from repro.units import format_duration, kps, usec

#: Two servers at 31% base utilization, 20 keys per request — small
#: enough that the event engine replays every scenario in seconds.
BASE = Scenario(
    key_rate=kps(25),
    n_servers=2,
    service_rate=kps(80),
    n_keys=20,
    network_delay=usec(20),
    miss_ratio=0.01,
    database_rate=2_000.0,
    seed=7,
    n_requests=3_000,
    warmup_requests=300,
)

#: Simulated horizon of the run (requests / request rate).
HORIZON = BASE.n_requests * BASE.n_keys / (BASE.key_rate * BASE.n_servers)


def act_one_mitigation() -> None:
    print("Act 1 — slowdown window, with and without mitigation")
    print(f"  server 0 at 35% rate during "
          f"[{0.15 * HORIZON:.2f}s, {0.75 * HORIZON:.2f}s)")
    faults = FaultSchedule.single(
        ServerSlowdown(
            start=0.15 * HORIZON,
            duration=0.6 * HORIZON,
            factor=0.35,
            server=0,
        )
    )
    policies = {
        "no policy": None,
        "hedge @ 300us": RequestPolicy.hedged(usec(300)),
        "timeout 1ms, 2 retries": RequestPolicy.timeout_retry(
            usec(1000), max_retries=2
        ),
    }
    for name, policy in policies.items():
        result = BASE.replace(faults=faults, policy=policy).run("simulate")
        print(
            f"  {name:>22}: mean {format_duration(result.total.mean):>8}  "
            f"p99 {format_duration(result.p99):>8}"
        )
    print("  hedging reroutes the duplicate to the healthy server, so the")
    print("  window barely shows in the tail; retries pay the timeout first.")


def act_two_transient() -> None:
    print("\nAct 2 — the §5.1 overloaded-database transient")
    window = DatabaseOverload(
        start=0.3 * HORIZON, duration=0.15 * HORIZON, factor=0.25
    )
    print(f"  database at 25% rate during "
          f"[{window.start:.2f}s, {window.end:.2f}s)")
    system = BASE.replace(
        faults=FaultSchedule.single(window)
    ).simulator(keep_request_log=True)
    results = system.run(
        n_requests=BASE.n_requests, warmup_requests=BASE.warmup_requests
    )
    effect = window_effect(
        results.request_log,
        window_start=window.start,
        window_end=window.end,
        stage="database",
        settle=0.08 * HORIZON,
    )
    for phase in ("before", "during", "after"):
        print(f"  E[TD] {phase:>6}: {format_duration(effect[phase]):>8}")
    print("  completion-time trajectory (mean TD per bucket):")
    points = trajectory(results.request_log, n_buckets=12)
    peak = max(p.mean_database for p in points)
    for p in points:
        bar = "#" * int(round(40 * p.mean_database / peak))
        marker = "  <- window" if window.start <= p.midpoint < window.end else ""
        print(
            f"    t={p.midpoint:5.2f}s  "
            f"{format_duration(p.mean_database):>8}  {bar}{marker}"
        )
    print("  latency climbs inside the window and drains right after —")
    print("  the fault is an episode, not a new steady state.")


def main() -> None:
    act_one_mitigation()
    act_two_transient()


if __name__ == "__main__":
    main()
