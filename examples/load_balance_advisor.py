#!/usr/bin/env python
"""Load-balancing advisor on a *real* consistent-hash cluster (§5.2.2).

Builds an executable memcached cluster, derives the load shares {p_j}
that a Zipf-popular key catalog induces through the hash ring, feeds
them to the analytic model, and answers the paper's question: does this
imbalance actually hurt latency, i.e. is the hottest server past the
cliff?

The reproduced insight: imbalance per se is harmless — only imbalance
that pushes the hottest server beyond rhoS(xi) matters, so that is when
(and only when) rebalancing mechanisms should kick in.

Run:  python examples/load_balance_advisor.py
"""

from repro import ClusterModel, ServerStage, WorkloadPattern, advise, cliff_utilization
from repro.distributions import Zipf
from repro.memcached import MemcachedCluster
from repro.units import format_duration, kps


def induced_shares(n_servers: int, n_items: int, zipf_s: float) -> list:
    """Shares {p_j} a Zipf catalog induces through the hash ring."""
    cluster = MemcachedCluster(n_servers, 16 << 20)
    popularity = Zipf(n_items, zipf_s)
    keys = [f"item:{rank}" for rank in range(1, n_items + 1)]
    return cluster.ring.load_shares(keys, weights=popularity.probabilities)


def main() -> None:
    workload = WorkloadPattern.facebook()
    service_rate = kps(80)
    total_rate = kps(220)
    n_servers = 4

    print("Hash-ring-induced load shares for a Zipf(s=1.01) catalog:")
    shares = induced_shares(n_servers, n_items=5_000, zipf_s=1.01)
    for j, share in enumerate(shares):
        bar = "#" * int(round(share * 60))
        print(f"  server {j}: p = {share:.3f} {bar}")
    print()

    cluster = ClusterModel(shares, service_rate)
    cliff = cliff_utilization(workload.xi)
    print(f"cliff utilization rhoS({workload.xi}) = {cliff:.0%}")
    print(f"hottest server utilization at {total_rate/1e3:.0f} Kps total: "
          f"{cluster.max_utilization(total_rate):.0%}")
    print()

    # Model the latency with and without the imbalance.
    stage = ServerStage.from_cluster(cluster, total_rate, workload)
    balanced = ServerStage.from_cluster(
        ClusterModel.balanced(n_servers, service_rate), total_rate, workload
    )
    print("E[TS(150)] upper bound:")
    print(f"  measured shares : {format_duration(stage.mean_latency_bounds(150).upper)}")
    print(f"  perfectly even  : {format_duration(balanced.mean_latency_bounds(150).upper)}")
    print()

    report = advise(
        workload=workload,
        cluster=cluster,
        total_key_rate=total_rate,
        n_keys=150,
    )
    print("Advisor:")
    print(report)
    print()

    # Show the paper's threshold behaviour by scaling traffic up.
    print("Scaling total traffic until the hottest server crosses the cliff:")
    for rate_kps in (150, 200, 250, 300):
        rate = kps(rate_kps)
        hottest = cluster.max_utilization(rate)
        try:
            upper = ServerStage.from_cluster(
                cluster, rate, workload
            ).mean_latency_bounds(150).upper
            latency = format_duration(upper)
        except Exception:
            latency = "unstable"
        marker = " <-- past the cliff" if hottest >= cliff else ""
        print(f"  {rate_kps:>3} Kps: hottest at {hottest:.0%}, "
              f"E[TS(150)] <= {latency}{marker}")


if __name__ == "__main__":
    main()
