#!/usr/bin/env python
"""Capacity planning with the latency-cliff rule (paper §5.3 rule 1).

Scenario: a web tier generates 600 Kps of Memcached keys with the
Facebook burst profile. Each server sustains muS = 80 Kps. How many
servers do we need *now*, and at 2x / 4x growth, so that no server
crosses the burst-dependent cliff utilization rhoS(xi)?

The key insight reproduced here: the safe utilization is NOT 100% or
90% — it is ~75% for xi = 0.15, and it collapses as traffic gets
burstier, so the same traffic volume needs more servers when bursty.

Run:  python examples/capacity_planning.py
"""

import math

from repro import ClusterModel, WorkloadPattern, advise, cliff_utilization
from repro.core import DatabaseStage, ServerStage
from repro.units import format_duration, kps, msec


def servers_needed(total_rate: float, service_rate: float, xi: float) -> int:
    """Smallest balanced cluster keeping every server below the cliff."""
    cliff = cliff_utilization(xi)
    return math.ceil(total_rate / (service_rate * cliff))


def main() -> None:
    service_rate = kps(80)
    base_rate = kps(600)
    workload_shape = WorkloadPattern.facebook()

    print("Cliff utilization by burst degree (Prop. 2 / Table 4):")
    for xi in (0.0, 0.15, 0.4, 0.6):
        print(f"  xi = {xi:<4} -> rhoS = {cliff_utilization(xi):.0%}")
    print()

    print(f"Sizing for Facebook burst (xi = {workload_shape.xi}):")
    for growth in (1, 2, 4):
        rate = base_rate * growth
        n = servers_needed(rate, service_rate, workload_shape.xi)
        cluster = ClusterModel.balanced(n, service_rate)
        per_server = rate / n
        stage = ServerStage(workload_shape.with_rate(per_server), service_rate)
        bound = stage.mean_latency_bounds(150)
        print(
            f"  {growth}x traffic ({rate / 1e3:.0f} Kps): {n} servers, "
            f"{cluster.max_utilization(rate):.0%} utilization, "
            f"E[TS(150)] <= {format_duration(bound.upper)}"
        )
    print()

    print("The same traffic, if it were burstier (xi = 0.6):")
    n = servers_needed(base_rate, service_rate, 0.6)
    print(f"  {n} servers needed instead of "
          f"{servers_needed(base_rate, service_rate, 0.15)} — burst costs capacity")
    print()

    # Run the full advisor on a deliberately undersized deployment.
    print("Advisor report for an undersized 8-server deployment:")
    database = DatabaseStage(1 / msec(1), 0.01)
    report = advise(
        workload=workload_shape,
        cluster=ClusterModel.balanced(8, service_rate),
        total_key_rate=base_rate,
        n_keys=150,
        database=database,
    )
    print(report)


if __name__ == "__main__":
    main()
