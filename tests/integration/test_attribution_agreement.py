"""Attribution agreement: engine vs fastpath-system vs the analytic model.

Two cross-backend contracts:

* **§5.1 root cause** — during an overloaded-database transient both
  simulation backends must attribute the p99 tail to DB *queueing*
  (majority share), which is exactly the diagnosis ``repro explain``
  exists to automate.
* **Analytic decomposition** — on a no-fault baseline the simulated
  mean group shares must track :meth:`Scenario.attribution_reference`.
  The reference is exact in the thinned-Poisson regime (``n_keys == 1``:
  every stage is M/M/1 and Burke's theorem makes the DB arrivals
  Poisson), so there the tolerance is 15%; at moderate fan-out the
  matched-geometric batch approximation is documented at ~30% (see
  ``test_theory_vs_simulation.py``) yet the *share* comparison stays
  inside 20% because the error renormalizes.
"""

from __future__ import annotations

import pytest

from repro.experiments import Scenario
from repro.units import usec

BACKENDS = ("simulate", "fastpath-system")


def db_overload_scenario():
    """The §5.1 transient: an 8x database slowdown mid-run."""
    return Scenario(
        key_rate=40_000.0,
        burst_xi=0.0,
        concurrency_q=0.0,
        n_servers=2,
        service_rate=80_000.0,
        n_keys=20,
        network_delay=usec(20),
        miss_ratio=0.005,
        database_rate=1_000.0,
        seed=2,
        n_requests=4_000,
        warmup_requests=400,
        faults={
            "windows": [
                {
                    "kind": "database-overload",
                    "start": 0.3,
                    "duration": 0.3,
                    "factor": 0.125,
                }
            ]
        },
    )


def baseline(n_keys, miss_ratio, database_rate, seed):
    return Scenario(
        key_rate=30_000.0,
        burst_xi=0.0,
        concurrency_q=0.0,
        n_servers=4,
        service_rate=80_000.0,
        n_keys=n_keys,
        network_delay=usec(20),
        miss_ratio=miss_ratio,
        database_rate=database_rate,
        seed=seed,
        n_requests=20_000,
        warmup_requests=2_000,
    )


class TestTailRootCause:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_db_queue_dominates_overload_p99(self, backend):
        result = db_overload_scenario().run(backend, attribution=True)
        tail = result.attribution.tail(0.99)
        assert tail.dominant == "db_queue"
        assert tail.shares["db_queue"] > 0.5
        # The grouped view agrees: database >= everything else combined.
        groups = tail.group_shares()
        assert groups["database"] > 0.5

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mean_attribution_also_shifts_to_database(self, backend):
        result = db_overload_scenario().run(backend, attribution=True)
        groups = result.attribution.group_shares()
        assert groups["database"] > groups["server"]
        assert groups["database"] > groups["network"]


class TestAnalyticDecomposition:
    def test_reference_schema(self):
        ref = baseline(1, 0.15, 30_000.0, 5).attribution_reference()
        assert set(ref) == {
            "network", "server", "database", "policy", "join_slack", "total",
        }
        assert ref["policy"] == 0.0
        serial = ref["network"] + ref["server"] + ref["database"]
        assert ref["total"] == pytest.approx(serial + ref["join_slack"])
        # Single-key requests have no fork-join: the slack vanishes.
        assert abs(ref["join_slack"]) < 0.005 * ref["total"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_key_shares_within_15_percent(self, backend):
        sc = baseline(1, 0.15, 30_000.0, 5)
        ref = sc.attribution_reference()
        ref_shares = {
            group: ref[group] / ref["total"]
            for group in ("network", "server", "database")
        }
        attr = sc.run(backend, attribution=True).attribution
        sim_shares = attr.group_shares()
        for group, expected in ref_shares.items():
            rel = abs(sim_shares[group] - expected) / expected
            assert rel < 0.15, (backend, group, sim_shares[group], expected)
        # Fork-join slack is structurally zero at n_keys == 1.
        assert abs(sim_shares["join_slack"]) < 0.01

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fanout_shares_within_20_percent(self, backend):
        sc = baseline(4, 0.05, 60_000.0, 7)
        ref = sc.attribution_reference()
        ref_shares = {
            group: ref[group] / ref["total"]
            for group in ("network", "server", "database")
        }
        attr = sc.run(backend, attribution=True).attribution
        sim_shares = attr.group_shares()
        for group, expected in ref_shares.items():
            rel = abs(sim_shares[group] - expected) / expected
            assert rel < 0.20, (backend, group, sim_shares[group], expected)

    def test_reference_mean_total_tracks_simulation(self):
        sc = baseline(1, 0.15, 30_000.0, 5)
        ref = sc.attribution_reference()
        attr = sc.run("simulate", attribution=True).attribution
        rel = abs(attr.mean_total() - ref["total"]) / ref["total"]
        assert rel < 0.10

    def test_reference_strips_faults_and_policy(self):
        faulted = db_overload_scenario()
        clean = faulted.replace(faults=None)
        assert faulted.attribution_reference() == clean.attribution_reference()
