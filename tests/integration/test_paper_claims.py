"""Integration: the paper's headline tables, figures and claims.

Each test pins one published number or shape so regressions in any layer
surface as a broken paper claim.
"""

import math

import pytest

from repro.core import (
    ClusterModel,
    DatabaseStage,
    LatencyModel,
    ServerStage,
    WorkloadPattern,
    fit_log_slope,
)
from repro.queueing import PAPER_TABLE_4, cliff_utilization
from repro.units import kps, msec, usec


def paper_model() -> LatencyModel:
    return LatencyModel.build(
        workload=WorkloadPattern.facebook(),
        service_rate=kps(80),
        network_delay=usec(20),
        database_rate=1.0 / msec(1),
        miss_ratio=0.01,
    )


class TestTable3:
    """Table 3: Theorem 1 columns for the Facebook workload."""

    def test_tn(self):
        assert paper_model().estimate(150).network == pytest.approx(20e-6)

    def test_ts_range(self):
        server = paper_model().estimate(150).server
        assert server.lower == pytest.approx(351e-6, rel=0.015)
        assert server.upper == pytest.approx(366e-6, rel=0.015)

    def test_td(self):
        assert paper_model().estimate(150).database == pytest.approx(
            836e-6, rel=0.015
        )

    def test_total(self):
        estimate = paper_model().estimate(150)
        assert estimate.total_lower == pytest.approx(836e-6, rel=0.015)
        assert estimate.total_upper == pytest.approx(1222e-6, rel=0.015)

    def test_paper_experiment_values_inside_upper_bounds(self):
        # The paper measured TS=368us, TD=867us, T=1144us.
        estimate = paper_model().estimate(150)
        assert estimate.total_lower < 1144e-6 < estimate.total_upper
        assert 867e-6 > estimate.database * 0.9
        assert 368e-6 > estimate.server.lower


class TestFigure5Concurrency:
    def test_linear_in_one_over_one_minus_q(self):
        stage_at = lambda q: ServerStage(
            WorkloadPattern.facebook().with_q(q), kps(80)
        ).mean_latency_bounds(150).upper
        qs = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
        ys = [stage_at(q) for q in qs]
        xs = [1 / (1 - q) for q in qs]
        # Check linearity: correlation of y with x nearly 1.
        from repro.core import goodness_of_linear_fit

        assert goodness_of_linear_fit(xs, ys) > 0.999

    def test_range_matches_figure(self):
        # Fig. 5 shows ~330-360us at q=0 rising to ~650-700us at q=0.5.
        low = ServerStage(
            WorkloadPattern.facebook().with_q(0.0), kps(80)
        ).mean_latency_bounds(150).upper
        high = ServerStage(
            WorkloadPattern.facebook().with_q(0.5), kps(80)
        ).mean_latency_bounds(150).upper
        assert 300e-6 < low < 400e-6
        assert high == pytest.approx(low * 1.8, rel=0.15)


class TestFigure6Burst:
    def test_monotone_increasing_in_xi(self):
        values = [
            ServerStage(
                WorkloadPattern.facebook().with_xi(xi), kps(80)
            ).mean_latency_bounds(150).upper
            for xi in (0.0, 0.2, 0.4, 0.6)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_burst_blowup_magnitude(self):
        # Fig. 6: from ~300us at xi=0 to ~1200+us at xi=0.6.
        at0 = ServerStage(
            WorkloadPattern.facebook().with_xi(0.0), kps(80)
        ).mean_latency_bounds(150).upper
        at6 = ServerStage(
            WorkloadPattern.facebook().with_xi(0.6), kps(80)
        ).mean_latency_bounds(150).upper
        assert at6 / at0 > 2.5


class TestFigure7CliffInRate:
    def test_gentle_then_sharp(self):
        stage_at = lambda lam: ServerStage(
            WorkloadPattern.facebook().with_rate(kps(lam)), kps(80)
        ).mean_latency_bounds(150).upper
        gentle = stage_at(50) - stage_at(40)
        sharp = stage_at(75) - stage_at(65)
        assert sharp > 4 * gentle

    def test_cliff_location_near_60kps(self):
        # rho_S(0.15) ~ 0.75 -> cliff at ~60 Kps for muS = 80 Kps.
        cliff_rho = cliff_utilization(0.15)
        assert cliff_rho * 80 == pytest.approx(60.0, abs=2.0)


class TestTable4:
    def test_realistic_range_within_two_points(self):
        for xi in (0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5):
            assert cliff_utilization(xi) == pytest.approx(
                PAPER_TABLE_4[xi], abs=0.025
            ), f"xi={xi}"

    def test_monotone_decreasing(self):
        values = [cliff_utilization(xi) for xi in (0.0, 0.2, 0.4, 0.6, 0.8)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


class TestFigure11MissRatio:
    def test_linear_regime_small_n(self):
        # E[TD(N)] = Theta(r) for small N: doubling r doubles latency.
        stage = lambda r: DatabaseStage(1.0 / msec(1), r).mean_latency(4)
        assert stage(0.02) == pytest.approx(2 * stage(0.01), rel=0.05)

    def test_log_regime_large_n(self):
        # E[TD(N)] = Theta(log r) for large N: equal increments per decade
        # of r, each ln(10)/muD, once N*r >> 1 in both decades.
        stage = lambda r: DatabaseStage(1.0 / msec(1), r).mean_latency(100_000)
        d1 = stage(1e-2) - stage(1e-3)
        d2 = stage(1e-3) - stage(1e-4)
        assert d1 == pytest.approx(d2, rel=0.1)
        assert d1 == pytest.approx(math.log(10) / 1000.0, rel=0.1)

    def test_figure_magnitudes(self):
        # Fig. 11 right panel: ~2-5 ms at r=1e-3..1e-2 for N=1000.
        value = DatabaseStage(1.0 / msec(1), 0.001).mean_latency(1000)
        assert 0.4e-3 < value < 2e-3


class TestFigures12And13KeyCount:
    def test_ts_log_growth(self):
        stage = ServerStage(WorkloadPattern.facebook(), kps(80))
        ns = [10, 100, 1000, 10_000]
        ys = [stage.mean_latency_bounds(n).upper for n in ns]
        slope = fit_log_slope(ns, ys)
        decay = stage.mean_latency_bounds(10).decay_rate
        assert slope == pytest.approx(1.0 / decay, rel=0.05)

    def test_td_log_growth_large_n(self):
        database = DatabaseStage(1.0 / msec(1), 0.01)
        ns = [10_000, 100_000, 1_000_000]
        ys = [database.mean_latency(n) for n in ns]
        increments = [b - a for a, b in zip(ys, ys[1:])]
        assert increments[0] == pytest.approx(
            math.log(10) / 1000.0, rel=0.05
        )
        assert increments[1] == pytest.approx(increments[0], rel=0.05)

    def test_fig13_magnitude(self):
        # Fig. 13: ~9-11 ms at N = 10^6.
        value = DatabaseStage(1.0 / msec(1), 0.01).mean_latency(1_000_000)
        assert 8e-3 < value < 12e-3


class TestFigure10Imbalance:
    def test_latency_explodes_past_p1_075(self):
        workload = WorkloadPattern.facebook()
        total = kps(80)

        def upper(p1: float) -> float:
            cluster = ClusterModel.hot_cold(4, kps(80), hottest_share=p1)
            stage = ServerStage.from_cluster(cluster, total, workload)
            return stage.mean_latency_bounds(150).upper

        gentle = upper(0.5) - upper(0.3)
        sharp = upper(0.9) - upper(0.75)
        assert sharp > 3 * gentle

    def test_cliff_at_p1_075(self):
        # Fig. 10: cliff when p1 * 80 Kps hits 75% of muS.
        cliff_rho = cliff_utilization(0.15)
        assert cliff_rho == pytest.approx(0.75, abs=0.02)
