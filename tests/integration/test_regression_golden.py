"""Golden regression values: seeded runs must stay bit-stable.

The analytic values pin the math (any change to the solvers shows up
here first); the seeded simulation values pin the RNG plumbing (stream
splitting, sampling order). Update a golden value only when a deliberate
behaviour change explains it.
"""

import numpy as np
import pytest

from repro.core import LatencyModel, ServerStage, WorkloadPattern
from repro.queueing import delta_for_utilization
from repro.simulation import MemcachedSystemSimulator, simulate_key_latencies
from repro.core import ClusterModel
from repro.units import kps, msec, usec


class TestAnalyticGoldens:
    def test_facebook_delta(self):
        stage = ServerStage(WorkloadPattern.facebook(), kps(80))
        assert stage.delta == pytest.approx(0.8104, abs=2e-4)

    def test_table3_bounds_exact(self):
        model = LatencyModel.build(
            workload=WorkloadPattern.facebook(),
            service_rate=kps(80),
            network_delay=usec(20),
            database_rate=1.0 / msec(1),
            miss_ratio=0.01,
        )
        estimate = model.estimate(150)
        assert estimate.server.lower == pytest.approx(352.06e-6, abs=0.2e-6)
        assert estimate.server.upper == pytest.approx(367.46e-6, abs=0.2e-6)
        assert estimate.database == pytest.approx(836.05e-6, abs=0.2e-6)

    def test_delta_grid(self):
        # A small grid of the normalized fixed point.
        goldens = {
            (0.15, 0.5): 0.5422,
            (0.15, 0.78125): 0.8104,
            (0.5, 0.5): 0.6950,
            (0.0, 0.75): 0.75,
        }
        for (xi, rho), expected in goldens.items():
            assert delta_for_utilization(xi, rho) == pytest.approx(
                expected, abs=2e-3
            ), (xi, rho)

    def test_cliff_facebook(self):
        from repro.queueing import cliff_utilization

        assert cliff_utilization(0.15) == pytest.approx(0.759, abs=0.004)


class TestSeededSimulationGoldens:
    def test_fastpath_seeded_mean(self):
        rng = np.random.default_rng(20170327)
        latencies = simulate_key_latencies(
            WorkloadPattern.facebook(), kps(80), n_keys=100_000, rng=rng
        )
        # Pin to a tight band; identical-seed runs are deterministic.
        first = float(latencies.mean())
        rng = np.random.default_rng(20170327)
        second = float(
            simulate_key_latencies(
                WorkloadPattern.facebook(), kps(80), n_keys=100_000, rng=rng
            ).mean()
        )
        assert first == second  # bit-stable
        assert first == pytest.approx(73e-6, rel=0.1)  # sane magnitude

    def test_system_sim_seeded_determinism(self):
        def run():
            system = MemcachedSystemSimulator(
                ClusterModel.balanced(2, kps(80)),
                n_keys_per_request=10,
                request_rate=200.0,
                network_delay=usec(20),
                miss_ratio=0.02,
                database_rate=1.0 / msec(1),
                seed=99,
            )
            return system.run(n_requests=200).total.mean

        assert run() == run()
