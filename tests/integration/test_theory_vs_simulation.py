"""Integration: the analytic model vs the simulators.

These are the library's load-bearing checks: the GI^X/M/1 theory
(Theorem 1) must describe what the simulated Memcached system actually
does, across workload shapes.
"""

import numpy as np
import pytest

from repro.core import (
    ClusterModel,
    DatabaseStage,
    LatencyModel,
    ServerStage,
    WorkloadPattern,
)
from repro.simulation import (
    MemcachedSystemSimulator,
    sample_request_latencies,
    simulate_batch_times,
    simulate_key_latencies,
)
from repro.units import kps, msec, usec


class TestBatchLawAgainstEventSim:
    def test_gixm1_distributions_hold_in_event_simulator(self, rng):
        """Run the event-driven server under the paper's arrival process
        and compare per-key sojourns with the analytic per-key law."""
        from repro.simulation import BatchArrivalProcess, ServerSim, Simulator

        workload = WorkloadPattern.facebook().with_rate(kps(40))
        stage = ServerStage(workload, kps(80))
        sim = Simulator()
        sojourns = []
        server = ServerSim.exponential(
            sim, kps(80), rng, on_complete=lambda job: sojourns.append(job.sojourn)
        )
        arrivals = BatchArrivalProcess.from_workload(workload, rng)
        arrivals.start(sim, lambda t, size: server.offer_batch(t, size))
        sim.run_until(8.0)
        assert len(sojourns) > 100_000
        assert np.mean(sojourns) == pytest.approx(
            stage.queue.mean_key_latency, rel=0.05
        )

    def test_fastpath_matches_event_sim(self, rng):
        workload = WorkloadPattern.facebook().with_rate(kps(40))
        fast = simulate_key_latencies(workload, kps(80), n_keys=400_000, rng=rng)

        from repro.simulation import BatchArrivalProcess, ServerSim, Simulator

        sim = Simulator()
        sojourns = []
        server = ServerSim.exponential(
            sim, kps(80), rng,
            on_complete=lambda job: sojourns.append(job.sojourn),
        )
        arrivals = BatchArrivalProcess.from_workload(workload, rng)
        arrivals.start(sim, lambda t, size: server.offer_batch(t, size))
        sim.run_until(5.0)
        assert np.mean(sojourns) == pytest.approx(float(fast.mean()), rel=0.05)


class TestTheorem1AgainstFastPath:
    @pytest.mark.parametrize("xi", [0.0, 0.15, 0.4])
    def test_server_bounds_bracket_simulation_shape(self, rng, xi):
        workload = WorkloadPattern(rate=kps(50), xi=xi, q=0.1)
        stage = ServerStage(workload, kps(80))
        pool = simulate_key_latencies(workload, kps(80), n_keys=600_000, rng=rng)
        sample = sample_request_latencies(
            [pool], [1.0], n_keys=150, n_requests=4000, rng=rng
        )
        measured = float(sample.server_max.mean())
        bounds = stage.mean_latency_bounds(150)
        # The quantile rule underestimates E[max] by up to H_N - ln(N+1)
        # (~12% at N=150); allow that documented slack.
        assert bounds.lower * 0.85 < measured < bounds.upper * 1.3

    def test_database_estimate_close_to_simulation(self, rng):
        database = DatabaseStage(1.0 / msec(1), 0.01)
        pool = np.zeros(10)  # isolate the database component
        sample = sample_request_latencies(
            [pool], [1.0], n_keys=150, n_requests=30_000, rng=rng,
            miss_ratio=0.01, database_rate=1.0 / msec(1),
        )
        measured = float(sample.database_max.mean())
        estimate = database.mean_latency(150)
        # The paper's eq. (23) underestimates the exact maximal statistic
        # by ~20% at these parameters (documented in EXPERIMENTS.md).
        assert estimate * 0.75 < measured < estimate * 1.45

    def test_miss_count_distribution(self, rng):
        sample = sample_request_latencies(
            [np.zeros(5)], [1.0], n_keys=150, n_requests=20_000, rng=rng,
            miss_ratio=0.01, database_rate=1000.0,
        )
        any_miss = float(np.mean(sample.database_max > 0))
        assert any_miss == pytest.approx(1 - 0.99**150, abs=0.02)


class TestEndToEndSystem:
    def test_single_key_requests_are_exactly_mm1(self):
        """With N = 1 the closed loop induces thinned-Poisson per-server
        arrivals, so the matched model (q = 0) is exactly M/M/1."""
        cluster = ClusterModel.balanced(2, kps(20))
        system = MemcachedSystemSimulator(
            cluster,
            n_keys_per_request=1,
            request_rate=20_000.0,  # 10k keys/s per server, rho = 0.5
            network_delay=0.0,
            seed=11,
        )
        results = system.run(n_requests=30_000, warmup_requests=3000)
        workload = system.induced_server_workload(0)
        assert workload.q == 0.0
        stage = ServerStage(workload, kps(20))
        measured = results.per_key_server.mean
        assert measured == pytest.approx(stage.queue.mean_key_latency, rel=0.08)

    def test_multi_key_requests_exact_with_truncated_binomial(self):
        """The closed loop induces Exp gaps + TruncatedBinomial batches;
        the GeneralBatchQueue with that exact law should beat the
        matched-geometric approximation substantially."""
        from repro.distributions import Exponential, TruncatedBinomial
        from repro.queueing import GeneralBatchQueue

        n_keys, share = 4, 0.5
        request_rate = 2500.0
        cluster = ClusterModel.balanced(2, kps(20))
        system = MemcachedSystemSimulator(
            cluster,
            n_keys_per_request=n_keys,
            request_rate=request_rate,
            network_delay=0.0,
            seed=11,
        )
        results = system.run(n_requests=12_000, warmup_requests=1200)
        measured = results.per_key_server.mean

        batch_prob = 1.0 - (1.0 - share) ** n_keys
        exact_queue = GeneralBatchQueue(
            Exponential(request_rate * batch_prob),
            TruncatedBinomial(n_keys, share),
            kps(20),
        )
        exact = exact_queue.mean_key_latency()
        geometric = ServerStage(
            system.induced_server_workload(0), kps(20)
        ).queue.mean_key_latency
        # The exact batch law lands much closer than the geometric match.
        assert measured == pytest.approx(exact, rel=0.1)
        assert abs(exact - measured) < abs(geometric - measured)

    def test_multi_key_requests_approximated_by_matched_batches(self):
        """With N > 1 the per-request fan-out produces binomial batches;
        the matched geometric-batch model is an approximation the paper
        relies on — verify it lands within ~30%."""
        cluster = ClusterModel.balanced(2, kps(20))
        system = MemcachedSystemSimulator(
            cluster,
            n_keys_per_request=4,
            request_rate=2500.0,  # 10k keys/s total, 5k per server
            network_delay=0.0,
            seed=11,
        )
        results = system.run(n_requests=8000, warmup_requests=800)
        workload = system.induced_server_workload(0)
        stage = ServerStage(workload, kps(20))
        measured = results.per_key_server.mean
        assert measured == pytest.approx(stage.queue.mean_key_latency, rel=0.3)

    def test_request_latency_bounded_by_eq1(self):
        cluster = ClusterModel.balanced(4, kps(80))
        system = MemcachedSystemSimulator(
            cluster,
            n_keys_per_request=30,
            request_rate=200.0,
            network_delay=usec(20),
            miss_ratio=0.02,
            database_rate=1.0 / msec(1),
            seed=3,
        )
        results = system.run(n_requests=1500, warmup_requests=200)
        total = results.total.mean
        stage_sum = (
            results.network_stage.mean
            + results.server_stage.mean
            + results.database_stage.mean
        )
        stage_max = max(
            results.network_stage.mean,
            results.server_stage.mean,
            results.database_stage.mean,
        )
        assert stage_max <= total <= stage_sum * 1.01

    def test_real_cache_backend_integration(self, rng):
        """The executable memcached provides the miss process: r emerges
        from capacity + popularity, and the DB stage reacts to it."""
        from repro.memcached import MemcachedCluster, SimulatedCacheBackend

        mc = MemcachedCluster(4, 1 << 20)
        backend = SimulatedCacheBackend(
            mc, n_items=20_000, value_size=2048, rng=rng
        )
        backend.warm(0.05)
        cluster = ClusterModel.balanced(4, kps(80))
        # Keep the *miss stream* well below the database service rate
        # (rho_D ~ 0.1) and the per-request fan-out small: the tiny cache
        # misses ~40% of lookups, and with a large N all of a request's
        # misses would hit the database as one clump, violating the
        # paper's Poisson-miss assumption (its r is 1%, not 40%).
        database_rate = 5000.0
        system = MemcachedSystemSimulator(
            cluster,
            n_keys_per_request=2,
            request_rate=500.0,
            database_rate=database_rate,
            cache_backend=backend,
            seed=5,
        )
        results = system.run(n_requests=4000)
        assert 0.0 < results.measured_miss_ratio < 1.0
        assert results.database_stage.mean > 0.0
        # The model fed with the measured r should land in the right range.
        database = DatabaseStage(
            database_rate,
            results.measured_miss_ratio,
            utilization=0.1,
        )
        estimate = database.mean_latency(2)
        assert estimate == pytest.approx(results.database_stage.mean, rel=0.4)
