"""Cross-backend agreement: event engine vs whole-system fast path.

The ``fastpath-system`` backend claims to be the event engine's
statistical twin — same Poisson requests, multinomial routing, batch
FIFO servers, shared FIFO database, fork-join joins, and even the same
completion-ranked sampling window. These tests hold it to that claim on
a fig-11-style miss-ratio grid (including an overloaded-database point,
where the sampling protocol is decisive) and at a near-saturation
utilization where the analytic bound must bracket both simulators.

Engine means at these run lengths carry heavy autocorrelation (the
recorder's iid CI understates the spread several-fold), so comparisons
average a couple of seeds and use tolerances in line with the measured
seed scatter, not the nominal CI.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import Scenario
from repro.observability import SLOMonitor, detection_scores
from repro.units import kps, msec, usec


def agreement_scenario(**overrides):
    """Downscaled §5.1-style point both backends evaluate in seconds."""
    base = dict(
        key_rate=kps(40),
        n_servers=2,
        service_rate=kps(80),
        n_keys=20,
        network_delay=usec(20),
        miss_ratio=0.005,
        database_rate=1 / msec(1),
        n_requests=1500,
        warmup_requests=150,
        seed=0,
    )
    base.update(overrides)
    return Scenario(**base)


def averaged(scenario, backend, seeds):
    stats = {"total": [], "server": [], "database": [], "miss": []}
    for seed in seeds:
        result = scenario.replace(seed=seed).run(backend)
        stats["total"].append(result.total.mean)
        stats["server"].append(result.server.mean)
        stats["database"].append(result.database.mean)
        stats["miss"].append(result.measured_miss_ratio)
    return {key: float(np.mean(vals)) for key, vals in stats.items()}


class TestMissRatioGridAgreement:
    @pytest.mark.parametrize(
        "miss_ratio,db_overloaded",
        [
            (0.0, False),
            (0.005, False),  # rho_D = 0.4: stationary database
            (0.02, True),  # rho_D = 1.6: growing transient
        ],
    )
    def test_engine_and_fastpath_system_agree(self, miss_ratio, db_overloaded):
        scenario = agreement_scenario(
            miss_ratio=miss_ratio,
            database_rate=None if miss_ratio == 0.0 else 1 / msec(1),
        )
        # A 1500-request run holds only ~150 nonzero TD samples at the
        # stable miss point, and their conditional law is a heavy-tailed
        # queue sojourn — per-seed TD means scatter by +/-40%, so the
        # stable point averages more seeds than the others.
        seeds = (1, 2, 3, 4) if miss_ratio == 0.005 else (1, 2)
        engine = averaged(scenario, "simulate", seeds)
        fast = averaged(scenario, "fastpath-system", seeds)

        assert fast["server"] == pytest.approx(engine["server"], rel=0.2)
        assert fast["total"] == pytest.approx(engine["total"], rel=0.25)
        if miss_ratio == 0.0:
            assert fast["database"] == 0.0 == engine["database"]
        else:
            # The overloaded point only agrees because the fast path
            # replicates the engine's completion-ranked window; its mean
            # is transient-growth-dominated, hence the tighter rel.
            rel = 0.35 if db_overloaded else 0.45
            assert fast["database"] == pytest.approx(engine["database"], rel=rel)
            assert fast["miss"] == pytest.approx(miss_ratio, rel=0.35)
            assert engine["miss"] == pytest.approx(miss_ratio, rel=0.35)

    def test_stage_breakdowns_consistent(self):
        scenario = agreement_scenario(seed=5)
        for backend in ("simulate", "fastpath-system"):
            result = scenario.run(backend)
            assert set(result.breakdown()) == {"network", "servers", "database"}
            assert result.network.mean == pytest.approx(2 * usec(20))
            # Fork-join ordering: T >= max stage, T <= sum of stages.
            stages = result.breakdown()
            assert result.mean >= max(stages.values()) - 1e-12
            assert result.mean <= sum(stages.values()) + 1e-12

    def test_estimate_backend_same_order_of_magnitude(self):
        # The analytic bound models geometric batches (matched to the
        # induced mean E[X] = N p / (1 - (1-p)^N) ~ 10, q = 1 - 1/E[X])
        # where the system produces Binomial(20, 0.5) batches, and a
        # lightly loaded database where the system queues misses — so it
        # is a documented over-approximation here. All three backends
        # must still tell one story within that envelope.
        scenario = agreement_scenario(miss_ratio=0.005, concurrency_q=0.9)
        estimate = scenario.run("estimate")
        fast = averaged(scenario, "fastpath-system", (1, 2))
        assert estimate.total_lower * 0.25 < fast["total"] < estimate.total_upper * 3.0


class TestStabilityLimit:
    def test_near_saturation_agreement_and_bracketing(self):
        """rho = 0.9375, N = 1: the regime where backends drift apart.

        Single-key requests make the per-server stream exactly Poisson,
        so the true model is plain M/M/1 with E[T] = 1/(mu - lam) — no
        batch-matching approximation. Near saturation both simulators
        must recover that exact mean (within finite-run slack: the
        relaxation time at rho = 0.9375 is milliseconds, and the runs
        cover many of them, but autocorrelated means still wobble ~5%),
        and the Theorem 1 bound must bracket them up to its quantile-
        rule envelope.
        """
        scenario = agreement_scenario(
            key_rate=kps(75),  # rho = 75/80
            n_servers=1,
            n_keys=1,
            miss_ratio=0.0,
            database_rate=None,
            network_delay=0.0,
            n_requests=20_000,
            warmup_requests=2_000,
            concurrency_q=0.0,
            burst_xi=0.0,
        )
        engine = averaged(scenario, "simulate", (1, 2, 3))
        fast = averaged(
            scenario.replace(n_requests=200_000, warmup_requests=20_000),
            "fastpath-system",
            (1, 2, 3),
        )
        assert fast["server"] == pytest.approx(engine["server"], rel=0.25)

        exact = 1.0 / (kps(80) - kps(75))
        assert engine["server"] == pytest.approx(exact, rel=0.1)
        assert fast["server"] == pytest.approx(exact, rel=0.1)

        # The quantile rule brackets a median-of-max proxy; at N = 1
        # that is the plain median, a factor ln 2 below the exponential
        # sojourn's mean — the rule's documented worst case. The
        # simulators must land inside the bound stretched by exactly
        # that envelope.
        bounds = scenario.run("estimate").server
        for measured in (fast["server"], engine["server"]):
            assert bounds.lower * 0.8 < measured < bounds.upper * 1.6


class TestTimelineAgreement:
    """The two native-telemetry backends must emit the same story.

    Windowed series are far noisier than run-level means (a window holds
    ~750 completions here), so the comparisons average each series over
    the run and use tolerances matched to the measured seed scatter:
    rates and medians are tight, occupancy and utilization carry queue
    autocorrelation, and windowed p95 is tail-dominated enough that only
    the run-level recorders are held to it (elsewhere).
    """

    def test_engine_and_fastpath_system_series_agree_when_stationary(self):
        scenario = agreement_scenario(n_requests=6000, warmup_requests=600)
        engine = scenario.timeline("simulate", n_windows=8)
        fast = scenario.timeline("fastpath-system", n_windows=8)

        assert engine.stage_names == fast.stage_names
        assert engine.n_windows == fast.n_windows == 8

        def series_mean(timeline, series):
            return float(np.nanmean(np.asarray(series, dtype=float)))

        for get, rel in (
            (lambda t: t.arrival_rate(), 0.05),
            (lambda t: t.completion_rate(), 0.05),
            (lambda t: t.quantile_series(0.5), 0.1),
            (lambda t: t.utilization("server.0"), 0.15),
            (lambda t: t.utilization("server.1"), 0.15),
            (lambda t: t.occupancy(), 0.35),
        ):
            assert series_mean(fast, get(fast)) == pytest.approx(
                series_mean(engine, get(engine)), rel=rel
            )

        # Both self-consistent under Little's law, window by window.
        for timeline in (engine, fast):
            law = timeline.littles_law()
            assert bool(np.all(law["valid"]))
            assert law["n_valid"] == 8
            assert law["max_relative_error"] < 0.25

    def test_analytic_timeline_is_the_constant_reference(self):
        scenario = agreement_scenario()
        timeline = scenario.timeline("estimate", n_windows=6)
        request_rate = scenario.total_key_rate() / scenario.n_keys
        np.testing.assert_allclose(timeline.arrival_rate(), request_rate)
        np.testing.assert_allclose(
            timeline.utilization("server.0"),
            scenario.key_rate / scenario.service_rate,
        )
        # Stationary by construction: every window identical.
        assert float(np.ptp(timeline.occupancy())) == 0.0

    def test_both_backends_localize_a_database_overload(self):
        """Satellite: an injected fault window is recovered as an SLO
        alert window by engine AND fastpath-system telemetry, with
        precision and recall >= 0.8 against the schedule."""
        fault_start, fault_duration = 0.3, 0.3
        scenario = agreement_scenario(
            n_requests=4000,
            warmup_requests=400,
            faults={
                "windows": [
                    {
                        "kind": "database-overload",
                        "start": fault_start,
                        "duration": fault_duration,
                        "factor": 0.125,  # 8x database slowdown
                    }
                ]
            },
        )
        # Bad = slower than 20 ms: only fault-window database sojourns
        # reach that (healthy p99 is ~3 ms), so the burn rule fires on
        # the overload and nowhere else.
        monitor = SLOMonitor.latency_slo(
            burn_threshold=0.020, objective=0.998, min_count=20
        )
        for backend in ("simulate", "fastpath-system"):
            timeline = scenario.timeline(backend, n_windows=12)
            report = monitor.evaluate(timeline)
            assert not report.ok, f"{backend}: fault raised no alert"
            scores = detection_scores(
                report.alerts,
                scenario.faults,
                # Queues drain after the fault lifts; trailing alert
                # windows are detection, not false positives.
                slack=0.6,
            )
            assert scores["precision"] >= 0.8, (backend, scores)
            assert scores["recall"] >= 0.8, (backend, scores)
            # And the alert actually overlaps the injected span.
            fault_end = fault_start + fault_duration
            assert any(
                alert.overlaps(fault_start, fault_end)
                for alert in report.alerts
            ), (backend, report.alerts)

    def test_fault_free_run_raises_no_alert(self):
        scenario = agreement_scenario(n_requests=3000, warmup_requests=300)
        monitor = SLOMonitor.latency_slo(
            burn_threshold=0.020, objective=0.998, min_count=20
        )
        for backend in ("simulate", "fastpath-system"):
            report = monitor.evaluate(scenario.timeline(backend, n_windows=12))
            assert report.ok, (backend, report.alerts)


class TestExperimentCliSweep:
    def test_fig11_style_sweep_via_experiment_cli(self, capsys):
        """``repro experiment --backend fastpath-system`` over the miss
        ratio runs end to end and agrees with the engine backend."""
        argv = [
            "experiment",
            "--rate", "40", "--servers", "2", "--n-keys", "20",
            "--requests", "800",
            "--factor", "r=0.002,0.005",
            "--json",
        ]
        assert main(argv + ["--backend", "fastpath-system"]) == 0
        fast = json.loads(capsys.readouterr().out)
        assert main(argv + ["--backend", "simulate"]) == 0
        engine = json.loads(capsys.readouterr().out)

        fast_cells = {
            cell["coords"]["miss_ratio"]: cell["metrics"]
            for cell in fast["cells"]
        }
        engine_cells = {
            cell["coords"]["miss_ratio"]: cell["metrics"]
            for cell in engine["cells"]
        }
        assert set(fast_cells) == set(engine_cells)
        for coord, fast_metrics in fast_cells.items():
            engine_metrics = engine_cells[coord]
            assert fast_metrics["mean"] == pytest.approx(
                engine_metrics["mean"], rel=0.35
            )
            assert fast_metrics["server_mean"] == pytest.approx(
                engine_metrics["server_mean"], rel=0.35
            )
            assert fast_metrics["database_mean"] == pytest.approx(
                engine_metrics["database_mean"], rel=0.5
            )
