"""Smoke tests: every shipped example must run clean.

Each example is executed in-process (import-free via runpy, isolated
argv/cwd) so documentation code cannot rot silently. The slowest
examples get reduced workloads through environment-free module-level
constants, so these stay within CI budgets.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example: {name}"
    argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


def test_example_inventory():
    """The README promises at least these examples."""
    expected = {
        "quickstart.py",
        "capacity_planning.py",
        "load_balance_advisor.py",
        "workload_fitting.py",
        "full_system_simulation.py",
        "cache_sizing.py",
        "tail_latency_and_redundancy.py",
        "failure_recovery.py",
        "failure_mitigation.py",
        "diurnal_provisioning.py",
    }
    assert expected <= set(ALL_EXAMPLES)


class TestQuickExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "T(150)" in out
        assert "logarithmic" in out

    def test_capacity_planning(self, capsys):
        out = run_example("capacity_planning.py", capsys)
        assert "rhoS" in out
        assert "servers" in out

    def test_cache_sizing(self, capsys):
        out = run_example("cache_sizing.py", capsys)
        assert "Miss-ratio curve" in out
        assert "Che prediction" in out

    def test_tail_latency_and_redundancy(self, capsys):
        out = run_example("tail_latency_and_redundancy.py", capsys)
        assert "p99.9" in out
        assert "redundant reads" in out


@pytest.mark.slow
class TestHeavyExamples:
    def test_load_balance_advisor(self, capsys):
        out = run_example("load_balance_advisor.py", capsys)
        assert "cliff utilization" in out

    def test_workload_fitting(self, capsys):
        out = run_example("workload_fitting.py", capsys)
        assert "Fitted workload model" in out

    def test_full_system_simulation(self, capsys):
        out = run_example("full_system_simulation.py", capsys)
        assert "measured miss ratio" in out

    def test_failure_recovery(self, capsys):
        out = run_example("failure_recovery.py", capsys)
        assert "crashes" in out
        assert "post-crash" in out

    def test_diurnal_provisioning(self, capsys):
        out = run_example("diurnal_provisioning.py", capsys)
        assert "Per-phase" in out
        assert "required muS" in out

    def test_failure_mitigation(self, capsys):
        out = run_example("failure_mitigation.py", capsys)
        assert "slowdown window" in out
        assert "overloaded-database transient" in out
        assert "<- window" in out
