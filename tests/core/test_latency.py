"""Tests for the assembled LatencyModel (Theorem 1)."""

import pytest

from repro.core import ClusterModel, LatencyModel, NetworkStage, ServerStage, WorkloadPattern
from repro.errors import ValidationError
from repro.units import kps, msec, usec


def paper_model() -> LatencyModel:
    return LatencyModel.build(
        workload=WorkloadPattern.facebook(),
        service_rate=kps(80),
        network_delay=usec(20),
        database_rate=1.0 / msec(1),
        miss_ratio=0.01,
    )


class TestTable3:
    def test_total_bounds(self):
        estimate = paper_model().estimate(150)
        # Paper Table 3: T(N) in [836 us, 1222 us].
        assert estimate.total_lower == pytest.approx(836e-6, rel=0.01)
        assert estimate.total_upper == pytest.approx(1222e-6, rel=0.01)

    def test_stage_values(self):
        estimate = paper_model().estimate(150)
        assert estimate.network == pytest.approx(20e-6)
        assert estimate.server.lower == pytest.approx(351e-6, rel=0.01)
        assert estimate.server.upper == pytest.approx(366e-6, rel=0.01)
        assert estimate.database == pytest.approx(836e-6, rel=0.01)

    def test_eq1_composition(self):
        estimate = paper_model().estimate(150)
        assert estimate.total_lower == max(
            estimate.network, estimate.server.lower, estimate.database
        )
        assert estimate.total_upper == pytest.approx(
            estimate.network + estimate.server.upper + estimate.database
        )

    def test_dominant_stage_is_database(self):
        assert paper_model().estimate(150).dominant_stage == "database"

    def test_dominant_stage_servers_when_no_misses(self):
        model = LatencyModel.build(
            workload=WorkloadPattern.facebook(),
            service_rate=kps(80),
            network_delay=usec(20),
        )
        assert model.estimate(150).dominant_stage == "servers"

    def test_breakdown_keys(self):
        breakdown = paper_model().estimate(150).breakdown()
        assert set(breakdown) == {"network", "servers", "database"}

    def test_str_is_informative(self):
        text = str(paper_model().estimate(150))
        assert "network" in text and "database" in text


class TestBuild:
    def test_no_database_stage_when_r_zero(self):
        model = LatencyModel.build(
            workload=WorkloadPattern.facebook(), service_rate=kps(80)
        )
        assert model.database_stage is None
        assert model.estimate(150).database == 0.0

    def test_requires_db_rate_with_misses(self):
        with pytest.raises(ValidationError):
            LatencyModel.build(
                workload=WorkloadPattern.facebook(),
                service_rate=kps(80),
                miss_ratio=0.01,
            )

    def test_cluster_requires_total_rate(self):
        with pytest.raises(ValidationError):
            LatencyModel.build(
                workload=WorkloadPattern.facebook(),
                service_rate=kps(80),
                cluster=ClusterModel.balanced(4, kps(80)),
            )

    def test_cluster_path_uses_heaviest(self):
        cluster = ClusterModel.hot_cold(4, kps(80), hottest_share=0.6)
        model = LatencyModel.build(
            workload=WorkloadPattern.facebook(),
            service_rate=kps(80),
            cluster=cluster,
            total_key_rate=kps(80),
        )
        assert model.server_stage.workload.rate == pytest.approx(kps(48))

    def test_default_network_is_zero(self):
        model = LatencyModel(
            ServerStage(WorkloadPattern.facebook(), kps(80))
        )
        assert model.estimate(10).network == 0.0

    def test_explicit_stages(self):
        model = LatencyModel(
            ServerStage(WorkloadPattern.facebook(), kps(80)),
            network_stage=NetworkStage(usec(50)),
        )
        assert model.estimate(10).network == pytest.approx(50e-6)


class TestMonotonicity:
    def test_totals_grow_with_n(self):
        model = paper_model()
        estimates = [model.estimate(n) for n in (1, 10, 100, 1000)]
        uppers = [e.total_upper for e in estimates]
        assert all(a < b for a, b in zip(uppers, uppers[1:]))

    def test_lower_never_exceeds_upper(self):
        model = paper_model()
        for n in (1, 5, 50, 500, 5000):
            estimate = model.estimate(n)
            assert estimate.total_lower <= estimate.total_upper

    def test_midpoint_between_bounds(self):
        estimate = paper_model().estimate(150)
        assert estimate.total_lower <= estimate.total_midpoint <= estimate.total_upper
