"""Tests for tail-latency estimation and the redundancy extension."""

import numpy as np
import pytest

from repro.core import (
    DatabaseStage,
    NetworkStage,
    QuantileBounds,
    RedundancyModel,
    ServerStage,
    TailLatencyModel,
    WorkloadPattern,
    redundancy_crossover,
    redundancy_speedup,
)
from repro.errors import StabilityError, ValidationError
from repro.simulation import sample_request_latencies, simulate_key_latencies
from repro.units import kps, msec, usec


def tail_model(*, miss_ratio=0.01) -> TailLatencyModel:
    stage = ServerStage(WorkloadPattern.facebook(), kps(80))
    database = DatabaseStage(1.0 / msec(1), miss_ratio) if miss_ratio else None
    return TailLatencyModel(
        stage, network_stage=NetworkStage(usec(20)), database_stage=database
    )


class TestServerTail:
    def test_cdf_bounds_ordered_and_valid(self):
        model = tail_model()
        for t in (1e-4, 3e-4, 1e-3):
            lower, upper = model.server_cdf_bounds(t, 150)
            assert 0.0 <= lower <= upper <= 1.0

    def test_quantile_bounds_ordered(self):
        model = tail_model()
        bounds = model.server_quantile_bounds(0.99, 150)
        assert isinstance(bounds, QuantileBounds)
        assert 0 < bounds.lower < bounds.upper
        assert bounds.midpoint == pytest.approx(
            (bounds.lower + bounds.upper) / 2
        )

    def test_p99_exceeds_median(self):
        model = tail_model()
        p50 = model.server_quantile_bounds(0.5, 150)
        p99 = model.server_quantile_bounds(0.99, 150)
        assert p99.lower > p50.lower
        assert p99.upper > p50.upper

    def test_quantile_bounds_bracket_simulation(self, rng):
        workload = WorkloadPattern.facebook()
        model = tail_model()
        pool = simulate_key_latencies(workload, kps(80), n_keys=400_000, rng=rng)
        sample = sample_request_latencies(
            [pool], [1.0], n_keys=150, n_requests=4000, rng=rng
        )
        for level in (0.5, 0.9, 0.99):
            bounds = model.server_quantile_bounds(level, 150)
            empirical = float(np.quantile(sample.server_max, level))
            assert bounds.lower * 0.9 < empirical < bounds.upper * 1.25

    def test_rejects_bad_args(self):
        model = tail_model()
        with pytest.raises(ValidationError):
            model.server_quantile_bounds(1.0, 150)
        with pytest.raises(ValidationError):
            model.server_quantile_bounds(0.9, 0)


class TestDatabaseTail:
    def test_cdf_closed_form(self):
        model = tail_model(miss_ratio=0.02)
        r, n = 0.02, 100
        t = 2e-3
        f_d = 1 - np.exp(-1000.0 * t)
        assert model.database_cdf(t, n) == pytest.approx(
            (1 - r + r * f_d) ** n
        )

    def test_cdf_at_zero_is_no_miss_probability(self):
        model = tail_model(miss_ratio=0.01)
        assert model.database_cdf(0.0, 150) == pytest.approx(0.99**150)

    def test_quantile_zero_below_no_miss_mass(self):
        model = tail_model(miss_ratio=0.001)
        # P(K = 0) for N = 10 is ~0.99 > 0.5, so the median is 0.
        assert model.database_quantile(0.5, 10) == 0.0

    def test_quantile_inverts_cdf(self):
        model = tail_model(miss_ratio=0.05)
        level = 0.99
        quantile = model.database_quantile(level, 150)
        assert model.database_cdf(quantile, 150) == pytest.approx(level)

    def test_exact_mean_above_eq23(self):
        # Our documented D2: eq. (23) underestimates the exact mean.
        model = tail_model(miss_ratio=0.01)
        database = DatabaseStage(1.0 / msec(1), 0.01)
        exact = model.database_mean_exact(150)
        approx = database.mean_latency(150)
        assert exact > approx
        assert exact == pytest.approx(approx * 1.28, rel=0.1)

    def test_exact_mean_matches_simulation(self, rng):
        model = tail_model(miss_ratio=0.01)
        sample = sample_request_latencies(
            [np.zeros(4)], [1.0], n_keys=150, n_requests=30_000, rng=rng,
            miss_ratio=0.01, database_rate=1.0 / msec(1),
        )
        assert model.database_mean_exact(150) == pytest.approx(
            float(sample.database_max.mean()), rel=0.05
        )

    def test_no_database_degenerates(self):
        model = tail_model(miss_ratio=0.0)
        assert model.database_cdf(1.0, 150) == 1.0
        assert model.database_quantile(0.99, 150) == 0.0
        assert model.database_mean_exact(150) == 0.0


class TestRequestTail:
    def test_bounds_ordered(self):
        model = tail_model()
        bounds = model.p99(150)
        assert bounds.lower <= bounds.upper

    def test_p999_above_p99(self):
        model = tail_model()
        assert model.p999(150).lower >= model.p99(150).lower

    def test_request_bounds_bracket_simulation(self, rng):
        workload = WorkloadPattern.facebook()
        model = tail_model()
        pool = simulate_key_latencies(workload, kps(80), n_keys=400_000, rng=rng)
        sample = sample_request_latencies(
            [pool], [1.0], n_keys=150, n_requests=20_000, rng=rng,
            network_delay=usec(20), miss_ratio=0.01,
            database_rate=1.0 / msec(1),
        )
        empirical = float(np.quantile(sample.total, 0.99))
        bounds = model.p99(150)
        assert bounds.lower * 0.9 < empirical < bounds.upper * 1.1


class TestRedundancy:
    def test_d1_reduces_to_base(self):
        workload = WorkloadPattern.facebook().with_rate(kps(20))
        base = ServerStage(workload, kps(80))
        model = RedundancyModel(workload, kps(80), 1)
        assert model.request_mean_upper(150) == pytest.approx(
            base.mean_latency_bounds(150).upper
        )

    def test_helps_at_low_load(self):
        workload = WorkloadPattern.facebook().with_rate(kps(10))
        speedup = redundancy_speedup(workload, kps(80), 150, 2)
        assert speedup is not None and speedup > 1.0

    def test_hurts_at_high_load(self):
        workload = WorkloadPattern.facebook().with_rate(kps(38))
        speedup = redundancy_speedup(workload, kps(80), 150, 2)
        assert speedup is not None and speedup < 1.0

    def test_unstable_when_replicas_saturate(self):
        workload = WorkloadPattern.facebook().with_rate(kps(50))
        assert redundancy_speedup(workload, kps(80), 150, 2) is None
        with pytest.raises(StabilityError):
            RedundancyModel(workload, kps(80), 2)

    def test_crossover_between_extremes(self):
        workload = WorkloadPattern.facebook()
        crossover = redundancy_crossover(workload, kps(80), 150, 2)
        assert 0.05 < crossover < 0.5
        # Below the crossover it helps; above it does not.
        below = redundancy_speedup(
            workload.with_rate(0.8 * crossover * kps(80)), kps(80), 150, 2
        )
        above = redundancy_speedup(
            workload.with_rate(min(1.2 * crossover, 0.49) * kps(80)),
            kps(80), 150, 2,
        )
        assert below is not None and below > 1.0
        assert above is None or above < 1.0

    def test_estimate_fields(self):
        workload = WorkloadPattern.facebook().with_rate(kps(10))
        estimate = RedundancyModel(workload, kps(80), 3).estimate(150)
        assert estimate.replication == 3
        assert estimate.utilization == pytest.approx(30 / 80)
        assert estimate.mean_upper > 0

    def test_rejects_bad_replication(self):
        workload = WorkloadPattern.facebook()
        with pytest.raises(ValidationError):
            RedundancyModel(workload, kps(80), 0)
        with pytest.raises(ValidationError):
            redundancy_crossover(workload, kps(80), 150, 1)

    def test_min_statistics_against_simulation(self, rng):
        """Fastest-of-two completion times: simulate two independent
        inflated servers and take the per-key min."""
        workload = WorkloadPattern.facebook().with_rate(kps(15))
        model = RedundancyModel(workload, kps(80), 2)
        inflated = workload.scaled(2.0)
        a = simulate_key_latencies(inflated, kps(80), n_keys=200_000, rng=rng)
        b = simulate_key_latencies(inflated, kps(80), n_keys=200_000, rng=rng)
        fastest = np.minimum(a, b)
        # The model uses the completion-time upper bound; the simulated
        # per-key min should be at or below it in mean.
        assert fastest.mean() < model.mean_key_latency() * 1.15
