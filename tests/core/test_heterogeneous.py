"""Tests for heterogeneous (mixed-hardware) clusters."""

import pytest

from repro.core import HeterogeneousCluster, WorkloadPattern
from repro.errors import ValidationError
from repro.units import kps


class TestConstruction:
    def test_basic(self):
        cluster = HeterogeneousCluster([0.5, 0.5], [kps(80), kps(40)])
        assert cluster.n_servers == 2
        assert cluster.total_capacity == kps(120)

    def test_rejects_misaligned(self):
        with pytest.raises(ValidationError):
            HeterogeneousCluster([0.5, 0.5], [kps(80)])

    def test_rejects_bad_rate(self):
        with pytest.raises(ValidationError):
            HeterogeneousCluster([1.0], [0.0])

    def test_shares_validated(self):
        with pytest.raises(ValidationError):
            HeterogeneousCluster([0.5, 0.6], [kps(80), kps(80)])


class TestBottleneck:
    def test_slow_server_dominates_even_with_equal_shares(self):
        cluster = HeterogeneousCluster([0.5, 0.5], [kps(80), kps(40)])
        # Equal shares but server 1 is half as fast: it is the bottleneck.
        assert cluster.bottleneck_index(kps(60)) == 1
        utils = cluster.utilizations(kps(60))
        assert utils[1] == pytest.approx(0.75)
        assert utils[0] == pytest.approx(0.375)

    def test_max_utilization(self):
        cluster = HeterogeneousCluster([0.5, 0.5], [kps(80), kps(40)])
        assert cluster.max_utilization(kps(60)) == pytest.approx(0.75)

    def test_share_can_outweigh_speed(self):
        # A fast server with a huge share can still be the bottleneck.
        cluster = HeterogeneousCluster([0.9, 0.1], [kps(80), kps(40)])
        assert cluster.bottleneck_index(kps(50)) == 0


class TestCapacityWeighting:
    def test_weighted_shares_equalize_utilization(self):
        cluster = HeterogeneousCluster([0.5, 0.5], [kps(80), kps(40)])
        weighted = cluster.capacity_weighted_shares()
        balanced = HeterogeneousCluster(weighted, [kps(80), kps(40)])
        utils = balanced.utilizations(kps(60))
        assert utils[0] == pytest.approx(utils[1])

    def test_weighted_shares_sum_to_one(self):
        cluster = HeterogeneousCluster(
            [0.3, 0.3, 0.4], [kps(80), kps(60), kps(40)]
        )
        assert sum(cluster.capacity_weighted_shares()) == pytest.approx(1.0)


class TestBottleneckStage:
    def test_stage_uses_bottleneck_parameters(self):
        cluster = HeterogeneousCluster([0.5, 0.5], [kps(80), kps(40)])
        stage = cluster.bottleneck_stage(kps(60), WorkloadPattern.facebook())
        assert stage.workload.rate == pytest.approx(kps(30))
        assert stage.utilization == pytest.approx(0.75)

    def test_latency_dominated_by_slow_server(self):
        workload = WorkloadPattern.facebook()
        mixed = HeterogeneousCluster([0.5, 0.5], [kps(80), kps(40)])
        uniform = HeterogeneousCluster([0.5, 0.5], [kps(80), kps(80)])
        slow = mixed.bottleneck_stage(kps(60), workload).mean_latency_bounds(150)
        fast = uniform.bottleneck_stage(kps(60), workload).mean_latency_bounds(150)
        assert slow.upper > fast.upper

    def test_capacity_weighting_beats_uniform_shares(self):
        """Routing by capacity strictly lowers the bottleneck latency
        for a mixed fleet — the actionable recommendation."""
        workload = WorkloadPattern.facebook()
        rates = [kps(80), kps(40)]
        total = kps(70)
        uniform = HeterogeneousCluster([0.5, 0.5], rates)
        weighted = HeterogeneousCluster(
            uniform.capacity_weighted_shares(), rates
        )
        naive = uniform.bottleneck_stage(total, workload).mean_latency_bounds(150)
        smart = weighted.bottleneck_stage(total, workload).mean_latency_bounds(150)
        assert smart.upper < naive.upper
