"""Tests for the quantitative analysis helpers (paper §5.2)."""

import math

import pytest

from repro.core import (
    DatabaseStage,
    ServerStage,
    WorkloadPattern,
    concurrency_scaling_check,
    database_regime_boundary,
    fit_linear_slope,
    fit_log_slope,
    goodness_of_linear_fit,
    marginal_benefit_fewer_keys,
    marginal_benefit_lower_miss_ratio,
    sweep_database_stage,
    sweep_server_stage,
)
from repro.errors import ValidationError
from repro.units import kps, msec


class TestFits:
    def test_linear_slope(self):
        assert fit_linear_slope([0, 1, 2], [1, 3, 5]) == pytest.approx(2.0)

    def test_log_slope(self):
        xs = [10, 100, 1000]
        ys = [5 + 2 * math.log(x) for x in xs]
        assert fit_log_slope(xs, ys) == pytest.approx(2.0)

    def test_log_slope_rejects_nonpositive_x(self):
        with pytest.raises(ValidationError):
            fit_log_slope([0, 1], [1, 2])

    def test_r2_perfect(self):
        assert goodness_of_linear_fit([0, 1, 2], [1, 3, 5]) == pytest.approx(1.0)

    def test_r2_poor_for_nonlinear(self):
        xs = list(range(1, 20))
        ys = [math.exp(x / 3) for x in xs]
        assert goodness_of_linear_fit(xs, ys) < 0.9

    def test_rejects_degenerate(self):
        with pytest.raises(ValidationError):
            fit_linear_slope([1], [1])
        with pytest.raises(ValidationError):
            fit_linear_slope([1, 1], [1, 2])


class TestSweeps:
    def test_server_sweep_rows(self, facebook_workload, service_rate):
        sweep = sweep_server_stage(
            "q",
            [0.0, 0.2, 0.4],
            lambda q: ServerStage(facebook_workload.with_q(q), service_rate),
            150,
        )
        assert sweep.parameter == "q"
        assert len(sweep.lower) == 3
        assert all(lo <= up for lo, up in zip(sweep.lower, sweep.upper))
        rows = sweep.as_rows()
        assert rows[0]["q"] == 0.0

    def test_server_sweep_monotone_in_q(self, facebook_workload, service_rate):
        sweep = sweep_server_stage(
            "q",
            [0.0, 0.25, 0.5],
            lambda q: ServerStage(facebook_workload.with_q(q), service_rate),
            150,
        )
        assert sweep.upper[0] < sweep.upper[1] < sweep.upper[2]

    def test_database_sweep(self):
        sweep = sweep_database_stage(
            "r",
            [0.001, 0.01, 0.1],
            lambda r: DatabaseStage(1.0 / msec(1), r),
            150,
        )
        assert sweep.lower == sweep.upper  # point estimate
        assert sweep.lower[0] < sweep.lower[2]

    def test_midpoint(self, facebook_workload, service_rate):
        sweep = sweep_server_stage(
            "q",
            [0.1],
            lambda q: ServerStage(facebook_workload.with_q(q), service_rate),
            150,
        )
        assert sweep.midpoint[0] == pytest.approx(
            (sweep.lower[0] + sweep.upper[0]) / 2
        )


class TestScalingLaws:
    def test_concurrency_theta_one_over_one_minus_q(self, facebook_workload, service_rate):
        # Paper Fig. 5: E[TS(N)] grows linearly in 1/(1-q).
        r2 = concurrency_scaling_check(
            facebook_workload, service_rate, 150, [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
        )
        assert r2 > 0.99

    def test_database_regime_boundary(self):
        assert database_regime_boundary(0.01) == pytest.approx(100.0)

    def test_regime_boundary_rejects_zero(self):
        with pytest.raises(ValidationError):
            database_regime_boundary(0.0)


class TestMarginalBenefits:
    def test_large_n_benefits_converge(self):
        # In the logarithmic regime halving N and halving r both save
        # ~ln(2)/muD — the paper's point is that N can be cut drastically
        # while r is already tiny, not that the marginal savings differ.
        database = DatabaseStage(1.0 / msec(1), 0.01)
        n = 10_000
        fewer = marginal_benefit_fewer_keys(database, n)
        lower = marginal_benefit_lower_miss_ratio(database, n)
        assert fewer == pytest.approx(lower, rel=0.01)
        assert fewer == pytest.approx(0.693 / 1000.0, rel=0.02)

    def test_small_n_prefers_lower_miss_ratio(self):
        database = DatabaseStage(1.0 / msec(1), 0.01)
        n = 4
        assert marginal_benefit_lower_miss_ratio(database, n) > \
            marginal_benefit_fewer_keys(database, n)

    def test_benefits_positive(self):
        database = DatabaseStage(1.0 / msec(1), 0.01)
        assert marginal_benefit_fewer_keys(database, 100) > 0
        assert marginal_benefit_lower_miss_ratio(database, 100) > 0

    def test_rejects_bad_factor(self):
        database = DatabaseStage(1.0 / msec(1), 0.01)
        with pytest.raises(ValidationError):
            marginal_benefit_fewer_keys(database, 100, factor=1.0)
        with pytest.raises(ValidationError):
            marginal_benefit_lower_miss_ratio(database, 100, factor=0.5)
