"""Tests for the three Theorem-1 stages."""

import math

import pytest

from repro.core import ClusterModel, DatabaseStage, NetworkStage, ServerStage, WorkloadPattern
from repro.errors import ValidationError
from repro.units import kps, msec, usec


class TestNetworkStage:
    def test_constant_in_n(self):
        stage = NetworkStage(usec(20))
        assert stage.mean_latency(1) == stage.mean_latency(10_000) == usec(20)

    def test_zero_delay(self):
        assert NetworkStage(0.0).mean_latency(5) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            NetworkStage(-1.0)

    def test_rejects_bad_count(self):
        with pytest.raises(ValidationError):
            NetworkStage(1e-6).mean_latency(0)


class TestServerStageBalanced:
    def test_table3_bounds(self, facebook_workload, service_rate):
        stage = ServerStage(facebook_workload, service_rate)
        estimate = stage.mean_latency_bounds(150)
        assert estimate.lower == pytest.approx(351e-6, rel=0.01)
        assert estimate.upper == pytest.approx(366e-6, rel=0.01)

    def test_bounds_ordering(self, facebook_workload, service_rate):
        estimate = ServerStage(facebook_workload, service_rate).mean_latency_bounds(150)
        assert estimate.lower < estimate.upper
        assert estimate.midpoint == pytest.approx(
            (estimate.lower + estimate.upper) / 2
        )
        assert estimate.width == pytest.approx(estimate.upper - estimate.lower)

    def test_upper_bound_eq14_form(self, facebook_workload, service_rate):
        stage = ServerStage(facebook_workload, service_rate)
        estimate = stage.mean_latency_bounds(150)
        expected = math.log(151) / estimate.decay_rate
        assert estimate.upper == pytest.approx(expected)

    def test_log_growth_in_n(self, facebook_workload, service_rate):
        stage = ServerStage(facebook_workload, service_rate)
        uppers = [stage.mean_latency_bounds(n).upper for n in (10, 100, 1000)]
        diffs = [b - a for a, b in zip(uppers, uppers[1:])]
        # Theta(log N): equal increments per decade.
        assert diffs[0] == pytest.approx(diffs[1], rel=0.05)

    def test_per_key_bounds(self, facebook_workload, service_rate):
        stage = ServerStage(facebook_workload, service_rate)
        lower, upper = stage.per_key_quantile_bounds(0.9)
        assert 0 <= lower < upper

    def test_utilization(self, facebook_workload, service_rate):
        stage = ServerStage(facebook_workload, service_rate)
        assert stage.utilization == pytest.approx(62.5 / 80.0)

    def test_exact_upper_refinement_above_rule(self, facebook_workload, service_rate):
        stage = ServerStage(facebook_workload, service_rate)
        rule = stage.mean_latency_bounds(150).upper
        exact = stage.mean_latency_upper_exact(150)
        assert exact > rule  # ln(N+1) < H_N

    def test_fractional_n(self, facebook_workload, service_rate):
        stage = ServerStage(facebook_workload, service_rate)
        estimate = stage.mean_latency_bounds(37.5)
        assert estimate.lower < estimate.upper

    def test_rejects_bad_n(self, facebook_workload, service_rate):
        with pytest.raises(ValidationError):
            ServerStage(facebook_workload, service_rate).mean_latency_bounds(0)


class TestServerStageUnbalanced:
    def test_prop1_widens_lower_bound(self, facebook_workload, service_rate):
        balanced = ServerStage(facebook_workload, service_rate)
        unbalanced = ServerStage(
            facebook_workload, service_rate, heaviest_share=0.5, balanced=False
        )
        n = 150
        assert unbalanced.mean_latency_bounds(n).lower < balanced.mean_latency_bounds(n).lower
        # Upper bound unchanged (same heaviest queue, same k).
        assert unbalanced.mean_latency_bounds(n).upper == pytest.approx(
            balanced.mean_latency_bounds(n).upper
        )

    def test_mixture_quantile_bounds_order(self, facebook_workload, service_rate):
        stage = ServerStage(
            facebook_workload, service_rate, heaviest_share=0.6, balanced=False
        )
        lower, upper = stage.mixture_quantile_bounds(0.99)
        assert lower <= upper

    def test_from_cluster_uses_heaviest(self, facebook_workload):
        cluster = ClusterModel.hot_cold(4, kps(80), hottest_share=0.7)
        stage = ServerStage.from_cluster(cluster, kps(80), facebook_workload)
        assert stage.workload.rate == pytest.approx(kps(56))
        assert stage.heaviest_share == pytest.approx(0.7)
        assert not stage.is_balanced

    def test_from_cluster_balanced(self, facebook_workload, balanced_cluster):
        stage = ServerStage.from_cluster(
            balanced_cluster, 4 * kps(62.5), facebook_workload
        )
        assert stage.is_balanced
        assert stage.workload.rate == pytest.approx(kps(62.5))

    def test_rejects_bad_share(self, facebook_workload, service_rate):
        with pytest.raises(ValidationError):
            ServerStage(facebook_workload, service_rate, heaviest_share=0.0)
        with pytest.raises(ValidationError):
            ServerStage(facebook_workload, service_rate, heaviest_share=1.5)


class TestDatabaseStage:
    def test_paper_td150(self):
        # Table 3: E[TD(150)] ~ 836 us with r=0.01, 1/muD = 1 ms.
        stage = DatabaseStage(1.0 / msec(1), 0.01)
        assert stage.mean_latency(150) == pytest.approx(836e-6, rel=0.01)

    def test_eq23_closed_form(self):
        mu, r, n = 1000.0, 0.02, 50
        stage = DatabaseStage(mu, r)
        p_any = 1 - (1 - r) ** n
        expected = p_any / mu * math.log(n * r / p_any + 1)
        assert stage.mean_latency(n) == pytest.approx(expected)

    def test_miss_probability_eq17(self):
        stage = DatabaseStage(1000.0, 0.01)
        assert stage.miss_probability(150) == pytest.approx(1 - 0.99**150)

    def test_expected_misses(self):
        assert DatabaseStage(1000.0, 0.01).expected_misses(150) == pytest.approx(1.5)

    def test_conditional_misses_eq18(self):
        stage = DatabaseStage(1000.0, 0.01)
        expected = 1.5 / (1 - 0.99**150)
        assert stage.expected_misses_given_any(150) == pytest.approx(expected)

    def test_zero_miss_ratio(self):
        stage = DatabaseStage(1000.0, 0.0)
        assert stage.mean_latency(1000) == 0.0
        assert stage.miss_probability(1000) == 0.0

    def test_conditional_undefined_at_zero_r(self):
        with pytest.raises(ValidationError):
            DatabaseStage(1000.0, 0.0).expected_misses_given_any(10)

    def test_asymptotic_form(self):
        stage = DatabaseStage(1000.0, 0.01)
        n = 1_000_000
        assert stage.mean_latency(n) == pytest.approx(
            stage.mean_latency_asymptotic(n), rel=1e-3
        )

    def test_regimes(self):
        stage = DatabaseStage(1000.0, 0.01)
        assert stage.regime(10) == "linear"
        assert stage.regime(1000) == "logarithmic"

    def test_utilization_scales_rate(self):
        light = DatabaseStage(1000.0, 0.01, utilization=0.0)
        loaded = DatabaseStage(1000.0, 0.01, utilization=0.5)
        assert loaded.mean_latency(100) == pytest.approx(
            2 * light.mean_latency(100)
        )

    def test_sojourn_distribution(self):
        stage = DatabaseStage(1000.0, 0.01, utilization=0.2)
        assert stage.sojourn_distribution().rate == pytest.approx(800.0)

    def test_with_miss_ratio(self):
        stage = DatabaseStage(1000.0, 0.01).with_miss_ratio(0.05)
        assert stage.miss_ratio == 0.05

    def test_monotone_in_r(self):
        mus = [DatabaseStage(1000.0, r).mean_latency(150) for r in (0.001, 0.01, 0.1)]
        assert mus[0] < mus[1] < mus[2]

    def test_monotone_in_n(self):
        stage = DatabaseStage(1000.0, 0.01)
        values = [stage.mean_latency(n) for n in (1, 10, 100, 1000)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            DatabaseStage(0.0, 0.01)
        with pytest.raises(ValidationError):
            DatabaseStage(1000.0, 1.5)
        with pytest.raises(ValidationError):
            DatabaseStage(1000.0, 0.1, utilization=1.0)
