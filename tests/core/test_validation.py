"""Tests for the programmatic validation API."""

import pytest

from repro.core import (
    LatencyModel,
    ValidationReport,
    WorkloadPattern,
    validate_configuration,
)
from repro.errors import ValidationError
from repro.units import kps, msec, usec


def paper_model() -> LatencyModel:
    return LatencyModel.build(
        workload=WorkloadPattern.facebook(),
        service_rate=kps(80),
        network_delay=usec(20),
        database_rate=1.0 / msec(1),
        miss_ratio=0.01,
    )


class TestValidateConfiguration:
    def test_paper_config_is_consistent(self):
        report = validate_configuration(
            paper_model(), n_keys=150, n_requests=5000,
            pool_size=200_000, seed=7,
        )
        assert isinstance(report, ValidationReport)
        assert report.all_consistent, str(report)
        assert {s.stage for s in report.stages} == {"TS(N)", "TD(N)", "T(N)"}

    def test_no_database_stage_omitted(self):
        model = LatencyModel.build(
            workload=WorkloadPattern.facebook(), service_rate=kps(80)
        )
        report = validate_configuration(
            model, n_keys=50, n_requests=2000, pool_size=100_000, seed=7
        )
        assert {s.stage for s in report.stages} == {"TS(N)", "T(N)"}

    def test_stage_lookup(self):
        report = validate_configuration(
            paper_model(), n_keys=50, n_requests=1000,
            pool_size=100_000, seed=7,
        )
        ts = report.stage("TS(N)")
        assert ts.theory_lower <= ts.theory_upper
        assert ts.relative_position > 0
        with pytest.raises(ValidationError):
            report.stage("bogus")

    def test_deterministic_with_seed(self):
        a = validate_configuration(
            paper_model(), n_keys=50, n_requests=1000,
            pool_size=50_000, seed=11,
        )
        b = validate_configuration(
            paper_model(), n_keys=50, n_requests=1000,
            pool_size=50_000, seed=11,
        )
        assert a.stage("T(N)").simulated == b.stage("T(N)").simulated

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            validate_configuration(paper_model(), n_keys=0)
        with pytest.raises(ValidationError):
            validate_configuration(paper_model(), n_keys=10, n_requests=10)

    def test_str_renders(self):
        report = validate_configuration(
            paper_model(), n_keys=20, n_requests=500,
            pool_size=50_000, seed=3,
        )
        text = str(report)
        assert "TS(N)" in text
        assert "validation over" in text

    @pytest.mark.parametrize("xi", [0.0, 0.3])
    def test_consistency_across_burst(self, xi):
        model = LatencyModel.build(
            workload=WorkloadPattern.facebook().with_xi(xi),
            service_rate=kps(80),
        )
        report = validate_configuration(
            model, n_keys=100, n_requests=2000, pool_size=150_000, seed=5
        )
        assert report.all_consistent, str(report)
