"""Tests for WorkloadPattern."""

import pytest

from repro.core import WorkloadPattern
from repro.core.workload import FACEBOOK_BURST, FACEBOOK_CONCURRENCY, FACEBOOK_KEY_RATE
from repro.distributions import Exponential, GeneralizedPareto
from repro.errors import ValidationError
from repro.units import kps


class TestConstruction:
    def test_facebook_defaults(self):
        workload = WorkloadPattern.facebook()
        assert workload.rate == FACEBOOK_KEY_RATE == kps(62.5)
        assert workload.xi == FACEBOOK_BURST == 0.15
        assert workload.q == FACEBOOK_CONCURRENCY == 0.1

    def test_poisson_shortcut(self):
        workload = WorkloadPattern.poisson(kps(10))
        assert workload.xi == 0.0
        assert workload.q == 0.0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValidationError):
            WorkloadPattern(rate=0.0)

    def test_rejects_bad_xi(self):
        with pytest.raises(ValidationError):
            WorkloadPattern(rate=1.0, xi=1.0)

    def test_rejects_q_one(self):
        with pytest.raises(ValidationError):
            WorkloadPattern(rate=1.0, q=1.0)


class TestRateConvention:
    def test_batch_rate(self):
        workload = WorkloadPattern(rate=1000.0, q=0.1)
        assert workload.batch_rate == pytest.approx(900.0)

    def test_mean_batch_size(self):
        workload = WorkloadPattern(rate=1000.0, q=0.2)
        assert workload.mean_batch_size == pytest.approx(1.25)

    def test_key_rate_identity(self):
        # lambda = E[X] / E[TX] (paper Table 1).
        workload = WorkloadPattern(rate=1000.0, q=0.25, xi=0.3)
        gap = workload.batch_gap_distribution()
        assert workload.mean_batch_size / gap.mean == pytest.approx(1000.0)

    def test_gap_distribution_is_gpd(self):
        workload = WorkloadPattern.facebook()
        gap = workload.batch_gap_distribution()
        assert isinstance(gap, GeneralizedPareto)
        assert gap.xi == 0.15
        assert gap.arrival_rate == pytest.approx(workload.batch_rate)

    def test_gap_override_used(self):
        override = Exponential(900.0)
        workload = WorkloadPattern(rate=1000.0, q=0.1, gap_override=override)
        assert workload.batch_gap_distribution() is override

    def test_gap_override_rate_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadPattern(rate=1000.0, q=0.1, gap_override=Exponential(500.0))


class TestSweepHelpers:
    def test_with_rate(self):
        workload = WorkloadPattern.facebook().with_rate(kps(10))
        assert workload.rate == kps(10)
        assert workload.xi == 0.15

    def test_with_xi(self):
        assert WorkloadPattern.facebook().with_xi(0.6).xi == 0.6

    def test_with_q(self):
        assert WorkloadPattern.facebook().with_q(0.5).q == 0.5

    def test_scaled(self):
        workload = WorkloadPattern(rate=100.0).scaled(2.0)
        assert workload.rate == 200.0

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            WorkloadPattern(rate=100.0).scaled(0.0)

    def test_utilization(self):
        workload = WorkloadPattern(rate=62.5)
        assert workload.utilization(80.0) == pytest.approx(0.78125)

    def test_frozen(self):
        workload = WorkloadPattern.facebook()
        with pytest.raises(Exception):
            workload.rate = 1.0
