"""Tests for ClusterModel (load shares {p_j})."""

import pytest

from repro.core import ClusterModel, WorkloadPattern
from repro.errors import ValidationError
from repro.units import kps


class TestConstruction:
    def test_balanced(self):
        cluster = ClusterModel.balanced(4, kps(80))
        assert cluster.n_servers == 4
        assert cluster.shares == (0.25, 0.25, 0.25, 0.25)
        assert cluster.is_balanced

    def test_explicit_shares(self):
        cluster = ClusterModel([0.5, 0.3, 0.2], kps(80))
        assert cluster.heaviest_share == 0.5
        assert not cluster.is_balanced

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValidationError):
            ClusterModel([0.5, 0.6], kps(80))

    def test_shares_must_be_positive(self):
        with pytest.raises(ValidationError):
            ClusterModel([1.0, 0.0], kps(80))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            ClusterModel([], kps(80))

    def test_rejects_bad_service_rate(self):
        with pytest.raises(ValidationError):
            ClusterModel([1.0], 0.0)

    def test_hot_cold(self):
        cluster = ClusterModel.hot_cold(4, kps(80), hottest_share=0.7)
        assert cluster.heaviest_share == pytest.approx(0.7)
        assert cluster.shares[1] == pytest.approx(0.1)
        assert sum(cluster.shares) == pytest.approx(1.0)

    def test_hot_cold_rejects_cold_hottest(self):
        with pytest.raises(ValidationError):
            ClusterModel.hot_cold(4, kps(80), hottest_share=0.1)

    def test_hot_cold_needs_two_servers(self):
        with pytest.raises(ValidationError):
            ClusterModel.hot_cold(1, kps(80), hottest_share=0.5)


class TestDerivedQuantities:
    def test_imbalance_factor_balanced(self):
        assert ClusterModel.balanced(4, kps(80)).imbalance_factor() == pytest.approx(1.0)

    def test_imbalance_factor_skewed(self):
        cluster = ClusterModel.hot_cold(4, kps(80), hottest_share=0.75)
        assert cluster.imbalance_factor() == pytest.approx(3.0)

    def test_server_rates(self):
        cluster = ClusterModel([0.5, 0.5], kps(80))
        assert cluster.server_rates(kps(100)) == [kps(50), kps(50)]

    def test_utilizations(self):
        cluster = ClusterModel([0.75, 0.25], kps(80))
        utils = cluster.utilizations(kps(80))
        assert utils[0] == pytest.approx(0.75)
        assert utils[1] == pytest.approx(0.25)

    def test_max_utilization(self):
        cluster = ClusterModel.hot_cold(4, kps(80), hottest_share=0.75)
        assert cluster.max_utilization(kps(80)) == pytest.approx(0.75)

    def test_server_workloads_preserve_shape(self):
        cluster = ClusterModel([0.6, 0.4], kps(80))
        pattern = WorkloadPattern.facebook()
        workloads = cluster.server_workloads(kps(100), pattern)
        assert workloads[0].rate == pytest.approx(kps(60))
        assert workloads[0].xi == pattern.xi
        assert workloads[0].q == pattern.q

    def test_heaviest_workload(self):
        cluster = ClusterModel([0.6, 0.4], kps(80))
        heavy = cluster.heaviest_workload(kps(100), WorkloadPattern.facebook())
        assert heavy.rate == pytest.approx(kps(60))


class TestFromKeyPopularity:
    def test_aggregates_mass(self):
        cluster = ClusterModel.from_key_popularity(
            popularity=[0.5, 0.3, 0.2],
            server_of_key=[0, 1, 0],
            n_servers=2,
            service_rate=kps(80),
        )
        assert cluster.shares[0] == pytest.approx(0.7)
        assert cluster.shares[1] == pytest.approx(0.3)

    def test_drops_empty_servers(self):
        cluster = ClusterModel.from_key_popularity(
            popularity=[0.5, 0.5],
            server_of_key=[0, 0],
            n_servers=3,
            service_rate=kps(80),
        )
        assert cluster.n_servers == 1
        assert cluster.shares[0] == pytest.approx(1.0)

    def test_rejects_misaligned(self):
        with pytest.raises(ValidationError):
            ClusterModel.from_key_popularity(
                popularity=[0.5], server_of_key=[0, 1], n_servers=2,
                service_rate=kps(80),
            )

    def test_rejects_out_of_range_server(self):
        with pytest.raises(ValidationError):
            ClusterModel.from_key_popularity(
                popularity=[1.0], server_of_key=[5], n_servers=2,
                service_rate=kps(80),
            )
