"""Tests for the §5.3 configuration advisor."""

import pytest

from repro.core import (
    ClusterModel,
    DatabaseStage,
    Severity,
    WorkloadPattern,
    advise,
)
from repro.units import kps, msec


def run_advisor(total_rate_kps: float, *, hottest=None, n_keys=150, database=None):
    workload = WorkloadPattern.facebook()
    if hottest is None:
        cluster = ClusterModel.balanced(4, kps(80))
    else:
        cluster = ClusterModel.hot_cold(4, kps(80), hottest_share=hottest)
    return advise(
        workload=workload,
        cluster=cluster,
        total_key_rate=kps(total_rate_kps),
        n_keys=n_keys,
        database=database,
    )


class TestUtilizationRule:
    def test_ok_when_far_below_cliff(self):
        report = run_advisor(100.0)  # 25 Kps per server, ~31% util
        rec = next(r for r in report.recommendations if r.rule == "utilization")
        assert rec.severity is Severity.OK

    def test_critical_when_past_cliff(self):
        report = run_advisor(250.0)  # 62.5 Kps per server, ~78% util
        rec = next(r for r in report.recommendations if r.rule == "utilization")
        assert rec.severity is Severity.CRITICAL

    def test_advisory_in_headroom_band(self):
        # Cliff ~76%; aim for ~73% utilization (within 5% headroom).
        report = run_advisor(4 * 80 * 0.73)
        rec = next(r for r in report.recommendations if r.rule == "utilization")
        assert rec.severity is Severity.ADVISORY

    def test_report_metadata(self):
        report = run_advisor(100.0)
        assert 0 < report.cliff_utilization < 1
        assert report.max_utilization == pytest.approx(100.0 / 320.0)


class TestLoadBalancingRule:
    def test_absent_for_balanced_cluster(self):
        report = run_advisor(100.0)
        assert not any(
            r.rule == "load-balancing" for r in report.recommendations
        )

    def test_critical_when_imbalance_causes_overload(self):
        # Hot server at 0.75 share of 80 Kps = 60 Kps -> 75% util (= cliff),
        # balanced would be 20 Kps -> 25%.
        report = run_advisor(80.0, hottest=0.76)
        rec = next(r for r in report.recommendations if r.rule == "load-balancing")
        assert rec.severity is Severity.CRITICAL

    def test_ok_when_hot_server_below_cliff(self):
        report = run_advisor(80.0, hottest=0.4)
        rec = next(r for r in report.recommendations if r.rule == "load-balancing")
        assert rec.severity is Severity.OK

    def test_advisory_when_overloaded_even_balanced(self):
        report = run_advisor(330.0, hottest=0.5)
        rec = next(r for r in report.recommendations if r.rule == "load-balancing")
        assert rec.severity is Severity.ADVISORY


class TestKeysVsMissRatioRule:
    def test_absent_without_database(self):
        report = run_advisor(100.0)
        assert not any(
            r.rule == "keys-vs-miss-ratio" for r in report.recommendations
        )

    def test_prefers_fewer_keys_for_large_n(self):
        database = DatabaseStage(1.0 / msec(1), 0.01)
        report = run_advisor(100.0, n_keys=10_000, database=database)
        rec = next(
            r for r in report.recommendations if r.rule == "keys-vs-miss-ratio"
        )
        assert "keys per request" in rec.message

    def test_prefers_cache_tuning_for_small_n(self):
        database = DatabaseStage(1.0 / msec(1), 0.01)
        report = run_advisor(100.0, n_keys=4, database=database)
        rec = next(
            r for r in report.recommendations if r.rule == "keys-vs-miss-ratio"
        )
        assert "cache tuning" in rec.message


class TestReport:
    def test_worst_severity(self):
        report = run_advisor(250.0)
        assert report.worst_severity is Severity.CRITICAL

    def test_worst_severity_ok(self):
        report = run_advisor(50.0)
        assert report.worst_severity is Severity.OK

    def test_str_renders(self):
        text = str(run_advisor(100.0))
        assert "cliff utilization" in text
