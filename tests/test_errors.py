"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CacheCapacityError,
    CacheError,
    ConfigError,
    ConvergenceError,
    ProtocolError,
    ReproError,
    SimulationError,
    StabilityError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            ValidationError,
            StabilityError,
            ConvergenceError,
            SimulationError,
            CacheError,
            CacheCapacityError,
            ProtocolError,
            ConfigError,
        ],
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_cache_capacity_is_cache_error(self):
        assert issubclass(CacheCapacityError, CacheError)

    def test_protocol_is_cache_error(self):
        assert issubclass(ProtocolError, CacheError)


class TestStabilityError:
    def test_records_utilization(self):
        err = StabilityError(1.25)
        assert err.utilization == 1.25
        assert "1.25" in str(err)

    def test_custom_message(self):
        err = StabilityError(1.0, "saturated")
        assert str(err) == "saturated"


class TestConvergenceError:
    def test_records_diagnostics(self):
        err = ConvergenceError("no convergence", last_value=0.5, iterations=100)
        assert err.last_value == 0.5
        assert err.iterations == 100

    def test_diagnostics_optional(self):
        err = ConvergenceError("failed")
        assert err.last_value is None
        assert err.iterations is None
