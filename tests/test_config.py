"""Tests for the experiment-config module."""

import pytest

from repro.config import ExperimentConfig
from repro.errors import ConfigError


class TestRoundTrip:
    def test_json_roundtrip(self):
        config = ExperimentConfig.paper_section_5_1()
        clone = ExperimentConfig.from_json(config.to_json())
        assert clone == config

    def test_file_roundtrip(self, tmp_path):
        config = ExperimentConfig.paper_section_5_1()
        path = tmp_path / "exp.json"
        config.save(path)
        assert ExperimentConfig.load(path) == config

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            ExperimentConfig.from_json('{"key_rate": 1.0, "bogus": 2}')

    def test_rejects_missing_required(self):
        with pytest.raises(ConfigError):
            ExperimentConfig.from_json('{"burst_xi": 0.15}')

    def test_rejects_non_object(self):
        with pytest.raises(ConfigError):
            ExperimentConfig.from_json("[1, 2, 3]")

    def test_rejects_bad_json(self):
        with pytest.raises(ConfigError):
            ExperimentConfig.from_json("{nope}")


class TestBuilders:
    def test_paper_config_reproduces_table3(self):
        model = ExperimentConfig.paper_section_5_1().latency_model()
        estimate = model.estimate(150)
        assert estimate.server.upper == pytest.approx(366e-6, rel=0.02)
        assert estimate.database == pytest.approx(836e-6, rel=0.02)

    def test_workload_fields(self):
        config = ExperimentConfig.paper_section_5_1()
        workload = config.workload()
        assert workload.rate == 62_500.0
        assert workload.xi == 0.15

    def test_balanced_cluster_default(self):
        config = ExperimentConfig(key_rate=1000.0, n_servers=3)
        cluster = config.cluster()
        assert cluster.is_balanced
        assert cluster.n_servers == 3

    def test_explicit_shares(self):
        config = ExperimentConfig(
            key_rate=1000.0, n_servers=2, shares=[0.7, 0.3]
        )
        assert config.cluster().heaviest_share == pytest.approx(0.7)

    def test_share_length_mismatch(self):
        config = ExperimentConfig(key_rate=1000.0, n_servers=3, shares=[0.5, 0.5])
        with pytest.raises(ConfigError):
            config.cluster()

    def test_tail_model(self):
        tail = ExperimentConfig.paper_section_5_1().tail_model()
        bounds = tail.p99(150)
        assert bounds.lower < bounds.upper

    def test_tail_model_requires_db_rate(self):
        config = ExperimentConfig(key_rate=1000.0, miss_ratio=0.01)
        with pytest.raises(ConfigError):
            config.tail_model()

    def test_simulator_runs(self):
        config = ExperimentConfig(
            key_rate=500.0,
            n_servers=2,
            service_rate=80_000.0,
            n_keys=5,
            n_requests=50,
            seed=3,
        )
        results = config.simulator().run(n_requests=50)
        assert results.total.count == 50

    def test_simulator_induces_configured_rate(self):
        config = ExperimentConfig(
            key_rate=2000.0, n_servers=4, n_keys=10, service_rate=80_000.0
        )
        sim = config.simulator()
        induced = sim.induced_server_workload(0)
        assert induced.rate == pytest.approx(2000.0)
