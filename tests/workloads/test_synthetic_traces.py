"""Tests for synthetic request streams and trace persistence."""

import numpy as np
import pytest

from repro.distributions import Geometric, Zipf
from repro.errors import ValidationError
from repro.workloads import KeyTrace, Request, RequestStream, empirical_shares
from repro.workloads.synthetic import per_server_key_rates


class TestRequestStream:
    def test_take_materializes(self):
        stream = RequestStream(100.0, 5, Zipf(50, 1.0), seed=1)
        requests = stream.take(20)
        assert len(requests) == 20
        assert all(r.n_keys == 5 for r in requests)
        times = [r.time for r in requests]
        assert times == sorted(times)

    def test_rate(self):
        stream = RequestStream(1000.0, 1, Zipf(10, 1.0), seed=2)
        requests = stream.take(2000)
        span = requests[-1].time - requests[0].time
        assert 2000 / span == pytest.approx(1000.0, rel=0.1)

    def test_random_key_counts(self):
        stream = RequestStream(10.0, Geometric(0.5), Zipf(10, 1.0), seed=3)
        counts = [r.n_keys for r in stream.take(500)]
        assert np.mean(counts) == pytest.approx(2.0, rel=0.15)

    def test_key_ranks_in_catalog(self):
        stream = RequestStream(10.0, 10, Zipf(25, 1.0), seed=4)
        for request in stream.take(50):
            assert all(1 <= rank <= 25 for rank in request.key_ranks)

    def test_key_names(self):
        request = Request(request_id=0, time=0.0, key_ranks=(3, 7))
        assert request.key_names() == ["item:3", "item:7"]

    def test_deterministic_with_seed(self):
        a = RequestStream(10.0, 3, Zipf(10, 1.0), seed=9).take(10)
        b = RequestStream(10.0, 3, Zipf(10, 1.0), seed=9).take(10)
        assert [r.key_ranks for r in a] == [r.key_ranks for r in b]

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            RequestStream(0.0, 5, Zipf(10, 1.0))
        with pytest.raises(ValidationError):
            RequestStream(1.0, 0, Zipf(10, 1.0))
        with pytest.raises(ValidationError):
            RequestStream(1.0, "five", Zipf(10, 1.0))
        stream = RequestStream(1.0, 1, Zipf(10, 1.0))
        with pytest.raises(ValidationError):
            stream.take(0)


class TestShareMeasurement:
    def test_empirical_shares(self):
        requests = [
            Request(0, 0.0, (1, 1, 2)),
            Request(1, 1.0, (2, 3, 3)),
        ]
        # ranks 1,2 -> server 0; rank 3 -> server 1.
        shares = empirical_shares(requests, [0, 0, 1], 2)
        assert shares[0] == pytest.approx(4 / 6)
        assert shares[1] == pytest.approx(2 / 6)

    def test_rates_positive_span_required(self):
        requests = [Request(0, 0.0, (1,))]
        with pytest.raises(ValidationError):
            per_server_key_rates(requests, [0], 1)


class TestKeyTrace:
    def test_basic_stats(self):
        trace = KeyTrace(np.array([0.0, 1.0, 2.0, 4.0]))
        assert trace.n_keys == 4
        assert trace.duration == 4.0
        assert trace.mean_rate == pytest.approx(0.75)
        assert list(trace.gaps()) == [1.0, 1.0, 2.0]

    def test_rejects_unsorted(self):
        with pytest.raises(ValidationError):
            KeyTrace(np.array([1.0, 0.5]))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            KeyTrace(np.array([]))

    def test_to_batches_groups_concurrent(self):
        trace = KeyTrace(np.array([0.0, 1e-8, 1e-2, 2e-2, 2e-2 + 1e-8]))
        batches = trace.to_batches()
        assert [b.size for b in batches] == [2, 1, 2]

    def test_csv_roundtrip(self, tmp_path):
        trace = KeyTrace(np.array([0.0, 0.5, 1.25]))
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = KeyTrace.load_csv(path)
        assert np.allclose(loaded.timestamps, trace.timestamps)

    def test_csv_text_roundtrip(self):
        text = "timestamp_seconds\r\n0.0\r\n1.5\r\n"
        trace = KeyTrace.from_csv_text(text)
        assert trace.n_keys == 2

    def test_csv_missing_header_rejected(self):
        with pytest.raises(ValidationError):
            KeyTrace.from_csv_text("0.0\n1.0\n")

    def test_csv_bad_row_rejected(self):
        with pytest.raises(ValidationError):
            KeyTrace.from_csv_text("timestamp_seconds\nnot-a-number\n")

    def test_merge(self):
        a = KeyTrace(np.array([0.0, 2.0]))
        b = KeyTrace(np.array([1.0, 3.0]))
        merged = KeyTrace.merge([a, b])
        assert list(merged.timestamps) == [0.0, 1.0, 2.0, 3.0]

    def test_merge_empty_rejected(self):
        with pytest.raises(ValidationError):
            KeyTrace.merge([])

    def test_fit_workload(self, rng):
        gaps = rng.exponential(1e-3, 20_000)
        trace = KeyTrace(np.cumsum(gaps))
        fit = trace.fit_workload()
        assert fit.rate == pytest.approx(1000.0, rel=0.05)
        assert fit.xi < 0.1
