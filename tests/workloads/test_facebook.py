"""Tests for the Facebook/ETC statistical workload model."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.units import kps
from repro.workloads import FacebookWorkload, facebook_pattern, popularity_shares
from repro.distributions import Zipf


class TestDefaults:
    def test_published_headline_numbers(self):
        workload = FacebookWorkload.build()
        assert workload.pattern.rate == kps(62.5)
        assert workload.pattern.xi == 0.15
        assert workload.pattern.q == pytest.approx(0.1159)

    def test_facebook_pattern_shortcut(self):
        pattern = facebook_pattern()
        assert pattern.q == 0.1
        assert pattern.xi == 0.15

    def test_size_models_positive_means(self):
        workload = FacebookWorkload.build()
        assert workload.key_size.mean == pytest.approx(31.0, rel=0.01)
        assert workload.value_size.mean == pytest.approx(330.0, rel=0.01)


class TestSampling:
    def test_sample_item_bytes(self, rng):
        workload = FacebookWorkload.build()
        key_bytes, value_bytes = workload.sample_item_bytes(rng)
        assert key_bytes >= 1
        assert value_bytes >= 1

    def test_key_rank_in_catalog(self, rng):
        workload = FacebookWorkload.build(n_items=100)
        for _ in range(50):
            assert 1 <= workload.sample_key_rank(rng) <= 100

    def test_head_concentration_is_skewed(self):
        workload = FacebookWorkload.build(n_items=100_000)
        assert workload.head_concentration(0.01) > 0.3


class TestTimestampGeneration:
    def test_duration_respected(self, rng):
        workload = FacebookWorkload.build()
        times = workload.generate_key_timestamps(0.05, rng)
        assert times.size > 0
        assert float(times.max()) < 0.05
        assert np.all(np.diff(times) >= 0)

    def test_rate_approximately_lambda(self, rng):
        workload = FacebookWorkload.build()
        duration = 0.5
        times = workload.generate_key_timestamps(duration, rng)
        assert times.size / duration == pytest.approx(kps(62.5), rel=0.1)

    def test_concurrent_keys_share_timestamps(self, rng):
        workload = FacebookWorkload.build()
        times = workload.generate_key_timestamps(0.2, rng)
        gaps = np.diff(times)
        assert np.mean(gaps == 0.0) == pytest.approx(
            workload.pattern.q, abs=0.05
        )

    def test_rejects_bad_duration(self, rng):
        with pytest.raises(ValidationError):
            FacebookWorkload.build().generate_key_timestamps(0.0, rng)


class TestPopularityShares:
    def test_aggregation(self):
        popularity = Zipf(4, 1.0)
        shares = popularity_shares(popularity, [0, 0, 1, 1], 2)
        probs = popularity.probabilities
        assert shares[0] == pytest.approx(probs[0] + probs[1])
        assert sum(shares) == pytest.approx(1.0)

    def test_rejects_partial_coverage(self):
        with pytest.raises(ValidationError):
            popularity_shares(Zipf(4, 1.0), [0, 1], 2)
