"""Unit tests for the declarative fault-schedule subsystem."""

import numpy as np
import pytest

from repro.errors import ConfigError, ValidationError
from repro.faults import (
    DatabaseOverload,
    FaultSchedule,
    FaultWindow,
    RequestRecord,
    ServerPause,
    ServerSlowdown,
    ShareShift,
    trajectory,
    window_effect,
)


class TestWindows:
    def test_active_half_open(self):
        window = FaultWindow(start=1.0, duration=2.0)
        assert not window.active(0.999)
        assert window.active(1.0)
        assert window.active(2.999)
        assert not window.active(3.0)
        assert window.end == pytest.approx(3.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValidationError):
            FaultWindow(start=-0.1, duration=1.0)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValidationError):
            FaultWindow(start=0.0, duration=0.0)

    def test_slowdown_factor_range(self):
        with pytest.raises(ValidationError):
            ServerSlowdown(start=0.0, duration=1.0, factor=0.0)
        with pytest.raises(ValidationError):
            ServerSlowdown(start=0.0, duration=1.0, factor=1.5)
        ServerSlowdown(start=0.0, duration=1.0, factor=1.0)  # boundary ok

    def test_overload_factor_range(self):
        with pytest.raises(ValidationError):
            DatabaseOverload(start=0.0, duration=1.0, factor=-0.5)

    def test_share_shift_must_sum_to_one(self):
        with pytest.raises(ValidationError):
            ShareShift(start=0.0, duration=1.0, shares=(0.5, 0.4))
        shift = ShareShift(start=0.0, duration=1.0, shares=[0.5, 0.5])
        assert shift.shares == (0.5, 0.5)  # coerced to tuple

    def test_negative_server_index_rejected(self):
        with pytest.raises(ValidationError):
            ServerPause(start=0.0, duration=1.0, server=-1)


class TestScheduleQueries:
    def test_empty_schedule_is_identity(self):
        schedule = FaultSchedule()
        assert schedule.is_empty
        assert schedule.horizon == 0.0
        assert schedule.server_rate_factor(0, 1.0) == 1.0
        assert schedule.database_rate_factor(1.0) == 1.0
        assert schedule.server_pause_end(0, 1.0) == 1.0
        assert schedule.shares_at(1.0) is None
        assert schedule.is_vectorizable

    def test_overlapping_slowdowns_multiply(self):
        schedule = FaultSchedule(
            (
                ServerSlowdown(start=0.0, duration=2.0, factor=0.5),
                ServerSlowdown(start=1.0, duration=2.0, factor=0.5, server=0),
            )
        )
        assert schedule.server_rate_factor(0, 0.5) == pytest.approx(0.5)
        assert schedule.server_rate_factor(0, 1.5) == pytest.approx(0.25)
        assert schedule.server_rate_factor(1, 1.5) == pytest.approx(0.5)
        assert schedule.server_rate_factor(1, 2.5) == pytest.approx(1.0)

    def test_chained_pauses_union(self):
        schedule = FaultSchedule(
            (
                ServerPause(start=1.0, duration=1.0),
                ServerPause(start=1.5, duration=1.0, server=0),
            )
        )
        # At t=1.2 the first pause runs to 2.0, where the second is
        # still active and extends the stall to 2.5.
        assert schedule.server_pause_end(0, 1.2) == pytest.approx(2.5)
        assert schedule.server_pause_end(1, 1.2) == pytest.approx(2.0)
        assert schedule.server_pause_end(0, 3.0) == pytest.approx(3.0)

    def test_latest_starting_share_shift_wins(self):
        schedule = FaultSchedule(
            (
                ShareShift(start=0.0, duration=3.0, shares=(0.9, 0.1)),
                ShareShift(start=1.0, duration=1.0, shares=(0.2, 0.8)),
            )
        )
        assert schedule.shares_at(0.5) == (0.9, 0.1)
        assert schedule.shares_at(1.5) == (0.2, 0.8)
        assert schedule.shares_at(2.5) == (0.9, 0.1)
        assert schedule.shares_at(4.0) is None

    def test_vectorized_factors_match_point_queries(self):
        schedule = FaultSchedule(
            (
                ServerSlowdown(start=0.5, duration=1.0, factor=0.5, server=1),
                DatabaseOverload(start=1.0, duration=1.0, factor=0.25),
            )
        )
        times = np.linspace(0.0, 3.0, 61)
        for j in (0, 1):
            vectorized = schedule.server_rate_factors(j, times)
            points = [schedule.server_rate_factor(j, t) for t in times]
            assert vectorized.tolist() == pytest.approx(points)
        assert schedule.database_rate_factors(times).tolist() == pytest.approx(
            [schedule.database_rate_factor(t) for t in times]
        )

    def test_vectorizable_flag(self):
        rate_only = FaultSchedule(
            (
                ServerSlowdown(start=0.0, duration=1.0),
                DatabaseOverload(start=0.0, duration=1.0),
            )
        )
        assert rate_only.is_vectorizable
        assert not rate_only.extended(
            ServerPause(start=0.0, duration=1.0)
        ).is_vectorizable

    def test_validate_for_rejects_out_of_range_server(self):
        schedule = FaultSchedule.single(
            ServerSlowdown(start=0.0, duration=1.0, server=4)
        )
        schedule.validate_for(5)
        with pytest.raises(ValidationError):
            schedule.validate_for(4)

    def test_validate_for_rejects_wrong_share_length(self):
        schedule = FaultSchedule.single(
            ShareShift(start=0.0, duration=1.0, shares=(0.5, 0.5))
        )
        schedule.validate_for(2)
        with pytest.raises(ValidationError):
            schedule.validate_for(3)

    def test_horizon(self):
        schedule = FaultSchedule(
            (
                ServerPause(start=0.0, duration=1.0),
                DatabaseOverload(start=2.0, duration=3.0),
            )
        )
        assert schedule.horizon == pytest.approx(5.0)


class TestSerialization:
    def _full_schedule(self):
        return FaultSchedule(
            (
                ServerSlowdown(start=0.0, duration=1.0, factor=0.5, server=1),
                ServerPause(start=1.0, duration=0.5),
                DatabaseOverload(start=2.0, duration=1.0, factor=0.25),
                ShareShift(start=3.0, duration=1.0, shares=(0.7, 0.3)),
            )
        )

    def test_dict_round_trip_all_kinds(self):
        schedule = self._full_schedule()
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_json_round_trip(self):
        schedule = self._full_schedule()
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_file_round_trip(self, tmp_path):
        schedule = self._full_schedule()
        path = tmp_path / "faults.json"
        schedule.save(path)
        assert FaultSchedule.load(path) == schedule

    def test_kind_discriminators_present(self):
        kinds = [w["kind"] for w in self._full_schedule().to_dict()["windows"]]
        assert kinds == [
            "server-slowdown",
            "server-pause",
            "database-overload",
            "share-shift",
        ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule.from_dict(
                {"windows": [{"kind": "meteor-strike", "start": 0, "duration": 1}]}
            )

    def test_unknown_window_key_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule.from_dict(
                {
                    "windows": [
                        {
                            "kind": "server-pause",
                            "start": 0,
                            "duration": 1,
                            "bogus": 2,
                        }
                    ]
                }
            )

    def test_unknown_schedule_key_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule.from_dict({"windows": [], "bogus": 1})


def _record(completed, database=0.0, total=1e-3):
    return RequestRecord(
        born=completed - total,
        completed=completed,
        total=total,
        server=total / 2,
        database=database,
        network=0.0,
    )


class TestTrajectory:
    def test_buckets_cover_completions(self):
        log = [_record(0.1 * i, total=1e-3 * (i + 1)) for i in range(50)]
        points = trajectory(log, n_buckets=5)
        assert sum(p.count for p in points) == 50
        assert all(p.start < p.end for p in points)
        # Totals grow with completion time, so bucket means must too.
        means = [p.mean_total for p in points]
        assert means == sorted(means)

    def test_empty_log(self):
        assert trajectory([]) == []

    def test_empty_buckets_dropped(self):
        log = [_record(0.0), _record(10.0)]
        points = trajectory(log, n_buckets=10)
        assert len(points) == 2

    def test_rejects_bad_bucket_count(self):
        with pytest.raises(ValidationError):
            trajectory([_record(0.0)], n_buckets=0)


class TestWindowEffect:
    def test_phases_split_on_completion_time(self):
        log = (
            [_record(t, database=1e-4) for t in np.linspace(0.0, 0.9, 10)]
            + [_record(t, database=5e-3) for t in np.linspace(1.0, 1.9, 10)]
            + [_record(t, database=1e-4) for t in np.linspace(2.0, 2.9, 10)]
        )
        effect = window_effect(log, window_start=1.0, window_end=2.0)
        assert effect["during"] > 10 * effect["before"]
        assert effect["after"] == pytest.approx(effect["before"])

    def test_settle_excludes_drain(self):
        log = [_record(2.1, database=9e-3), _record(3.0, database=1e-4)]
        effect = window_effect(
            log, window_start=1.0, window_end=2.0, settle=0.5
        )
        assert effect["after"] == pytest.approx(1e-4)

    def test_empty_phase_is_nan(self):
        effect = window_effect(
            [_record(0.5)], window_start=1.0, window_end=2.0
        )
        assert np.isnan(effect["during"])
        assert np.isnan(effect["after"])

    def test_rejects_bad_window_or_stage(self):
        with pytest.raises(ValidationError):
            window_effect([], window_start=2.0, window_end=1.0)
        with pytest.raises(ValidationError):
            window_effect([], window_start=0.0, window_end=1.0, stage="gpu")
