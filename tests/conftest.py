"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusterModel, WorkloadPattern
from repro.units import kps


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; reseeded per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def facebook_workload() -> WorkloadPattern:
    """The paper's §5.1 workload: 62.5 Kps, xi=0.15, q=0.1."""
    return WorkloadPattern.facebook()


@pytest.fixture
def service_rate() -> float:
    """The paper's measured Memcached service rate muS = 80 Kps."""
    return kps(80)


@pytest.fixture
def balanced_cluster(service_rate: float) -> ClusterModel:
    """The paper's 4-server balanced testbed."""
    return ClusterModel.balanced(4, service_rate)
