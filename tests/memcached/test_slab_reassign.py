"""Tests for slab page reassignment (the automover)."""

import pytest

from repro.errors import CacheCapacityError, ValidationError
from repro.memcached import CacheStore, SlabAllocator
from repro.memcached.slab import DEFAULT_PAGE_SIZE

MIB = 1 << 20


class TestAllocatorReassign:
    def test_moves_capacity_between_classes(self):
        allocator = SlabAllocator(2 * MIB)
        small = allocator.class_index_for(100)
        large = allocator.class_index_for(DEFAULT_PAGE_SIZE // 2)
        # Fill both pages with small items.
        allocator.store("a", 100)
        assert allocator.free_pages == 1
        evicted = allocator.reassign_page(small, large)
        # One small page freed; "a" may or may not be evicted depending
        # on free chunks, but the page moved.
        stats = {s.chunk_size: s for s in allocator.stats()}
        assert allocator._classes[small].pages == 0
        assert allocator._classes[large].pages == 1
        assert isinstance(evicted, list)

    def test_eviction_on_reassign(self):
        allocator = SlabAllocator(MIB)  # single page
        chunk = allocator.chunk_sizes[0]
        small = 0
        per_page = DEFAULT_PAGE_SIZE // chunk
        for i in range(per_page):
            allocator.store(f"k{i}", chunk)
        large = allocator.class_index_for(DEFAULT_PAGE_SIZE // 2)
        evicted = allocator.reassign_page(small, large)
        assert len(evicted) == per_page
        assert len(allocator) == 0

    def test_reassign_without_pages_rejected(self):
        allocator = SlabAllocator(2 * MIB)
        with pytest.raises(CacheCapacityError):
            allocator.reassign_page(0, 1)

    def test_same_class_rejected(self):
        allocator = SlabAllocator(2 * MIB)
        with pytest.raises(ValidationError):
            allocator.reassign_page(0, 0)

    def test_out_of_range_rejected(self):
        allocator = SlabAllocator(2 * MIB)
        with pytest.raises(ValidationError):
            allocator.reassign_page(0, 10_000)

    def test_suggest_none_when_quiet(self):
        allocator = SlabAllocator(4 * MIB)
        allocator.store("a", 100)
        assert allocator.suggest_reassignment() is None


class TestStoreReassignAndAutomover:
    def test_store_reassign_drops_items(self):
        store = CacheStore(MIB)
        value = bytes(100)
        # Fixed-width keys keep every item in a single slab class.
        i = 0
        while store.stats.evictions == 0 and i < 100_000:
            store.set(f"k{i:06d}", value)
            i += 1
        src = store.slab_class_index_for(len("k000000") + 100 + 48)
        dst = src + 1
        count = store.reassign_slab_page(src, dst)
        assert count > 0
        # Store metadata consistent: every remaining key readable.
        for key in store.keys():
            assert store.get(key) is not None

    def test_automover_cures_calcification(self):
        """All pages captured by the small class; large items evict
        endlessly. The automover should hand them a page."""
        store = CacheStore(2 * MIB)
        small_value = bytes(100)
        for i in range(40_000):
            store.set(f"s{i}", small_value)
            if store.stats.evictions > 0:
                break
        # Now large items cannot allocate at all (calcification).
        large_value = bytes(DEFAULT_PAGE_SIZE // 2 - 200)
        with pytest.raises(CacheCapacityError):
            store.set("big", large_value)
        # Record the pressure: the failed allocation did not evict, so
        # drive pressure via the small class's own evictions and then
        # manually move a page to the large class.
        src = store.slab_class_index_for(len(small_value) + 2 + 48)
        dst = store.slab_class_index_for(len(large_value) + 3 + 48)
        store.reassign_slab_page(src, dst)
        store.set("big", large_value)  # now fits
        assert store.get("big") is not None

    def test_automover_moves_page_toward_pressure(self):
        store = CacheStore(4 * MIB)
        # A donor class with two mostly-empty pages...
        big = bytes(DEFAULT_PAGE_SIZE // 3)
        store.set("placeholder-a", big)
        store.set("placeholder-b", big)
        donor_class = store.slab_class_index_for(
            len("placeholder-a") + len(big) + 48
        )
        # Give the donor its second page explicitly: its chunks_per_page
        # may be small, so add items until two pages exist.
        j = 0
        while store._slabs._classes[donor_class].pages < 2 and j < 64:
            store.set(f"pad{j:03d}", big)
            j += 1
        # ...and a small class under heavy eviction pressure.
        value = bytes(100)
        i = 0
        while store.stats.evictions < 5 and i < 200_000:
            store.set(f"k{i:06d}", value)
            i += 1
        assert store.stats.evictions >= 5
        small_class = store.slab_class_index_for(len("k000000") + 100 + 48)
        pages_before = store._slabs._classes[small_class].pages
        assert store.auto_rebalance() is True
        assert store._slabs._classes[small_class].pages == pages_before + 1
