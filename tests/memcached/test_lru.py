"""Tests for the O(1) LRU list."""

import pytest

from repro.errors import ValidationError
from repro.memcached import LRUList


class TestBasicOrder:
    def test_insert_and_len(self):
        lru = LRUList()
        lru.insert("a")
        lru.insert("b")
        assert len(lru) == 2
        assert "a" in lru
        assert "c" not in lru

    def test_mru_lru_ends(self):
        lru = LRUList()
        for key in "abc":
            lru.insert(key)
        assert lru.peek_mru() == "c"
        assert lru.peek_lru() == "a"

    def test_iteration_mru_to_lru(self):
        lru = LRUList()
        for key in "abc":
            lru.insert(key)
        assert list(lru) == ["c", "b", "a"]

    def test_empty_peeks(self):
        lru = LRUList()
        assert lru.peek_lru() is None
        assert lru.peek_mru() is None


class TestTouch:
    def test_touch_moves_to_mru(self):
        lru = LRUList()
        for key in "abc":
            lru.insert(key)
        lru.touch("a")
        assert lru.peek_mru() == "a"
        assert lru.peek_lru() == "b"

    def test_touch_head_is_noop(self):
        lru = LRUList()
        for key in "ab":
            lru.insert(key)
        lru.touch("b")
        assert list(lru) == ["b", "a"]

    def test_touch_missing_raises(self):
        with pytest.raises(KeyError):
            LRUList().touch("ghost")


class TestEviction:
    def test_evicts_lru_first(self):
        lru = LRUList()
        for key in "abc":
            lru.insert(key)
        assert lru.evict_lru() == "a"
        assert lru.evict_lru() == "b"
        assert lru.evict_lru() == "c"
        assert len(lru) == 0

    def test_touch_changes_eviction_order(self):
        lru = LRUList()
        for key in "abc":
            lru.insert(key)
        lru.touch("a")
        assert lru.evict_lru() == "b"

    def test_evict_empty_raises(self):
        with pytest.raises(ValidationError):
            LRUList().evict_lru()


class TestRemove:
    def test_remove_middle(self):
        lru = LRUList()
        for key in "abc":
            lru.insert(key)
        lru.remove("b")
        assert list(lru) == ["c", "a"]

    def test_remove_head_and_tail(self):
        lru = LRUList()
        for key in "abc":
            lru.insert(key)
        lru.remove("c")
        lru.remove("a")
        assert list(lru) == ["b"]

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            LRUList().remove("ghost")

    def test_duplicate_insert_rejected(self):
        lru = LRUList()
        lru.insert("a")
        with pytest.raises(ValidationError):
            lru.insert("a")

    def test_reinsert_after_remove(self):
        lru = LRUList()
        lru.insert("a")
        lru.remove("a")
        lru.insert("a")
        assert list(lru) == ["a"]


class TestStress:
    def test_many_operations_keep_consistency(self, rng):
        lru = LRUList()
        reference = []
        for step in range(5000):
            op = rng.integers(0, 4)
            if op == 0 or not reference:
                key = f"k{step}"
                lru.insert(key)
                reference.insert(0, key)
            elif op == 1:
                idx = int(rng.integers(0, len(reference)))
                key = reference.pop(idx)
                lru.touch(key)
                reference.insert(0, key)
            elif op == 2:
                idx = int(rng.integers(0, len(reference)))
                key = reference.pop(idx)
                lru.remove(key)
            else:
                key = lru.evict_lru()
                assert key == reference.pop()
        assert list(lru) == reference
