"""Tests for the cache store (hash table + slabs + expiry)."""

import pytest

from repro.errors import ValidationError
from repro.memcached import CacheStore, ITEM_OVERHEAD

MIB = 1 << 20


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestGetSet:
    def test_set_then_get(self):
        store = CacheStore(4 * MIB)
        store.set("k", b"value", flags=3)
        item = store.get("k")
        assert item is not None
        assert item.value == b"value"
        assert item.flags == 3

    def test_get_missing_counts_miss(self):
        store = CacheStore(4 * MIB)
        assert store.get("nope") is None
        assert store.stats.misses == 1
        assert store.stats.gets == 1

    def test_hit_miss_ratio(self):
        store = CacheStore(4 * MIB)
        store.set("k", b"v")
        store.get("k")
        store.get("gone")
        assert store.stats.hit_ratio == pytest.approx(0.5)
        assert store.miss_ratio() == pytest.approx(0.5)

    def test_replace_updates_value(self):
        store = CacheStore(4 * MIB)
        store.set("k", b"old")
        store.set("k", b"newer-value")
        assert store.get("k").value == b"newer-value"
        assert len(store) == 1

    def test_cas_increments(self):
        store = CacheStore(4 * MIB)
        first = store.set("a", b"1")
        second = store.set("b", b"2")
        assert second.cas > first.cas

    def test_empty_key_rejected(self):
        with pytest.raises(ValidationError):
            CacheStore(4 * MIB).set("", b"v")

    def test_contains(self):
        store = CacheStore(4 * MIB)
        store.set("k", b"v")
        assert "k" in store
        assert "other" not in store

    def test_nbytes_accounting(self):
        store = CacheStore(4 * MIB)
        store.set("key", b"0123456789")
        assert store.bytes_used() == 3 + 10 + ITEM_OVERHEAD


class TestDeleteFlush:
    def test_delete(self):
        store = CacheStore(4 * MIB)
        store.set("k", b"v")
        assert store.delete("k") is True
        assert store.get("k") is None
        assert store.stats.deletes == 1

    def test_delete_missing(self):
        assert CacheStore(4 * MIB).delete("nope") is False

    def test_flush_all(self):
        store = CacheStore(4 * MIB)
        for i in range(10):
            store.set(f"k{i}", b"v")
        store.flush_all()
        assert len(store) == 0

    def test_keys_snapshot(self):
        store = CacheStore(4 * MIB)
        store.set("a", b"1")
        store.set("b", b"2")
        assert sorted(store.keys()) == ["a", "b"]


class TestExpiry:
    def test_item_expires(self):
        clock = FakeClock()
        store = CacheStore(4 * MIB, clock=clock)
        store.set("k", b"v", ttl=10.0)
        assert store.get("k") is not None
        clock.now = 11.0
        assert store.get("k") is None
        assert store.stats.expired == 1

    def test_expired_lookup_counts_miss(self):
        clock = FakeClock()
        store = CacheStore(4 * MIB, clock=clock)
        store.set("k", b"v", ttl=1.0)
        clock.now = 2.0
        store.get("k")
        assert store.stats.misses == 1

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        store = CacheStore(4 * MIB, clock=clock)
        store.set("k", b"v")
        clock.now = 1e9
        assert store.get("k") is not None

    def test_contains_respects_expiry(self):
        clock = FakeClock()
        store = CacheStore(4 * MIB, clock=clock)
        store.set("k", b"v", ttl=1.0)
        clock.now = 2.0
        assert "k" not in store


class TestEvictionBehaviour:
    def test_lru_eviction_under_pressure(self):
        store = CacheStore(MIB)
        value = bytes(200_000)
        store.set("old", value)
        store.set("mid", value)
        store.get("old")  # touch old so mid becomes LRU
        for i in range(8):
            store.set(f"fill{i}", value)
        assert store.stats.evictions > 0
        # The most recently inserted is definitely present.
        assert "fill7" in store

    def test_miss_ratio_reflects_working_set_vs_capacity(self, rng):
        # Working set far larger than the cache -> high miss ratio;
        # comfortably smaller -> ~0 after warm-up.
        small = CacheStore(MIB)
        value = bytes(10_000)
        for i in range(1000):
            small.set(f"k{i % 500}", value)
        for i in range(500):
            small.get(f"k{int(rng.integers(0, 500))}")
        assert small.miss_ratio() > 0.3

        big = CacheStore(16 * MIB)
        for i in range(100):
            big.set(f"k{i}", value)
        for i in range(500):
            big.get(f"k{int(rng.integers(0, 100))}")
        assert big.miss_ratio() == 0.0

    def test_slab_stats_exposed(self):
        store = CacheStore(4 * MIB)
        store.set("k", bytes(100))
        stats = store.slab_stats()
        assert len(stats) >= 1
        assert stats[0].used_chunks == 1
