"""Tests for consistent hashing and the modulo baseline."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.memcached import HashRing, ModuloRouter, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("key") == stable_hash("key")

    def test_different_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_64bit_range(self):
        assert 0 <= stable_hash("anything") < 2**64


class TestHashRing:
    def test_lookup_deterministic(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.node_for("key1") == ring.node_for("key1")

    def test_all_nodes_receive_keys(self):
        ring = HashRing(["a", "b", "c", "d"])
        owners = {ring.node_for(f"key{i}") for i in range(1000)}
        assert owners == {"a", "b", "c", "d"}

    def test_roughly_uniform_shares(self):
        ring = HashRing(["a", "b", "c", "d"], replicas=256)
        keys = [f"key{i}" for i in range(20_000)]
        shares = ring.load_shares(keys)
        assert all(0.15 < share < 0.35 for share in shares)
        assert sum(shares) == pytest.approx(1.0)

    def test_weighted_shares(self):
        ring = HashRing(["a", "b"])
        keys = ["k1", "k2"]
        owner1, owner2 = ring.node_for("k1"), ring.node_for("k2")
        shares = ring.load_shares(keys, weights=[3.0, 1.0])
        idx1 = ring.nodes.index(owner1)
        if owner1 == owner2:
            assert shares[idx1] == pytest.approx(1.0)
        else:
            assert shares[idx1] == pytest.approx(0.75)

    def test_add_node_minimal_remap(self):
        ring = HashRing(["a", "b", "c", "d"], replicas=256)
        keys = [f"key{i}" for i in range(5000)]
        before = {key: ring.node_for(key) for key in keys}
        ring.add_node("e")
        moved = sum(1 for key in keys if ring.node_for(key) != before[key])
        # Consistent hashing: ~1/5 of keys move, far from all.
        assert moved / len(keys) < 0.35

    def test_remove_node_only_moves_its_keys(self):
        ring = HashRing(["a", "b", "c"], replicas=256)
        keys = [f"key{i}" for i in range(3000)]
        before = {key: ring.node_for(key) for key in keys}
        ring.remove_node("b")
        for key in keys:
            if before[key] != "b":
                assert ring.node_for(key) == before[key]
            else:
                assert ring.node_for(key) != "b"

    def test_index_for(self):
        ring = HashRing(["a", "b"])
        idx = ring.index_for("some-key")
        assert ring.nodes[idx] == ring.node_for("some-key")

    def test_duplicate_node_rejected(self):
        with pytest.raises(ValidationError):
            HashRing(["a", "a"])
        ring = HashRing(["a"])
        with pytest.raises(ValidationError):
            ring.add_node("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValidationError):
            HashRing(["a"]).remove_node("z")

    def test_empty_ring_lookup_rejected(self):
        ring = HashRing(["a"])
        ring.remove_node("a")
        with pytest.raises(ValidationError):
            ring.node_for("key")

    def test_more_replicas_smoother(self):
        keys = [f"key{i}" for i in range(20_000)]
        rough = HashRing(["a", "b", "c", "d"], replicas=4)
        smooth = HashRing(["a", "b", "c", "d"], replicas=512)
        spread_rough = np.std(rough.load_shares(keys))
        spread_smooth = np.std(smooth.load_shares(keys))
        assert spread_smooth < spread_rough

    def test_weight_validation(self):
        ring = HashRing(["a"])
        with pytest.raises(ValidationError):
            ring.load_shares(["k"], weights=[1.0, 2.0])
        with pytest.raises(ValidationError):
            ring.load_shares(["k"], weights=[-1.0])


class TestModuloRouter:
    def test_deterministic(self):
        router = ModuloRouter(4)
        assert router.index_for("k") == router.index_for("k")
        assert 0 <= router.index_for("k") < 4

    def test_resize_remaps_most_keys(self):
        router = ModuloRouter(4)
        keys = [f"key{i}" for i in range(5000)]
        fraction = router.remap_fraction(5, keys)
        # Modulo placement moves ~(1 - 1/5) of keys: the consistent-hash
        # motivation in one number.
        assert fraction > 0.6

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            ModuloRouter(0)
        with pytest.raises(ValidationError):
            ModuloRouter(4).remap_fraction(0, ["k"])
        with pytest.raises(ValidationError):
            ModuloRouter(4).remap_fraction(5, [])
