"""Tests for the Che approximation and cache sizing."""

import numpy as np
import pytest

from repro.distributions import Zipf
from repro.errors import ValidationError
from repro.memcached import (
    CacheStore,
    capacity_for_miss_ratio,
    che_characteristic_time,
    items_per_capacity_bytes,
    lru_hit_ratio,
    lru_miss_ratio,
    miss_ratio_curve,
    zipf_miss_ratio,
)

UNIFORM_100 = [0.01] * 100


class TestCharacteristicTime:
    def test_occupancy_identity(self):
        probs = Zipf(500, 0.9).probabilities
        capacity = 100
        t_c = che_characteristic_time(probs, capacity)
        occupied = np.sum(-np.expm1(-probs * t_c))
        assert occupied == pytest.approx(capacity, rel=1e-6)

    def test_grows_with_capacity(self):
        probs = Zipf(500, 0.9).probabilities
        t1 = che_characteristic_time(probs, 50)
        t2 = che_characteristic_time(probs, 200)
        assert t2 > t1

    def test_rejects_capacity_out_of_range(self):
        with pytest.raises(ValidationError):
            che_characteristic_time(UNIFORM_100, 0)
        with pytest.raises(ValidationError):
            che_characteristic_time(UNIFORM_100, 100)

    def test_rejects_unnormalized(self):
        with pytest.raises(ValidationError):
            che_characteristic_time([0.5, 0.6], 1)


class TestHitRatio:
    def test_uniform_popularity_hit_ratio_is_fill_fraction(self):
        # For uniform popularity the Che hit ratio ~ C / n.
        assert lru_hit_ratio(UNIFORM_100, 50) == pytest.approx(0.5, abs=0.03)

    def test_full_capacity_hits_everything(self):
        assert lru_hit_ratio(UNIFORM_100, 100) == 1.0

    def test_skew_beats_uniform(self):
        # Zipf head concentration -> a small cache hits much more.
        zipf = Zipf(1000, 1.0).probabilities
        assert lru_hit_ratio(zipf, 100) > lru_hit_ratio([1 / 1000] * 1000, 100)

    def test_monotone_curve(self):
        probs = Zipf(1000, 0.9).probabilities
        curve = miss_ratio_curve(probs, [50, 100, 200, 400, 800])
        assert all(a > b for a, b in zip(curve, curve[1:]))

    def test_hit_plus_miss_is_one(self):
        probs = Zipf(300, 0.8).probabilities
        assert lru_hit_ratio(probs, 60) + lru_miss_ratio(probs, 60) == pytest.approx(1.0)

    def test_zipf_convenience(self):
        direct = lru_miss_ratio(Zipf(500, 0.9).probabilities, 100)
        assert zipf_miss_ratio(500, 0.9, 100) == pytest.approx(direct)


class TestCapacityInversion:
    def test_roundtrip(self):
        probs = Zipf(1000, 0.95).probabilities
        capacity = capacity_for_miss_ratio(probs, 0.2)
        assert lru_miss_ratio(probs, capacity) == pytest.approx(0.2, abs=0.01)

    def test_tighter_target_needs_more_capacity(self):
        probs = Zipf(1000, 0.95).probabilities
        loose = capacity_for_miss_ratio(probs, 0.3)
        tight = capacity_for_miss_ratio(probs, 0.05)
        assert tight > loose

    def test_rejects_unreachable_target(self):
        with pytest.raises(ValidationError):
            capacity_for_miss_ratio(UNIFORM_100, 1e-12)

    def test_rejects_bad_target(self):
        with pytest.raises(ValidationError):
            capacity_for_miss_ratio(UNIFORM_100, 0.0)


class TestAgainstRealCache:
    def test_che_predicts_real_lru_miss_ratio(self, rng):
        """The executable CacheStore under Zipf IRM traffic should match
        the Che approximation within a few points."""
        n_items, zipf_s = 2000, 0.9
        value_size = 1000
        popularity = Zipf(n_items, zipf_s)
        store = CacheStore(4 << 20)  # 4 MiB
        # Measure the item capacity of this store for our item size.
        probe = 0
        while True:
            try:
                store.set(f"probe{probe}", bytes(value_size))
            except Exception:  # pragma: no cover - capacity probe
                break
            probe += 1
            if store.stats.evictions > 0:
                break
        capacity_items = len(store)
        store.flush_all()
        store.stats.evictions = 0

        # Warm thoroughly, then measure steady-state miss ratio.
        for _ in range(40_000):
            rank = int(popularity.sample(rng))
            key = f"item{rank}"
            if store.get(key) is None:
                store.set(key, bytes(value_size))
        store.stats.gets = store.stats.hits = store.stats.misses = 0
        for _ in range(40_000):
            rank = int(popularity.sample(rng))
            key = f"item{rank}"
            if store.get(key) is None:
                store.set(key, bytes(value_size))
        measured = store.miss_ratio()
        predicted = lru_miss_ratio(popularity.probabilities, capacity_items)
        assert measured == pytest.approx(predicted, abs=0.05)


class TestByteCapacity:
    def test_items_per_bytes(self):
        assert items_per_capacity_bytes(1 << 20, 1000.0) == pytest.approx(
            (1 << 20) / 1048.0
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            items_per_capacity_bytes(0, 100.0)
        with pytest.raises(ValidationError):
            items_per_capacity_bytes(1024, 0.0)
